//! Vendored minimal stand-in for the `crossbeam` crate (offline build).
//!
//! Only `crossbeam::atomic::AtomicCell` is used by this workspace (the
//! work/depth counters in `rsp-pram`).  This implementation trades the real
//! crate's lock-free fast paths for a plain mutex, which is semantically
//! equivalent and more than fast enough for counters.

/// Atomic cells.
pub mod atomic {
    use std::sync::Mutex;

    /// A thread-safe cell holding a `Copy` value.
    #[derive(Debug, Default)]
    pub struct AtomicCell<T> {
        inner: Mutex<T>,
    }

    impl<T: Copy> AtomicCell<T> {
        /// Create a cell holding `value`.
        pub fn new(value: T) -> Self {
            AtomicCell { inner: Mutex::new(value) }
        }

        /// Read the current value.
        pub fn load(&self) -> T {
            *self.inner.lock().unwrap()
        }

        /// Overwrite the current value.
        pub fn store(&self, value: T) {
            *self.inner.lock().unwrap() = value;
        }

        /// Replace the value with `new` if it currently equals `current`;
        /// returns `Ok(previous)` on success and `Err(previous)` otherwise.
        pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T>
        where
            T: PartialEq,
        {
            let mut guard = self.inner.lock().unwrap();
            let prev = *guard;
            if prev == current {
                *guard = new;
                Ok(prev)
            } else {
                Err(prev)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::AtomicCell;

    #[test]
    fn load_store_cas() {
        let c = AtomicCell::new(5u64);
        assert_eq!(c.load(), 5);
        c.store(9);
        assert_eq!(c.load(), 9);
        assert_eq!(c.compare_exchange(9, 11), Ok(9));
        assert_eq!(c.compare_exchange(9, 13), Err(11));
        assert_eq!(c.load(), 11);
    }
}
