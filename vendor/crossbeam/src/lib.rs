//! Vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Originally this stub carried only `atomic::AtomicCell` (the work/depth
//! counters in `rsp-pram`).  It now also hosts the concurrency substrate of
//! the workspace's real work-stealing scheduler (`vendor/rayon`):
//!
//! * [`deque`] — the Chase–Lev work-stealing deque (`Worker` / `Stealer` /
//!   `Steal`) plus a FIFO `Injector` for external submissions, mirroring
//!   upstream `crossbeam-deque`'s API;
//! * [`utils`] — `CachePadded`, cache-line alignment for the deque indices.
//!
//! Deviations from upstream that matter: retired deque buffers are reclaimed
//! on deque drop rather than through epoch-based GC, and `Injector` is a
//! mutex-guarded queue rather than a lock-free one (see the module docs for
//! why both are acceptable here).  `AtomicCell` remains a mutex-backed cell,
//! semantically equivalent to upstream for the counter workloads that use it.

pub mod deque;
pub mod utils;

/// Atomic cells.
pub mod atomic {
    use std::sync::Mutex;

    /// A thread-safe cell holding a `Copy` value.
    #[derive(Debug, Default)]
    pub struct AtomicCell<T> {
        inner: Mutex<T>,
    }

    impl<T: Copy> AtomicCell<T> {
        /// Create a cell holding `value`.
        pub fn new(value: T) -> Self {
            AtomicCell { inner: Mutex::new(value) }
        }

        /// Read the current value.
        pub fn load(&self) -> T {
            *self.inner.lock().unwrap()
        }

        /// Overwrite the current value.
        pub fn store(&self, value: T) {
            *self.inner.lock().unwrap() = value;
        }

        /// Replace the value with `new` if it currently equals `current`;
        /// returns `Ok(previous)` on success and `Err(previous)` otherwise.
        pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T>
        where
            T: PartialEq,
        {
            let mut guard = self.inner.lock().unwrap();
            let prev = *guard;
            if prev == current {
                *guard = new;
                Ok(prev)
            } else {
                Err(prev)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::AtomicCell;

    #[test]
    fn load_store_cas() {
        let c = AtomicCell::new(5u64);
        assert_eq!(c.load(), 5);
        c.store(9);
        assert_eq!(c.load(), 9);
        assert_eq!(c.compare_exchange(9, 11), Ok(9));
        assert_eq!(c.compare_exchange(9, 13), Err(11));
        assert_eq!(c.load(), 11);
    }
}
