//! Utility types (`crossbeam::utils`).

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, so two
/// `CachePadded` values never share a line.  This is what keeps the owner's
/// `bottom` index and the stealers' `top` index of a work-stealing deque from
/// false-sharing: both sides hammer their own index on every push/pop/steal.
///
/// 128 bytes covers the two-line prefetcher granularity of modern x86 and
/// the 128-byte lines of some AArch64 parts (same constant upstream uses).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::CachePadded;

    #[test]
    fn aligns_and_derefs() {
        let a = CachePadded::new(7u8);
        let b = CachePadded::new(9u8);
        assert_eq!(*a, 7);
        assert_eq!(*b, 9);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!((&*a as *const u8 as usize) % 128, 0);
        assert_eq!(CachePadded::new(3i32).into_inner(), 3);
    }
}
