//! Work-stealing deques (`crossbeam::deque`): the Chase–Lev dynamic circular
//! deque, plus a mutex-guarded FIFO [`Injector`] for external submissions.
//!
//! One thread — the **owner** — holds the [`Worker`] and pushes/pops at the
//! *bottom* end in LIFO order (LIFO keeps the hot task's working set in
//! cache).  Any number of other threads hold [`Stealer`] handles and remove
//! elements from the *top* end in FIFO order (FIFO steals the oldest — and
//! in a divide-and-conquer workload the largest — piece of work).
//!
//! The algorithm is Chase & Lev, *Dynamic Circular Work-Stealing Deque*
//! (SPAA 2005), with the explicit memory orderings of Lê, Pop, Cocchi &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP 2013) — the same lineage as upstream `crossbeam-deque`:
//!
//! * `push` writes the element, then publishes `bottom` with a release
//!   store, so a stealer that acquires `bottom` sees the element bytes;
//! * `pop` reserves the bottom slot, then a `SeqCst` fence orders the
//!   reservation against concurrent steals before `top` is re-read; the
//!   *last* element is raced for with a CAS on `top`;
//! * `steal` reads the element *before* CASing `top`; on CAS failure the
//!   possibly-torn bytes are abandoned as `MaybeUninit` without ever
//!   materialising a `T`, so the read is safe for any `T: Send`.
//!
//! When the circular buffer fills up it is doubled.  Retired buffers cannot
//! be freed immediately — a stealer may still be reading the old allocation —
//! so they are parked in a retirement list and reclaimed when the deque
//! itself is dropped (bounded: a deque that grew to capacity `2^k` retires
//! at most `k` buffers whose sizes sum to less than the final buffer's).
//! This trades peak memory for not needing an epoch/hazard-pointer scheme.

use crate::utils::CachePadded;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying may succeed.
    Retry,
    /// Took this element.
    Success(T),
}

impl<T> Steal<T> {
    /// The stolen element, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// Growable circular buffer; slots are `MaybeUninit` because liveness is
/// tracked externally by the `top`/`bottom` indices.
struct Buffer<T> {
    mask: isize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Buffer<T>> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        Box::new(Buffer { mask: cap as isize - 1, slots })
    }

    fn cap(&self) -> isize {
        self.mask + 1
    }

    unsafe fn write(&self, index: isize, value: T) {
        (*self.slots[(index & self.mask) as usize].get()).write(value);
    }

    /// Copy out the slot's bytes without asserting initialisation — the
    /// caller decides (post-CAS) whether they denote a live `T`.
    unsafe fn read_raw(&self, index: isize) -> MaybeUninit<T> {
        std::ptr::read(self.slots[(index & self.mask) as usize].get())
    }
}

struct Inner<T> {
    /// Stealers' end.  `top <= bottom` except transiently during `pop`.
    top: CachePadded<AtomicIsize>,
    /// Owner's end.
    bottom: CachePadded<AtomicIsize>,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by `grow`, freed on drop (see module docs).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// The raw pointers all point at heap allocations owned by this Inner; the
// Chase–Lev protocol (plus `Worker` being single-owner) governs element
// access, so sharing Inner across threads is sound whenever T may move
// between threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access now: drop live elements, then every allocation.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buffer = *self.buffer.get_mut();
        unsafe {
            for i in top..bottom {
                drop((*buffer).read_raw(i).assume_init());
            }
            drop(Box::from_raw(buffer));
            for stale in self.retired.get_mut().unwrap().drain(..) {
                drop(Box::from_raw(stale));
            }
        }
    }
}

/// The owning (single-thread) handle of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// `Worker` is `Send` but deliberately `!Sync`: pushes and pops must
    /// come from one thread at a time.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for Worker<T> {}

/// A shared handle that removes elements from the opposite end of a
/// [`Worker`]'s deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new()
    }
}

impl<T> Worker<T> {
    /// New empty deque (LIFO for the owner, like `Worker::new_lifo()`
    /// upstream — the order a depth-first `join` scheduler wants).
    pub fn new() -> Worker<T> {
        let buffer = Box::into_raw(Buffer::alloc(64));
        let inner = Arc::new(Inner {
            top: CachePadded::new(AtomicIsize::new(0)),
            bottom: CachePadded::new(AtomicIsize::new(0)),
            buffer: AtomicPtr::new(buffer),
            retired: Mutex::new(Vec::new()),
        });
        Worker { inner, _not_sync: PhantomData }
    }

    /// A stealer handle for this deque (cloneable, shareable).
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }

    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b - t <= 0
    }

    /// Push onto the owner's end.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buffer = self.inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buffer).cap() {
                self.grow(t, b);
                buffer = self.inner.buffer.load(Ordering::Relaxed);
            }
            (*buffer).write(b, value);
        }
        fence(Ordering::Release);
        self.inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the owner's end (the most recently pushed element).
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.inner.buffer.load(Ordering::Relaxed);
        // Reserve the slot before looking at top: a stealer that reads the
        // decremented bottom after the fence below will refuse the slot.
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        let len = b - t;
        if len < 0 {
            // Was empty; restore.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = unsafe { (*buffer).read_raw(b) };
        if len > 0 {
            // More than one element: the slot is unambiguously ours.
            return Some(unsafe { value.assume_init() });
        }
        // Exactly one element: race the stealers for it via top.
        let won = self.inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
        self.inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            Some(unsafe { value.assume_init() })
        } else {
            // A stealer got it; `value` holds bytes it now owns — abandon
            // them without dropping.
            None
        }
    }

    /// Double the buffer; only the owner calls this, with `t..b` live.
    fn grow(&self, t: isize, b: isize) {
        let old = self.inner.buffer.load(Ordering::Relaxed);
        unsafe {
            let new = Box::into_raw(Buffer::alloc(((*old).cap() as usize) * 2));
            for i in t..b {
                (*new).write(i, (*old).read_raw(i).assume_init());
            }
            self.inner.buffer.store(new, Ordering::Release);
            self.inner.retired.lock().unwrap().push(old);
        }
    }
}

impl<T> Stealer<T> {
    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b - t <= 0
    }

    /// Try to steal the oldest element.
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if b - t <= 0 {
            return Steal::Empty;
        }
        let buffer = self.inner.buffer.load(Ordering::Acquire);
        // Read before claiming; if the CAS fails these bytes may be torn,
        // so they stay MaybeUninit and are simply abandoned.
        let value = unsafe { (*buffer).read_raw(t) };
        if self.inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return Steal::Retry;
        }
        Steal::Success(unsafe { value.assume_init() })
    }
}

/// A FIFO queue for submitting work from threads that own no [`Worker`]
/// (rayon's "injector").  This stand-in guards a `VecDeque` with a mutex —
/// external submission is rare (one per `ThreadPool::install`), so the lock
/// is never contended enough to matter; the hot stealing path stays on the
/// lock-free Chase–Lev deques.
pub struct Injector<T> {
    queue: Mutex<std::collections::VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// New empty queue.
    pub fn new() -> Injector<T> {
        Injector { queue: Mutex::new(std::collections::VecDeque::new()) }
    }

    /// Enqueue an element.
    pub fn push(&self, value: T) {
        self.queue.lock().unwrap().push_back(value);
    }

    /// Take the oldest element.  Never returns [`Steal::Retry`].
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let w: Worker<i32> = Worker::new();
        let s = w.stealer();
        assert!(w.is_empty() && s.is_empty());
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops the newest");
        assert_eq!(s.steal(), Steal::Success(1), "stealer takes the oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_order_and_content() {
        let w: Worker<usize> = Worker::new();
        for i in 0..10_000 {
            // interleave so indices wrap the circular buffer
            w.push(i);
            if i % 3 == 0 {
                assert_eq!(w.pop(), Some(i));
            }
        }
        let mut seen = Vec::new();
        while let Some(v) = w.pop() {
            seen.push(v);
        }
        let mut expect: Vec<usize> = (0..10_000).filter(|i| i % 3 != 0).collect();
        expect.reverse();
        assert_eq!(seen, expect);
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Box elements so a leak or double-free shows up under the counter.
        static LIVE: std::sync::atomic::AtomicIsize = std::sync::atomic::AtomicIsize::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Tracked {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let w: Worker<Tracked> = Worker::new();
            for _ in 0..300 {
                w.push(Tracked::new());
            }
            for _ in 0..100 {
                drop(w.pop());
            }
            let s = w.stealer();
            for _ in 0..50 {
                drop(s.steal().success());
            }
            drop(s);
        } // 150 still queued: freed by Inner::drop
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn injector_is_fifo() {
        let q: Injector<u32> = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
        assert!(q.is_empty());
    }
}
