//! Contention stress tests for the Chase–Lev deque: under concurrent
//! push/pop/steal every element must be delivered **exactly once** — no
//! losses (an element vanishing) and no duplications (an element delivered
//! to two consumers).  This is the certification the scheduler's correctness
//! rests on, so it runs as a tier-1 test, sized to stay fast.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Owner pushes `total` distinct tokens while popping intermittently;
/// stealer threads hammer the other end.  Each delivered token increments
/// its slot in a shared tally; afterwards every slot must be exactly 1.
#[test]
fn no_loss_no_duplication_under_contention() {
    let stealer_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 8);
    let total: usize = 100_000;
    let tally: Arc<Vec<AtomicUsize>> = Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    let worker: Worker<usize> = Worker::new();
    let handles: Vec<_> = (0..stealer_threads)
        .map(|_| {
            let stealer: Stealer<usize> = worker.stealer();
            let tally = Arc::clone(&tally);
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(token) => {
                        tally[token].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) && stealer.is_empty() {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();

    // Sawtooth production: bursts of pushes with interleaved pops keep both
    // ends and the last-element CAS race hot, and force buffer growth.
    let mut next = 0usize;
    while next < total {
        let burst = 1 + next % 37;
        for _ in 0..burst {
            if next == total {
                break;
            }
            worker.push(next);
            next += 1;
        }
        for _ in 0..(burst / 2) {
            if let Some(token) = worker.pop() {
                tally[token].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Drain what the stealers leave behind.
    while let Some(token) = worker.pop() {
        tally[token].fetch_add(1, Ordering::Relaxed);
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    let lost: Vec<usize> = (0..total).filter(|&i| tally[i].load(Ordering::Relaxed) == 0).collect();
    let duplicated: Vec<usize> = (0..total).filter(|&i| tally[i].load(Ordering::Relaxed) > 1).collect();
    assert!(lost.is_empty(), "{} tokens lost (first few: {:?})", lost.len(), &lost[..lost.len().min(8)]);
    assert!(
        duplicated.is_empty(),
        "{} tokens duplicated (first few: {:?})",
        duplicated.len(),
        &duplicated[..duplicated.len().min(8)]
    );
}

/// Several stealers racing over a deque that is *only* stolen from (owner
/// pushes everything up front): exercises the steal/steal CAS race without
/// owner interference, checking the same exactly-once property.
#[test]
fn pure_steal_race_is_exactly_once() {
    let total: usize = 50_000;
    let worker: Worker<usize> = Worker::new();
    for i in 0..total {
        worker.push(i);
    }
    let consumed = Arc::new(AtomicUsize::new(0));
    let tally: Arc<Vec<AtomicUsize>> = Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stealer = worker.stealer();
            let tally = Arc::clone(&tally);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(token) => {
                        tally[token].fetch_add(1, Ordering::Relaxed);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => return,
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::Relaxed), total);
    assert!((0..total).all(|i| tally[i].load(Ordering::Relaxed) == 1));
}

/// The injector delivers exactly once under concurrent consumers too.
#[test]
fn injector_exactly_once() {
    let total = 20_000usize;
    let injector: Arc<Injector<usize>> = Arc::new(Injector::new());
    for i in 0..total {
        injector.push(i);
    }
    let tally: Arc<Vec<AtomicUsize>> = Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let injector = Arc::clone(&injector);
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                while let Steal::Success(token) = injector.steal() {
                    tally[token].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!((0..total).all(|i| tally[i].load(Ordering::Relaxed) == 1));
}
