//! Vendored minimal stand-in for the `criterion` crate (offline build).
//!
//! Provides the API surface the E1–E9 benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`] and the `criterion_group!` /
//! `criterion_main!` macros — with a simple measurement loop: warm up once,
//! pick an iteration count that fills a small time budget, then report the
//! mean wall-clock time per iteration on stdout.
//!
//! The per-benchmark time budget defaults to 300 ms and can be overridden
//! with the `CRITERION_BUDGET_MS` environment variable (e.g. `=50` for smoke
//! runs), since this stub has no command-line parsing or statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Benchmark driver handed to the `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 100 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup { name, sample_size: self.default_sample_size, _criterion: self }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_one(&format!("{id}"), self.default_sample_size, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples (kept for API compatibility; this stub uses
    /// it as an upper bound on measured iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{parameter}") }
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters_cap: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Measure `f`: one warm-up call, then enough iterations to fill the time
    /// budget (capped by the sample size), reporting the mean per-iteration
    /// wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let budget = budget();
        let iters = ((budget.as_nanos() / once.as_nanos()).clamp(1, self.iters_cap as u128)) as usize;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { iters_cap: sample_size.max(1), mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{label:<50} time: {mean:>12.3?}"),
        None => println!("{label:<50} (no measurement: closure never called Bencher::iter)"),
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a benchmark binary (built with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags such as `--bench`; this stub ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_measures() {
        std::env::set_var("CRITERION_BUDGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        assert!(ran);
    }
}
