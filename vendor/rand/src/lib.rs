//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` (over `Range` / `RangeInclusive` of the integer types) and
//! `gen_bool`.  The generator is SplitMix64 — deterministic for a given seed,
//! which is all the workload generators and property tests require.  The
//! stream does **not** match upstream `rand`; seeds are local to this
//! repository.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample from `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128) - (self.start as i128);
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(-5..17);
            assert_eq!(x, b.gen_range(-5..17));
            assert!((-5..17).contains(&x));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v: usize = rng.gen_range(0..=2);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
