//! Vendored minimal stand-in for the `serde` crate (offline build).
//!
//! The real serde's visitor architecture is replaced by a simple JSON-like
//! value tree: [`Serialize`] renders a type into a [`Value`], [`Deserialize`]
//! rebuilds it from one, and the companion `serde_json` stub converts
//! [`Value`] to and from JSON text.  The derive macros (re-exported from the
//! vendored `serde_derive`) support structs with named fields and enums with
//! unit or named-field variants (externally tagged, like upstream serde),
//! which is every type this workspace serialises — including the
//! `rsp-server` wire protocol's data-carrying request/response enums.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the intermediate representation between typed
/// data and serialised text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough for both `i64` and `u64`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!("expected object with field `{name}`, got {other:?}"))),
        }
    }

    /// Interpret as an integer.
    pub fn as_int(&self) -> Result<i128, Error> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error(format!("expected integer, got {other:?}"))),
        }
    }

    /// Interpret as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int()?;
                <$t>::try_from(i).map_err(|_| Error(format!("integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error(format!("expected {expected}-tuple, got {} items", items.len())));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!("expected array (tuple), got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Vec::<i64>::from_value(&vec![1i64, 2, 3].to_value()).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<bool>::from_value(&Some(true).to_value()).unwrap(), Some(true));
        assert_eq!(Option::<bool>::from_value(&None::<bool>.to_value()).unwrap(), None);
        assert_eq!(<(i64, u64)>::from_value(&(3i64, 9u64).to_value()).unwrap(), (3, 9));
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
