//! Vendored minimal `serde_derive` (offline build).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the two
//! shapes this workspace actually serialises — structs with named fields and
//! enums with unit variants — by hand-parsing the item's token stream (no
//! `syn`/`quote` available offline) and emitting the impl as source text.
//! Anything fancier (generics, tuple structs, data-carrying variants,
//! `#[serde(...)]` attributes) is rejected with a compile error so a future
//! use is caught loudly rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we managed to parse out of the item the derive is attached to.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive does not support generics on `{name}`"));
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("derive supports only braced {kind} bodies on `{name}` (got {other:?})")),
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_unit_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => {
                return Err(format!("derive supports only unit enum variants (variant `{variant}` carries data)"))
            }
            other => return Err(format!("unexpected token after variant `{variant}`: {other:?}")),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get_field({f:?})?)?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::Error(\n\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().unwrap()
}
