//! Vendored minimal `serde_derive` (offline build).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually serialises — structs with named fields,
//! enums with unit variants, and enums with named-field (struct) variants —
//! by hand-parsing the item's token stream (no `syn`/`quote` available
//! offline) and emitting the impl as source text.  The enum encoding matches
//! upstream serde's externally-tagged default: a unit variant serialises as
//! the string `"Variant"`, a struct variant as the one-key object
//! `{"Variant": {fields...}}`.  Anything fancier (generics, tuple structs,
//! tuple variants, `#[serde(...)]` attributes) is rejected with a compile
//! error so a future use is caught loudly rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One enum variant: its name plus its named fields (`None` for a unit
/// variant, `Some(fields)` for a `Variant { field, ... }` struct variant).
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

/// What we managed to parse out of the item the derive is attached to.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Unit, Struct { field, ... }, ... }`
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive does not support generics on `{name}`"));
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("derive supports only braced {kind} bodies on `{name}` (got {other:?})")),
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        // Optional payload: a braced group of named fields.  Tuple variants
        // (parenthesised payloads) stay unsupported.
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                iter.next();
                Some(parse_named_fields(stream)?)
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!("derive supports only unit or named-field enum variants (variant `{name}`)"))
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    None => {
                        let vn = &v.name;
                        format!("{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))")
                    }
                    Some(fields) => {
                        let vn = &v.name;
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"))
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Obj(::std::vec![{}]))])",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get_field({f:?})?)?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            // Each arm list may be empty (an all-unit or all-data enum), so
            // every generated arm carries its own trailing comma and each
            // inner match ends in a catch-all `other` arm.
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vn, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::Deserialize::from_value(body.get_field({f:?})?)?"))
                        .collect();
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n", inits.join(", "))
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error(\n\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                                 let (tag, body) = &entries[0];\n\
                                 let _ = body;\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\
                                     other => ::std::result::Result::Err(::serde::Error(\n\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error(\n\
                                 ::std::format!(\"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
            )
        }
    };
    code.parse().unwrap()
}
