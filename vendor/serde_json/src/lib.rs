//! Vendored minimal stand-in for `serde_json` (offline build).
//!
//! Serialises the vendored serde stub's [`serde::Value`] tree to JSON text
//! and parses it back.  Supports the JSON subset those values produce:
//! objects, arrays, strings (with `\uXXXX` escapes), integers, floats,
//! booleans and `null`.

use serde::{Deserialize, Error, Serialize, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        c => return Err(Error(format!("expected `,` or `]`, got `{}`", c as char))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        c => return Err(Error(format!("expected `,` or `}}`, got `{}`", c as char))),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).ok_or_else(|| Error("bad \\u code point".into()))?);
                        }
                        c => return Err(Error(format!("unknown escape `\\{}`", c as char))),
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self.bytes.get(start..self.pos).ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() {
            return Err(Error(format!("expected number at offset {start}")));
        }
        if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
            text.parse::<i128>().map(Value::Int).map_err(|_| Error(format!("bad integer `{text}`")))
        } else {
            text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("hello \"world\"\n".into())),
            ("n".into(), Value::Int(-42)),
            ("big".into(), Value::Int(u64::MAX as i128)),
            ("xs".into(), Value::Arr(vec![Value::Bool(true), Value::Null, Value::Float(1.5)])),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text);
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1i64, 2u64), (3, 4)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(i64, u64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<i64>("[").is_err());
    }
}
