//! Round-trip tests for the derive support for data-carrying enum variants
//! (added for the `rsp-server` wire protocol): unit variants serialise as a
//! bare string, named-field variants as an externally tagged one-key object,
//! exactly like upstream serde's default representation.

use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Payload {
    id: u64,
    label: String,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Message {
    Ping,
    Data { payload: Payload, urgent: bool },
    Nums { values: Vec<i64> },
    Close,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum AllData {
    One { x: i64 },
    Two { x: i64, y: i64 },
}

fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) -> String {
    let text = serde_json::to_string(v).unwrap();
    let back: T = serde_json::from_str(&text).unwrap();
    assert_eq!(&back, v, "round-trip through {text}");
    text
}

#[test]
fn unit_variants_stay_bare_strings() {
    assert_eq!(roundtrip(&Message::Ping), "\"Ping\"");
    assert_eq!(roundtrip(&Message::Close), "\"Close\"");
}

#[test]
fn struct_variants_are_externally_tagged() {
    let msg = Message::Data { payload: Payload { id: 7, label: "hi".into() }, urgent: true };
    let text = roundtrip(&msg);
    assert_eq!(text, "{\"Data\":{\"payload\":{\"id\":7,\"label\":\"hi\"},\"urgent\":true}}");
    let nums = Message::Nums { values: vec![-3, 0, 9] };
    assert_eq!(roundtrip(&nums), "{\"Nums\":{\"values\":[-3,0,9]}}");
}

#[test]
fn enums_without_unit_variants_work() {
    roundtrip(&AllData::One { x: -1 });
    roundtrip(&AllData::Two { x: 1, y: 2 });
}

#[test]
fn unknown_and_malformed_variants_error() {
    assert!(serde_json::from_str::<Message>("\"Pong\"").is_err());
    assert!(serde_json::from_str::<Message>("{\"Data\":{}}").is_err());
    assert!(serde_json::from_str::<Message>("{\"Ping\":{},\"Close\":{}}").is_err());
    assert!(serde_json::from_str::<Message>("17").is_err());
}
