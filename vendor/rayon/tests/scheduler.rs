//! Scheduler-level certification of the work-stealing pool: work really
//! lands on multiple workers, deep nesting cannot deadlock the blocking
//! `join`, concurrent hosts can share one pool, and panics under load leave
//! every pool usable.  These are the concurrency guarantees the rest of the
//! workspace (Router batch serving, the divide-and-conquer recursions)
//! silently relies on.

use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// The acceptance criterion of PR 6: with p ≥ 2, a `par_iter` workload is
/// observed on at least two distinct worker threads (the sequential shim
/// this replaced would record exactly one).
#[test]
fn par_iter_work_lands_on_multiple_threads() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    // Thread scheduling is not ours to command, so allow a few attempts
    // before declaring the scheduler sequential; one is virtually always
    // enough because idle workers are spinning for exactly this theft.
    for attempt in 0..5 {
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..4096u64).into_par_iter().for_each(|i| {
                // Enough work per item that leaves outlive the time it
                // takes an idle worker to steal one.
                let mut acc = i;
                for _ in 0..2_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                }
                if acc != 42 {
                    seen.lock().unwrap().insert(std::thread::current().id());
                }
            });
        });
        let distinct = seen.lock().unwrap().len();
        if distinct >= 2 {
            return;
        }
        eprintln!("attempt {attempt}: workload stayed on {distinct} thread(s), retrying");
    }
    panic!("par_iter never fanned out to a second worker across 5 attempts");
}

/// Linear chains of joins nest far deeper than the worker count.  Each
/// level blocks on the one below it; with 2 workers and depth 300 this
/// deadlocks unless blocked joins keep executing work (the
/// stealing-while-waiting loop).
#[test]
fn nested_join_depth_far_beyond_worker_count() {
    fn chain(depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (rest, one) = rayon::join(|| chain(depth - 1), || 1u64);
        rest + one
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    assert_eq!(pool.install(|| chain(300)), 301);

    // And a full binary recursion: 2^14 leaves on the same 2 workers.
    fn tree(depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = rayon::join(|| tree(depth - 1), || tree(depth - 1));
        a + b
    }
    assert_eq!(pool.install(|| tree(14)), 16_384);
}

/// Many host threads install into ONE shared pool at the same time: the
/// injector serves them all, every result is correct, and nothing deadlocks.
#[test]
fn concurrent_installs_from_many_host_threads() {
    let pool = Arc::new(rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap());
    let hosts = 8;
    let barrier = Arc::new(Barrier::new(hosts));
    let handles: Vec<_> = (0..hosts)
        .map(|h| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait(); // maximise overlap
                let lo = (h as u64) * 10_000;
                let total: u64 = pool.install(|| (lo..lo + 10_000).into_par_iter().sum());
                assert_eq!(total, (lo..lo + 10_000).sum::<u64>(), "host {h}");
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}

/// External (non-worker) threads hammering the *global* pool's injector
/// concurrently with plain `join` calls.
#[test]
fn global_pool_serves_concurrent_external_joins() {
    let handles: Vec<_> = (0..6)
        .map(|h| {
            std::thread::spawn(move || {
                for round in 0..20u64 {
                    let (a, b) = rayon::join(
                        || (0..500).map(|i| i * (h + 1)).sum::<u64>(),
                        || (0..500).map(|i| i + round).sum::<u64>(),
                    );
                    assert_eq!(a, (0..500).map(|i| i * (h + 1)).sum::<u64>());
                    assert_eq!(b, (0..500).map(|i| i + round).sum::<u64>());
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}

/// Panics raised by parallel leaves while the pool is saturated: every
/// panic reaches its own installer (and only it), workers survive, and the
/// pool keeps producing correct results afterwards.
#[test]
fn panic_under_load_leaves_pool_usable() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let completed = AtomicUsize::new(0);
    for round in 0..16usize {
        let poison = round * 61 % 1024;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1024usize).into_par_iter().for_each(|i| {
                    if i == poison {
                        panic!("poisoned item {i}");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            })
        }));
        assert!(result.is_err(), "round {round}: the poisoned item must panic the install");
    }
    // Non-poisoned leaves that already ran were not lost or double-run
    // beyond the possible short-circuiting of sibling leaves.
    assert!(completed.load(Ordering::Relaxed) <= 16 * 1023);

    // The same pool still computes exact results at full width.
    let sum: u64 = pool.install(|| (0..100_000u64).into_par_iter().sum());
    assert_eq!(sum, 4_999_950_000);
    let collected: Vec<usize> = pool.install(|| (0..10_000usize).into_par_iter().map(|i| i + 1).collect());
    assert!(collected.iter().enumerate().all(|(i, &x)| x == i + 1));
}

/// Dropping pools while other pools are mid-flight: shutdown only affects
/// the dropped pool's workers.
#[test]
fn pool_shutdown_is_isolated() {
    let survivor = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    for _ in 0..8 {
        let ephemeral = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let s: u64 = ephemeral.install(|| (0..5_000u64).into_par_iter().sum());
        assert_eq!(s, 12_497_500);
        drop(ephemeral); // joins its workers
        let t: u64 = survivor.install(|| (0..5_000u64).into_par_iter().sum());
        assert_eq!(t, 12_497_500);
    }
}
