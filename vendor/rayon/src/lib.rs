//! Vendored minimal stand-in for the `rayon` crate (offline build).
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! slice of rayon's API the workspace uses, with rayon's *semantics* (the
//! observable results are identical to a sequential execution) but not its
//! scheduler:
//!
//! * parallel iterators (`par_iter`, `into_par_iter`, `par_chunks_mut`, ...)
//!   are thin wrappers over the corresponding sequential iterators — every
//!   adapter (`map`, `zip`, `sum`, `collect`, ...) is inherited from
//!   [`Iterator`];
//! * [`join`] runs its two closures on real OS threads (bounded by a global
//!   cap), so divide-and-conquer code does execute in parallel;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] record the requested
//!   worker count so [`current_num_threads`] reports it, which is what the
//!   E9 scaling harness observes.
//!
//! Replacing this shim with the real rayon (once dependencies can be
//! vendored) is tracked in ROADMAP.md; no caller-visible API changes will be
//! needed.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static CURRENT_POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

static ACTIVE_JOIN_THREADS: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads of the current pool (the installed pool size, or
/// the hardware parallelism outside any [`ThreadPool::install`]).
pub fn current_num_threads() -> usize {
    CURRENT_POOL_SIZE.with(|c| c.get()).unwrap_or_else(hardware_threads)
}

/// Decrements [`ACTIVE_JOIN_THREADS`] on drop, so a panic unwinding out of
/// [`join`] cannot leak the reservation and serialise later joins.
struct JoinSlot;

impl Drop for JoinSlot {
    fn drop(&mut self) {
        ACTIVE_JOIN_THREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// `b` runs on a freshly spawned scoped thread unless the current pool
/// (the installed [`ThreadPool`] size, or the hardware parallelism) is 1 or
/// the global thread cap is reached; then both run sequentially on the
/// caller.  The cap scales with the pool size so `run_on_pool(p, ...)`-style
/// harnesses get a real independent variable.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool_threads = current_num_threads();
    if pool_threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let cap = pool_threads * 2;
    if ACTIVE_JOIN_THREADS.fetch_add(1, Ordering::Relaxed) >= cap {
        ACTIVE_JOIN_THREADS.fetch_sub(1, Ordering::Relaxed);
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let _slot = JoinSlot;
    let pool_size = CURRENT_POOL_SIZE.with(|c| c.get());
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            CURRENT_POOL_SIZE.with(|c| c.set(pool_size));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join: worker panicked"))
    })
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Request exactly `n` worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.unwrap_or_else(hardware_threads).max(1) })
    }
}

/// A pool with a fixed worker count; [`ThreadPool::install`] scopes
/// [`current_num_threads`] to that count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` "inside" the pool: `current_num_threads()` reports this pool's
    /// size for the duration of the call (restored even if `f` panics).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                CURRENT_POOL_SIZE.with(|c| c.set(prev));
            }
        }
        let _restore = Restore(CURRENT_POOL_SIZE.with(|c| c.replace(Some(self.num_threads))));
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A "parallel" iterator: a newtype over a sequential iterator.  All of
/// [`Iterator`]'s adapters and consumers apply.
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Conversion into a parallel iterator (blanket over [`IntoIterator`], which
/// covers `Vec<T>`, ranges, `Option`, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wrap `self` in a [`Par`] iterator.
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Parallel read access to slices (and, via deref, `Vec<T>`).
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

/// Parallel mutable access to slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    /// Stable sort (rayon's `par_sort` is stable).
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Stable sort by key.
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    /// Stable sort by comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key);
    }

    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_by(cmp);
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = [3, 1, 2];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let total: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(total, 499_500);
        let mut s = vec![5, 4, 1];
        s.par_sort();
        assert_eq!(s, vec![1, 4, 5]);
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_join_beyond_cap_degrades_to_sequential() {
        fn rec(depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = super::join(|| rec(depth - 1), || rec(depth - 1));
            a + b
        }
        assert_eq!(rec(10), 1024);
    }

    #[test]
    fn join_in_single_thread_pool_runs_on_caller() {
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let (ta, tb) = pool.install(|| super::join(|| std::thread::current().id(), || std::thread::current().id()));
        assert_eq!(ta, caller);
        assert_eq!(tb, caller);
    }

    #[test]
    fn join_panic_does_not_leak_thread_slots() {
        use std::sync::atomic::Ordering;
        let before = super::ACTIVE_JOIN_THREADS.load(Ordering::Relaxed);
        for _ in 0..64 {
            let result = std::panic::catch_unwind(|| super::join(|| panic!("boom"), || 1));
            assert!(result.is_err());
        }
        let after = super::ACTIVE_JOIN_THREADS.load(Ordering::Relaxed);
        // Leaked slots would leave a delta of 64; allow slack for concurrent tests.
        assert!(after <= before + 2, "leaked join slots: {before} -> {after}");
    }

    #[test]
    fn install_scopes_current_num_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let observed = pool.install(super::current_num_threads);
        assert_eq!(observed, 3);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_pool_size_after_panic() {
        let outside = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let result = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(super::current_num_threads(), outside);
    }
}
