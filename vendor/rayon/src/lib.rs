//! Vendored work-stealing stand-in for the `rayon` crate (offline build).
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! slice of rayon's API the workspace uses — and, since PR 6, rayon's
//! *execution model* too, not just its semantics:
//!
//! * a lazily-spawned global [`ThreadPool`] plus explicit pools built with
//!   [`ThreadPoolBuilder`], each a set of worker threads with per-worker
//!   Chase–Lev deques (hosted in the vendored `crossbeam`) and a shared
//!   injector for jobs arriving from outside the pool;
//! * [`join`] publishes its second closure for theft, runs the first
//!   inline, and *steals other work while waiting* if the second was taken
//!   — panics propagate to the caller via [`std::panic::resume_unwind`];
//! * parallel iterators (`par_iter`, `into_par_iter`, `par_chunks_mut`,
//!   ...) fan out through recursive binary splitting over an indexable
//!   [`iter::Source`], so `map`/`collect`/`sum`/`for_each` genuinely run on
//!   multiple workers while producing bitwise-identical results at every
//!   thread count (pieces and combination trees depend only on the input
//!   length);
//! * `par_sort*` is a parallel *stable* merge sort.
//!
//! The worker count of the global pool honours the upstream
//! `RAYON_NUM_THREADS` environment variable (the CI thread-count matrix
//! sets it), defaulting to the hardware parallelism.
//!
//! Swapping in the real rayon later is a `Cargo.toml` change: the public
//! names used by the workspace (`join`, `prelude::*`, `ThreadPoolBuilder`,
//! `current_num_threads`) keep upstream's signatures.

pub mod iter;
mod registry;
pub mod slice;

pub use iter::{FromParallelIterator, IntoParallelIterator, Par};
pub use registry::{current_num_threads, join};
pub use slice::{ParallelSlice, ParallelSliceMut};

use registry::{on_worker_of, Registry};
use std::sync::Arc;

/// Error type returned by [`ThreadPoolBuilder::build`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Request exactly `n` worker threads (0 means "use the default": the
    /// `RAYON_NUM_THREADS` environment variable or the hardware
    /// parallelism — upstream's convention).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Spawn the pool's worker threads and return the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.filter(|&n| n > 0).unwrap_or_else(registry::default_num_threads);
        let (registry, handles) = Registry::spawn(n);
        Ok(ThreadPool { registry, handles })
    }
}

/// A fixed set of worker threads.  [`ThreadPool::install`] runs a closure
/// *on* the pool (not merely "scoped to it"): `join`s and parallel
/// iterators inside the closure execute on this pool's workers.  Dropping
/// the pool shuts the workers down (after they drain outstanding work).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.registry.num_threads).finish()
    }
}

impl ThreadPool {
    /// Run `f` inside the pool and return its result.  If the calling
    /// thread already belongs to this pool the closure runs inline;
    /// otherwise it is injected and the caller blocks until a worker
    /// finishes it.  A panic in `f` is re-raised on the caller.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if on_worker_of(&self.registry) {
            f()
        } else {
            self.registry.in_worker(f)
        }
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.request_terminate();
        for handle in self.handles.drain(..) {
            // Worker loops catch job panics, so join only fails if a worker
            // aborted some other way; surfacing that loudly is correct.
            handle.join().expect("rayon worker thread panicked outside a job");
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = [3, 1, 2];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let total: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(total, 499_500);
        let mut s = vec![5, 4, 1];
        s.par_sort();
        assert_eq!(s, vec![1, 4, 5]);
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_join_to_depth_ten_is_exact() {
        fn rec(depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = super::join(|| rec(depth - 1), || rec(depth - 1));
            a + b
        }
        assert_eq!(rec(10), 1024);
    }

    #[test]
    fn install_runs_on_pool_workers_not_caller() {
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let (ta, tb) = pool.install(|| super::join(|| std::thread::current().id(), || std::thread::current().id()));
        // A single-thread pool runs both closures on its one worker — which
        // is a real worker thread, not the installing thread.
        assert_eq!(ta, tb);
        assert_ne!(ta, caller);
    }

    #[test]
    fn join_propagates_panic_payload_via_resume_unwind() {
        let result = std::panic::catch_unwind(|| super::join(|| panic!("boom-a"), || 1));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom-a", "original payload must survive resume_unwind");

        // When both sides panic, `a`'s payload wins (upstream semantics).
        let result = std::panic::catch_unwind(|| super::join(|| panic!("first"), || panic!("second")));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "first");
    }

    #[test]
    fn pool_stays_usable_after_repeated_join_panics() {
        for _ in 0..64 {
            let result = std::panic::catch_unwind(|| super::join(|| panic!("boom"), || 1));
            assert!(result.is_err());
        }
        // No worker died and no state leaked: real work still completes.
        let (a, b) = super::join(|| (0..100).sum::<u64>(), || (0..100).product::<u64>());
        assert_eq!(a, 4950);
        assert_eq!(b, 0);
        let total: u64 = (0..10_000u64).into_par_iter().sum();
        assert_eq!(total, 49_995_000);
    }

    #[test]
    fn install_scopes_current_num_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let observed = pool.install(super::current_num_threads);
        assert_eq!(observed, 3);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_propagates_panic_and_leaves_pool_usable() {
        let outside = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.install(|| panic!("boom"))));
        assert!(result.is_err());
        assert_eq!(super::current_num_threads(), outside);
        assert_eq!(pool.install(|| 40 + 2), 42);
    }

    #[test]
    fn collect_preserves_order_with_many_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..10_000usize).into_par_iter().map(|i| i * 3).collect());
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_sort_matches_std_stable_sort() {
        // Big enough to cross the parallel threshold; sort by a coarse key
        // so stability is observable through the payload.
        let n = 40_000usize;
        let mut rng = 0x1234_5678_u64;
        let mut v: Vec<(u32, usize)> = (0..n)
            .map(|i| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (((rng >> 33) as u32) % 97, i)
            })
            .collect();
        let mut expected = v.clone();
        expected.sort_by_key(|&(k, _)| k);
        v.par_sort_by_key(|&(k, _)| k);
        assert_eq!(v, expected, "par_sort_by_key must be stable and correct");
    }
}
