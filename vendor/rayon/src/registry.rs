//! The work-stealing scheduler: worker threads, their Chase–Lev deques, job
//! submission and the blocking-with-stealing [`join`](crate::join).
//!
//! Architecture (mirroring upstream rayon's `registry`/`job` modules):
//!
//! * A [`Registry`] owns one [`crossbeam::deque::Stealer`] ring over the
//!   per-worker deques, a FIFO [`crossbeam::deque::Injector`] for jobs
//!   arriving from non-worker threads, and the sleep machinery.
//! * Each worker thread registers itself in a thread-local so `join` and the
//!   parallel iterators can tell "am I inside a pool, and which one?".
//! * A *job* is a type-erased pointer to a stack-allocated closure cell
//!   ([`StackJob`]); whoever executes it runs the closure under
//!   `catch_unwind`, parks the result (or panic payload) back in the cell
//!   and releases the job's latch.  The submitting side blocks on the latch
//!   — spinning-and-stealing on a worker ([`SpinLatch`]), condvar-sleeping
//!   on an external thread ([`LockLatch`]) — so the cell outlives every
//!   access, which is what makes the lifetime-erasure sound.
//! * Worker panics therefore never unwind a worker's main loop, and
//!   [`crate::join`] re-raises the original payload on the caller via
//!   [`std::panic::resume_unwind`] — real-rayon semantics, pinned by tests.
//!
//! Sleeping: an idle worker spins/yields a bounded number of rounds, then
//! registers as a sleeper and condvar-waits *with a 2 ms timeout*.  Pushers
//! only take the wake lock when the sleeper count is nonzero, keeping the
//! push fast path lock-free; the timeout bounds the one theoretical
//! lost-wakeup window (sleeper registers between a pusher's deque write and
//! its sleeper check) to a 2 ms stall instead of a correctness bug.

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Type-erased executable unit: a raw pointer plus its executor.
///
/// The pointee is a [`StackJob`] on the stack of a thread that is *blocked
/// until the job's latch is released*, so the pointer stays valid for the
/// job's whole lifetime.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Jobs move between threads by design; validity is guaranteed by the
// blocking protocol above.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `job` must stay valid until its latch is released by `execute`.
    pub(crate) unsafe fn new<J: Job>(job: *const J) -> JobRef {
        unsafe fn execute_erased<J: Job>(ptr: *const ()) {
            J::execute(ptr as *const J);
        }
        JobRef { pointer: job as *const (), execute_fn: execute_erased::<J> }
    }

    /// Run the job.
    ///
    /// # Safety
    /// Must be called exactly once, while the pointee is still alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }
}

/// A unit of work executable through a type-erased [`JobRef`].
pub(crate) trait Job {
    /// # Safety
    /// Called at most once; `this` must point at a live instance.
    unsafe fn execute(this: *const Self);
}

/// A latch a job releases when done.
pub(crate) trait Latch {
    /// Release the latch.  After this call the releasing thread must not
    /// touch the job again — the waiter may already have freed it.
    fn set(&self);
}

/// Busy-wait latch for waiters that steal while waiting (workers).
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> SpinLatch {
        SpinLatch { done: AtomicBool::new(false) }
    }

    /// Has the latch been released?  (Acquire: pairs with the Release in
    /// `set`, making the job's result write visible.)
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Blocking latch for waiters without a deque (external threads).
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cvar: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> LockLatch {
        LockLatch { done: Mutex::new(false), cvar: Condvar::new() }
    }

    /// Block until the latch is released.
    pub(crate) fn wait(&self) {
        let mut guard = self.done.lock().unwrap();
        while !*guard {
            guard = self.cvar.wait(guard).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut guard = self.done.lock().unwrap();
        *guard = true;
        // Notify while holding the lock: the waiter cannot wake, observe
        // `done`, and deallocate the latch before we are finished with it.
        self.cvar.notify_all();
    }
}

/// A closure parked on the submitting thread's stack, executed (possibly)
/// elsewhere.  The result — or the panic payload — travels back through
/// `result`; `latch` signals completion.
pub(crate) struct StackJob<L, F, R> {
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F) -> StackJob<L, F, R> {
        StackJob { latch, func: UnsafeCell::new(Some(func)), result: UnsafeCell::new(None) }
    }

    /// # Safety
    /// The caller must keep `self` alive until the latch is released.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// # Safety
    /// Only after the latch released; consumes the parked result.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get()).take().expect("job completed without storing a result")
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        this.latch.set();
        // `this` may already be gone: nothing after the latch.
    }
}

// ---------------------------------------------------------------------------
// The registry (one per pool) and its worker threads
// ---------------------------------------------------------------------------

pub(crate) struct Registry {
    pub(crate) num_threads: usize,
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    terminate: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cvar: Condvar,
    sleepers: AtomicUsize,
}

thread_local! {
    /// The [`WorkerThread`] owned by this OS thread, if it is a pool worker.
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Per-worker state, stack-allocated in `worker_main` and published through
/// the `WORKER` thread-local for the duration of the thread.
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    index: usize,
    deque: Deque<JobRef>,
    /// xorshift state for randomised steal-victim rotation.
    rng: Cell<u64>,
}

impl WorkerThread {
    /// The current thread's worker state, or null.
    pub(crate) fn current() -> *const WorkerThread {
        WORKER.with(|c| c.get())
    }

    /// Push a job where thieves can find it, and wake them.
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.notify();
    }

    /// Pop the most recent local job.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    fn next_victim_offset(&self, n: usize) -> usize {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        (x as usize) % n
    }

    /// One sweep over other workers' deques (random start) and the
    /// injector.  Retries internally while any victim reports a lost race.
    pub(crate) fn find_stealable(&self) -> Option<JobRef> {
        let n = self.registry.stealers.len();
        loop {
            let mut lost_race = false;
            let start = self.next_victim_offset(n.max(1));
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == self.index {
                    continue;
                }
                match self.registry.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => lost_race = true,
                    Steal::Empty => {}
                }
            }
            match self.registry.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => lost_race = true,
                Steal::Empty => {}
            }
            if !lost_race {
                return None;
            }
        }
    }

    /// Local work first, then theft.
    fn find_work(&self) -> Option<JobRef> {
        self.pop().or_else(|| self.find_stealable())
    }
}

fn worker_main(registry: Arc<Registry>, index: usize, deque: Deque<JobRef>) {
    let worker = WorkerThread { registry, index, deque, rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1)) };
    WORKER.with(|c| c.set(&worker as *const WorkerThread));
    let registry = Arc::clone(&worker.registry);
    const SPINS_BEFORE_SLEEP: u32 = 64;
    let mut idle_rounds = 0u32;
    loop {
        if let Some(job) = worker.find_work() {
            idle_rounds = 0;
            // StackJob::execute catches panics, so the loop survives any
            // user-code panic (pinned by the panic-under-load test).
            unsafe { job.execute() };
        } else if registry.terminate.load(Ordering::Acquire) {
            break;
        } else if idle_rounds < SPINS_BEFORE_SLEEP {
            idle_rounds += 1;
            std::thread::yield_now();
        } else {
            registry.sleep();
        }
    }
    WORKER.with(|c| c.set(std::ptr::null()));
}

impl Registry {
    /// Spawn a pool of `num_threads` workers; returns the registry and the
    /// thread handles (the caller decides whether to join or leak them).
    pub(crate) fn spawn(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let num_threads = num_threads.max(1);
        let deques: Vec<Deque<JobRef>> = (0..num_threads).map(|_| Deque::new()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let registry = Arc::new(Registry {
            num_threads,
            injector: Injector::new(),
            stealers,
            terminate: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cvar: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("rsp-rayon-{index}"))
                    .spawn(move || worker_main(registry, index, deque))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        (registry, handles)
    }

    /// Wake sleeping workers if there are any (lock-free when none).
    pub(crate) fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap();
            self.sleep_cvar.notify_all();
        }
    }

    /// Park the calling worker until notified (or the 2 ms backstop).
    fn sleep(&self) {
        let guard = self.sleep_lock.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // Recheck *after* registering as a sleeper: a pusher that saw
        // sleepers == 0 pushed before our increment, so we see its job here.
        let work_visible = !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty());
        if !work_visible && !self.terminate.load(Ordering::SeqCst) {
            let _ = self.sleep_cvar.wait_timeout(guard, Duration::from_millis(2)).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Ask the workers to exit once the queues drain, and wake them all.
    pub(crate) fn request_terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        let _guard = self.sleep_lock.lock().unwrap();
        self.sleep_cvar.notify_all();
    }

    /// Run `f` inside this pool: inject it, block until a worker finishes
    /// it, rethrow its panic if it had one.  Called from non-worker threads
    /// (workers run closures for their own pool directly).
    pub(crate) fn in_worker<F, R>(self: &Arc<Self>, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(LockLatch::new(), f);
        // Safety: we block on the latch below, so `job` outlives execution.
        let job_ref = unsafe { job.as_job_ref() };
        self.injector.push(job_ref);
        self.notify();
        job.latch.wait();
        match unsafe { job.take_result() } {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// The global pool
// ---------------------------------------------------------------------------

static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

/// Worker count for the global pool / outside any pool: `RAYON_NUM_THREADS`
/// (the upstream env knob, which the CI thread-count matrix sets) or the
/// hardware parallelism.
pub(crate) fn default_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// The lazily-spawned global registry (its worker handles are leaked — the
/// global pool lives for the process).
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL_REGISTRY.get_or_init(|| Registry::spawn(default_num_threads()).0)
}

/// Number of worker threads of the current pool: the enclosing pool's size
/// on a worker thread; the global pool's (configured) size elsewhere.
pub fn current_num_threads() -> usize {
    let worker = WorkerThread::current();
    if worker.is_null() {
        match GLOBAL_REGISTRY.get() {
            Some(registry) => registry.num_threads,
            None => default_num_threads(),
        }
    } else {
        // Safety: non-null ⇒ this thread is the worker, which outlives us.
        let worker = unsafe { &*worker };
        worker.registry.num_threads
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results.
///
/// On a worker thread, `oper_b` is published on the worker's deque for
/// thieves while the worker runs `oper_a` itself; it then pops `oper_b` back
/// (the common, theft-free case runs both inline with no synchronisation
/// beyond two deque operations) or, if `oper_b` was stolen, *steals other
/// work* while waiting for the thief to finish.  Outside a pool the whole
/// join is shipped to the global pool first.  Single-thread pools run both
/// closures sequentially on the spot.
///
/// If either closure panics, the panic payload is re-raised on the caller
/// via [`std::panic::resume_unwind`] (both closures are always waited for,
/// so no work is left dangling on the deque when the panic propagates —
/// upstream rayon's semantics).  If both panic, `oper_a`'s payload wins.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WorkerThread::current();
    if worker.is_null() {
        let registry = global_registry();
        if registry.num_threads <= 1 {
            let ra = oper_a();
            let rb = oper_b();
            return (ra, rb);
        }
        return registry.in_worker(move || join(oper_a, oper_b));
    }
    // Safety: `worker` is the current thread's own WorkerThread; it outlives
    // this call because worker_main only returns after its loop exits.
    let worker = unsafe { &*worker };
    if worker.registry.num_threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let job_b = StackJob::new(SpinLatch::new(), oper_b);
    // Safety: we do not return before the latch is released (the wait loop
    // below), so job_b outlives any thief.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    worker.push(job_b_ref);

    // Run `a` ourselves, capturing a panic so `b` is still waited for (a
    // thief may be running it on our stack data right now).
    let status_a = catch_unwind(AssertUnwindSafe(oper_a));

    while !job_b.latch.probe() {
        match worker.pop() {
            // The popped job is almost always `job_b` itself (LIFO deque);
            // executing whatever came off is correct either way.
            Some(job) => unsafe { job.execute() },
            None => {
                // `b` was stolen: contribute to someone else's work instead
                // of spinning idle.
                match worker.find_stealable() {
                    Some(job) => unsafe { job.execute() },
                    None => std::thread::yield_now(),
                }
            }
        }
    }
    // Safety: latch released → result stored, nobody else touches job_b.
    let status_b = unsafe { job_b.take_result() };
    match (status_a, status_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (Ok(_), Err(payload)) => resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// Running closures inside a pool (shared by install and the par-iter layer)
// ---------------------------------------------------------------------------

/// Run `f` so that `join`s inside it land on a real pool: inline when the
/// current thread is already a worker (or the global pool is single-thread,
/// where sequential is both correct and cheapest), shipped to the global
/// pool otherwise.
pub(crate) fn run_in_pool<R, F>(f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let worker = WorkerThread::current();
    if !worker.is_null() {
        return f();
    }
    let registry = global_registry();
    if registry.num_threads <= 1 {
        f()
    } else {
        registry.in_worker(f)
    }
}

/// True when the calling thread belongs to `registry`.
pub(crate) fn on_worker_of(registry: &Arc<Registry>) -> bool {
    let worker = WorkerThread::current();
    !worker.is_null() && Arc::ptr_eq(unsafe { &(*worker).registry }, registry)
}
