//! Parallel slice views (`par_iter`, `par_chunks`, mutable variants) and
//! parallel stable sorting.
//!
//! The sort is a classic parallel stable merge sort: halves are sorted
//! recursively through [`crate::join`] down to a sequential floor (where
//! `slice::sort_by` — itself stable — takes over), then merged through a
//! scratch buffer.  The recursion shape depends only on the slice length,
//! and every merge is stable, so the result is identical to a sequential
//! stable sort regardless of thread count or interleaving.

use crate::iter::{ChunksMutSource, ChunksSource, IterMutSource, Par, SliceSource};
use crate::registry::{current_num_threads, run_in_pool};
use std::cmp::Ordering;
use std::marker::PhantomData;
use std::mem::MaybeUninit;

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<SliceSource<'_, T>>;

    /// Parallel iterator over non-overlapping chunks of `chunk_size`
    /// elements (the last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceSource<'_, T>> {
        Par::new(SliceSource { slice: self })
    }

    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSource<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Par::new(ChunksSource { slice: self, chunk: chunk_size })
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<IterMutSource<'_, T>>;

    /// Parallel iterator over non-overlapping `&mut` chunks of `chunk_size`
    /// elements (the last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSource<'_, T>>;

    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;

    /// Parallel stable sort by a comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Parallel stable sort by a key-extraction function.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<IterMutSource<'_, T>> {
        Par::new(IterMutSource { ptr: self.as_mut_ptr(), len: self.len(), marker: PhantomData })
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSource<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Par::new(ChunksMutSource { ptr: self.as_mut_ptr(), len: self.len(), chunk: chunk_size, marker: PhantomData })
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.par_sort_by(T::cmp);
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        if self.len() <= SEQUENTIAL_SORT_FLOOR {
            self.sort_by(|a, b| compare(a, b));
            return;
        }
        let compare = &compare;
        run_in_pool(move || par_merge_sort(self, compare));
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_by(|a, b| key(a).cmp(&key(b)));
    }
}

/// Below this length a leaf is sorted with the (stable) standard sort.
const SEQUENTIAL_SORT_FLOOR: usize = 2048;

fn par_merge_sort<T: Send, F>(v: &mut [T], compare: &F)
where
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if n <= SEQUENTIAL_SORT_FLOOR || current_num_threads() <= 1 {
        v.sort_by(|a, b| compare(a, b));
        return;
    }
    let mid = n / 2;
    let (lo, hi) = v.split_at_mut(mid);
    crate::join(|| par_merge_sort(lo, compare), || par_merge_sort(hi, compare));
    merge_sorted_halves(v, mid, compare);
}

/// Stable merge of the sorted halves `v[..mid]` and `v[mid..]` in place,
/// through a scratch buffer.
///
/// Panic safety: the elements are bitwise-moved into scratch and merged
/// back by position.  A drop guard tracks which scratch elements have not
/// yet been copied back; if the comparator panics, the guard copies the
/// unconsumed remainder into the unwritten tail of `v`, so `v` again owns
/// every element exactly once (in unspecified order) and nothing is
/// double-dropped or leaked.  The same guard performs the ordinary tail
/// copy on the non-panic path.
fn merge_sorted_halves<T, F>(v: &mut [T], mid: usize, compare: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = v.len();
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    unsafe {
        std::ptr::copy_nonoverlapping(v.as_ptr().cast::<MaybeUninit<T>>(), scratch.as_mut_ptr(), n);
        scratch.set_len(n);
    }

    struct MergeGuard<T> {
        src: *const T,
        dst: *mut T,
        /// Next unconsumed index of the left run (`..mid`).
        i: usize,
        /// Next unconsumed index of the right run (`mid..n`).
        j: usize,
        mid: usize,
        n: usize,
        /// Next unwritten slot of `dst`.
        k: usize,
    }

    impl<T> Drop for MergeGuard<T> {
        fn drop(&mut self) {
            // Copy everything not yet merged back into the remaining slots.
            // Normally one run is exhausted and this is the ordinary merge
            // tail; after a comparator panic both runs may be non-empty and
            // this restores ownership of every element to `v`.
            unsafe {
                let mut k = self.k;
                for idx in self.i..self.mid {
                    std::ptr::copy_nonoverlapping(self.src.add(idx), self.dst.add(k), 1);
                    k += 1;
                }
                for idx in (self.mid + self.j)..self.n {
                    std::ptr::copy_nonoverlapping(self.src.add(idx), self.dst.add(k), 1);
                    k += 1;
                }
            }
        }
    }

    let mut guard = MergeGuard { src: scratch.as_ptr().cast::<T>(), dst: v.as_mut_ptr(), i: 0, j: 0, mid, n, k: 0 };
    unsafe {
        while guard.i < guard.mid && guard.mid + guard.j < guard.n {
            let left = &*guard.src.add(guard.i);
            let right = &*guard.src.add(guard.mid + guard.j);
            // Take from the right run only when strictly smaller: ties go
            // left, which is what makes the merge stable.
            if compare(right, left) == Ordering::Less {
                std::ptr::copy_nonoverlapping(right, guard.dst.add(guard.k), 1);
                guard.j += 1;
            } else {
                std::ptr::copy_nonoverlapping(left, guard.dst.add(guard.k), 1);
                guard.i += 1;
            }
            guard.k += 1;
        }
    }
    // Guard's drop writes the tail (scratch is MaybeUninit: dropping it
    // frees only the buffer, never the elements — `v` owns them again).
    drop(guard);
}
