//! Parallel iterators over indexable sources.
//!
//! Instead of upstream rayon's producer/consumer plumbing, everything here
//! is built on one abstraction: a [`Source`] is a `Send + Sync` view of `n`
//! items addressable by index, with the contract that each index is read
//! *at most once* (which is what lets a source hand out `&mut T` or owned
//! `T` by index).  Adapters (`map`, `enumerate`, `zip`) wrap sources into
//! sources; consumers (`for_each`, `collect`, `sum`, `any`) drive the
//! index range through [`crate::join`]-based recursive binary splitting.
//!
//! Splitting policy: the range is halved until pieces are at most
//! `len / (8 × threads)` (floor 1), then each leaf runs sequentially.  With
//! one thread — or off-worker with a single-thread global pool — the whole
//! range runs inline with no scheduling at all.  Consumers that *combine*
//! results do so in a fixed tree shape independent of which thread ran
//! which leaf, and `collect` writes each item at its own index, so results
//! are bitwise identical across thread counts (pinned by the determinism
//! suite in `tests/determinism.rs` at the workspace root).

use crate::registry::{current_num_threads, run_in_pool};
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------------
// The Source abstraction and the split driver
// ---------------------------------------------------------------------------

/// An indexable, thread-safe supply of `len()` items.
///
/// # Safety
/// Implementors must guarantee that `get(i)` is sound for any `i < len()`
/// from any thread, **provided each index is passed at most once** over the
/// source's lifetime.  (Exclusive references and owned values rely on that
/// exclusivity; shared references simply ignore it.)
pub unsafe trait Source: Send + Sync {
    /// The element produced for each index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index`.
    ///
    /// # Safety
    /// `index < self.len()`, and no index may be requested twice.
    unsafe fn get(&self, index: usize) -> Self::Item;
}

/// Largest leaf size for `n` items: aim for ~8 pieces per worker so theft
/// balances uneven leaves, floor 1.  Returns `n` (i.e. "don't split") when
/// the current pool is single-threaded.
fn piece_len(n: usize) -> usize {
    let threads = current_num_threads().max(1);
    if threads <= 1 {
        n.max(1)
    } else {
        (n / (threads * 8)).max(1)
    }
}

/// Recursively split `lo..hi` down to `piece`, run `leaf` on each piece via
/// `join`, and combine results with `merge` in the (deterministic) shape of
/// the split tree.
fn split_run<R, L, M>(lo: usize, hi: usize, piece: usize, leaf: &L, merge: &M) -> R
where
    R: Send,
    L: Fn(usize, usize) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    if hi - lo <= piece {
        return leaf(lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let (ra, rb) = crate::join(|| split_run(lo, mid, piece, leaf, merge), || split_run(mid, hi, piece, leaf, merge));
    merge(ra, rb)
}

/// A raw pointer that may cross threads (used for indexed `collect` writes;
/// disjointness comes from the at-most-once index contract).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor instead of field access, so closures capture the whole
    /// wrapper (Send + Sync) rather than the raw-pointer field (neither).
    fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// The public parallel-iterator wrapper and its consumers
// ---------------------------------------------------------------------------

/// A parallel iterator over a [`Source`].
#[derive(Debug, Clone, Copy)]
pub struct Par<S> {
    source: S,
}

impl<S: Source> Par<S> {
    pub(crate) fn new(source: S) -> Par<S> {
        Par { source }
    }

    /// Transform each item with `f`.
    pub fn map<R, F>(self, f: F) -> Par<MapSource<S, F>>
    where
        R: Send,
        F: Fn(S::Item) -> R + Sync + Send,
    {
        Par::new(MapSource { base: self.source, f })
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> Par<EnumerateSource<S>> {
        Par::new(EnumerateSource { base: self.source })
    }

    /// Pair items with another source's items positionally (length is the
    /// minimum of the two).
    pub fn zip<T>(self, other: T) -> Par<ZipSource<S, T::Source>>
    where
        T: IntoParallelIterator,
    {
        Par::new(ZipSource { a: self.source, b: other.into_par_iter().source })
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync + Send,
    {
        let source = self.source;
        let n = source.len();
        if n == 0 {
            return;
        }
        run_in_pool(move || {
            let piece = piece_len(n);
            let leaf = |lo: usize, hi: usize| {
                for i in lo..hi {
                    // Safety: split_run hands each index to exactly one leaf.
                    f(unsafe { source.get(i) });
                }
            };
            if piece >= n {
                leaf(0, n);
            } else {
                split_run(0, n, piece, &leaf, &|(), ()| ());
            }
        });
    }

    /// Collect the items into `C`, preserving index order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<S::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items.  Leaves are summed left-to-right and combined in the
    /// fixed split-tree shape, so integer results match the sequential sum
    /// bit for bit.
    pub fn sum<Out>(self) -> Out
    where
        Out: Send + std::iter::Sum<S::Item> + std::iter::Sum<Out>,
    {
        let source = self.source;
        let n = source.len();
        run_in_pool(move || {
            let piece = piece_len(n.max(1));
            let leaf = |lo: usize, hi: usize| -> Out {
                // Safety: each index visited by exactly one leaf.
                (lo..hi).map(|i| unsafe { source.get(i) }).sum()
            };
            if piece >= n {
                leaf(0, n)
            } else {
                split_run(0, n, piece, &leaf, &|a, b| [a, b].into_iter().sum())
            }
        })
    }

    /// Does `f` hold for any item?  Leaves short-circuit through a shared
    /// flag once a match is found anywhere.
    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(S::Item) -> bool + Sync + Send,
    {
        let source = self.source;
        let n = source.len();
        if n == 0 {
            return false;
        }
        run_in_pool(move || {
            let piece = piece_len(n);
            if piece >= n {
                // Safety: sequential pass, each index once.
                return (0..n).any(|i| f(unsafe { source.get(i) }));
            }
            let found = AtomicBool::new(false);
            let leaf = |lo: usize, hi: usize| {
                if !found.load(Ordering::Relaxed) {
                    // Safety: each index visited by exactly one leaf.  Items
                    // in skipped leaves are dropped unread, which the
                    // at-most-once contract permits.
                    if (lo..hi).any(|i| f(unsafe { source.get(i) })) {
                        found.store(true, Ordering::Relaxed);
                    }
                }
            };
            split_run(0, n, piece, &leaf, &|(), ()| ());
            found.load(Ordering::Relaxed)
        })
    }
}

/// Types constructible from a parallel iterator (the target of
/// [`Par::collect`]).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` by consuming the iterator in parallel.
    fn from_par_iter<S>(par: Par<S>) -> Self
    where
        S: Source<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S>(par: Par<S>) -> Vec<T>
    where
        S: Source<Item = T>,
    {
        let source = par.source;
        let n = source.len();
        let mut out: Vec<T> = Vec::with_capacity(n);
        let dst = SendPtr(out.as_mut_ptr());
        run_in_pool(move || {
            let piece = piece_len(n.max(1));
            let leaf = |lo: usize, hi: usize| {
                for i in lo..hi {
                    // Safety: index handed out once; slot `i` of the
                    // reserved buffer is written exactly once.
                    unsafe { dst.get().add(i).write(source.get(i)) };
                }
            };
            if piece >= n {
                leaf(0, n);
            } else {
                split_run(0, n, piece, &leaf, &|(), ()| ());
            }
        });
        // All n slots written (run_in_pool re-raises any panic before we
        // get here, leaving `out` at len 0 — written items leak, safely).
        unsafe { out.set_len(n) };
        out
    }
}

impl<K, V> FromParallelIterator<(K, V)> for std::collections::HashMap<K, V>
where
    K: std::hash::Hash + Eq + Send,
    V: Send,
{
    fn from_par_iter<S>(par: Par<S>) -> std::collections::HashMap<K, V>
    where
        S: Source<Item = (K, V)>,
    {
        // Pairs are produced in parallel (preserving index order), the map
        // is built sequentially — insertion order is deterministic, so maps
        // with order-sensitive iteration would still match across runs.
        let pairs: Vec<(K, V)> = par.collect();
        pairs.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Source adapter for [`Par::map`].
pub struct MapSource<S, F> {
    base: S,
    f: F,
}

unsafe impl<S, F, R> Source for MapSource<S, F>
where
    S: Source,
    F: Fn(S::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, index: usize) -> R {
        (self.f)(self.base.get(index))
    }
}

/// Source adapter for [`Par::enumerate`].
pub struct EnumerateSource<S> {
    base: S,
}

unsafe impl<S: Source> Source for EnumerateSource<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, index: usize) -> (usize, S::Item) {
        (index, self.base.get(index))
    }
}

/// Source adapter for [`Par::zip`].
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: Source, B: Source> Source for ZipSource<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.get(index), self.b.get(index))
    }
}

// ---------------------------------------------------------------------------
// Leaf sources: slices
// ---------------------------------------------------------------------------

/// Shared-reference view of a slice (`par_iter`).
pub struct SliceSource<'a, T> {
    pub(crate) slice: &'a [T],
}

unsafe impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, index: usize) -> &'a T {
        self.slice.get_unchecked(index)
    }
}

/// Fixed-size chunk view of a slice (`par_chunks`).
pub struct ChunksSource<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) chunk: usize,
}

unsafe impl<'a, T: Sync> Source for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn get(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        self.slice.get_unchecked(lo..hi)
    }
}

/// Exclusive per-element view of a slice (`par_iter_mut`).  Disjointness of
/// the `&mut` handed out relies on the at-most-once index contract.
pub struct IterMutSource<'a, T> {
    pub(crate) ptr: *mut T,
    pub(crate) len: usize,
    pub(crate) marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for IterMutSource<'_, T> {}
unsafe impl<T: Send> Sync for IterMutSource<'_, T> {}

unsafe impl<'a, T: Send + 'a> Source for IterMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    #[allow(clippy::mut_from_ref)] // sound: each index is taken at most once
    unsafe fn get(&self, index: usize) -> &'a mut T {
        &mut *self.ptr.add(index)
    }
}

/// Exclusive fixed-size chunk view of a slice (`par_chunks_mut`).
pub struct ChunksMutSource<'a, T> {
    pub(crate) ptr: *mut T,
    pub(crate) len: usize,
    pub(crate) chunk: usize,
    pub(crate) marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ChunksMutSource<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

unsafe impl<'a, T: Send + 'a> Source for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    #[allow(clippy::mut_from_ref)] // sound: chunks are disjoint, each taken once
    unsafe fn get(&self, index: usize) -> &'a mut [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Leaf sources: ranges and owned vectors
// ---------------------------------------------------------------------------

/// Integer types whose `Range` can be parallel-iterated.
pub trait RangeInt: Copy + Send + Sync {
    /// `self + n`, where `n` is known to stay within the original range.
    fn offset(self, n: usize) -> Self;
    /// `max(end - start, 0)` as a `usize`.
    fn span(start: Self, end: Self) -> usize;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn offset(self, n: usize) -> $t {
                self + n as $t
            }
            fn span(start: $t, end: $t) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
        }
    )*};
}

impl_range_int!(usize, u64, u32, u16, isize, i64, i32, i16);

/// Parallel view of an integer range (`(a..b).into_par_iter()`).
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

unsafe impl<T: RangeInt> Source for RangeSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, index: usize) -> T {
        self.start.offset(index)
    }
}

/// Owning source over a `Vec` (`vec.into_par_iter()`): elements are moved
/// out by index; the vector keeps the allocation alive at length zero.  If
/// a consumer panics, items not yet read leak (they are never dropped) —
/// safe, and the same trade upstream's drain-style plumbing avoids with
/// machinery we don't need here.
pub struct VecSource<T> {
    ptr: *const T,
    len: usize,
    _own: Vec<T>,
}

unsafe impl<T: Send> Send for VecSource<T> {}
unsafe impl<T: Send> Sync for VecSource<T> {}

unsafe impl<T: Send> Source for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, index: usize) -> T {
        std::ptr::read(self.ptr.add(index))
    }
}

// ---------------------------------------------------------------------------
// IntoParallelIterator
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (ranges, owned vectors; slices get
/// their own traits in [`crate::slice`]).
pub trait IntoParallelIterator {
    /// The underlying indexable source.
    type Source: Source;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Source>;
}

impl<S: Source> IntoParallelIterator for Par<S> {
    type Source = S;

    fn into_par_iter(self) -> Par<S> {
        self
    }
}

impl<T: RangeInt> IntoParallelIterator for Range<T> {
    type Source = RangeSource<T>;

    fn into_par_iter(self) -> Par<RangeSource<T>> {
        let len = T::span(self.start, self.end);
        Par::new(RangeSource { start: self.start, len })
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Source = VecSource<T>;

    fn into_par_iter(mut self) -> Par<VecSource<T>> {
        let ptr = self.as_ptr();
        let len = self.len();
        // Move ownership of the elements to the source; the Vec (moved into
        // `_own`, buffer address unchanged) only frees the allocation.
        unsafe { self.set_len(0) };
        Par::new(VecSource { ptr, len, _own: self })
    }
}
