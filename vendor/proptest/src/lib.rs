//! Vendored minimal stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset the property tests use: the [`Strategy`] trait with
//! `prop_map`, ranges and tuples as strategies, [`any`], `collection::vec`,
//! [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.  Differences from upstream:
//! case generation is **deterministic** (seeded from the test name, so CI is
//! reproducible) and failing cases are **not shrunk** — the failing assertion
//! and its source location are reported as-is.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to sample strategy values (the vendored rand
/// stub's [`StdRng`], seeded from the test name via FNV-1a).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from a label (the test function's name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a generated test case did not pass.
pub enum TestCaseError {
    /// A `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert!` failed; abort the test.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification: fixed, half-open or inclusive range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy generating `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*` should bring into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                ::std::format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define property tests.  Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(50).max(100);
            while accepted < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} accepted of {} wanted after {} attempts)",
                        stringify!($name), accepted, config.cases, attempts
                    );
                }
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` failed (case {}): {}", stringify!($name), accepted + 1, msg)
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens(limit: i64) -> impl Strategy<Value = i64> {
        (0..limit).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, n in 1usize..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply(e in evens(100)) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0i64..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest `always_fails` failed")]
        fn always_fails(x in 0i64..10) {
            prop_assert!(x > 100);
        }
    }
}
