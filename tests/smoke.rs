//! Smoke test: the three independent engines — the O(n^2) sequential
//! construction of Section 9 (`seq`, via `VertexApsp::build_sequential`), the
//! Hanan-grid Dijkstra baseline, and the divide-and-conquer `BoundaryMatrix`
//! of Section 5 — agree on shortest-path lengths for small seeded
//! `uniform_disjoint` workloads.

use rectilinear_shortest_paths::core::apsp::VertexApsp;
use rectilinear_shortest_paths::core::dnc::{build_boundary_matrix_bbox, DncOptions};
use rectilinear_shortest_paths::geom::hanan::{ground_truth_distance, ground_truth_matrix};
use rectilinear_shortest_paths::workload::uniform_disjoint;

#[test]
fn seq_baseline_and_dnc_agree_on_small_uniform_workloads() {
    for (n, seed) in [(4usize, 1u64), (6, 2), (8, 3)] {
        let w = uniform_disjoint(n, seed);
        let obs = &w.obstacles;
        let verts = obs.vertices();

        // Section 9 sequential engine vs the Hanan-grid Dijkstra baseline,
        // over all vertex pairs.
        let seq = VertexApsp::build_sequential(obs);
        let hanan = ground_truth_matrix(obs, &verts);
        for i in 0..verts.len() {
            for j in 0..verts.len() {
                assert_eq!(
                    seq.distance(i, j),
                    hanan[i][j],
                    "{}: seq vs hanan at {:?} -> {:?}",
                    w.name,
                    verts[i],
                    verts[j]
                );
            }
        }

        // Section 5 divide-and-conquer boundary matrix vs the same baseline,
        // over its boundary discretisation points (subsampled for speed).
        let bm = build_boundary_matrix_bbox(obs, 3, &DncOptions::default());
        for (i, &a) in bm.points.iter().enumerate().step_by(3) {
            for &b in bm.points.iter().skip(i).step_by(4) {
                let via_dnc = bm.distance_between(a, b).expect("boundary points are in the matrix");
                assert_eq!(via_dnc, ground_truth_distance(obs, a, b), "{}: dnc vs hanan at {a:?} -> {b:?}", w.name);
            }
        }
    }
}
