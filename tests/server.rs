//! Integration tests for the `rsp-server` serving subsystem: concurrent
//! TCP clients sharing build-once sessions, coalesced answers agreeing
//! bitwise with direct `Router` calls, the LRU residency bound over the
//! wire, and (property-based) the `RspError` → `ServerError` wire mapping
//! preserving every variant's evidence through serialisation.

use proptest::prelude::*;
use rectilinear_shortest_paths::geom::DisjointnessViolation;
use rectilinear_shortest_paths::server::{Client, RspService, Server, ServerError, ServiceConfig};
use rectilinear_shortest_paths::workload::{query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{ObstacleSet, Point, Rect, Router, RspError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Three concurrent TCP clients over two scenes: every answer (coalesced
/// singles, pre-batched, paths) must agree with a direct `Router` on the
/// same geometry, and the two scenes must build exactly twice no matter
/// how many clients load them.
#[test]
fn three_concurrent_clients_share_two_sessions() {
    let scene_a = uniform_disjoint(8, 101).obstacles;
    let scene_b = uniform_disjoint(8, 202).obstacles;
    let direct_a = Router::new(scene_a.clone()).unwrap();
    let direct_b = Router::new(scene_b.clone()).unwrap();

    let config = ServiceConfig { shards: 2, batch_window: Duration::from_micros(100), ..ServiceConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", RspService::new(config)).unwrap();
    let addr = server.addr();

    // Clients 0 and 1 hammer scene A (their loads must share one session);
    // client 2 works scene B.
    let mut handles = Vec::new();
    for worker in 0..3usize {
        let (obstacles, direct_seed) = if worker < 2 { (scene_a.clone(), 101u64) } else { (scene_b.clone(), 202) };
        handles.push(thread::spawn(move || {
            let direct = Router::new(obstacles.clone()).unwrap();
            let mut client = Client::connect(addr).unwrap();
            let scene = client.load_scene(&obstacles).unwrap();
            assert_eq!(scene, obstacles.scene_hash());

            // Coalesced single queries: bitwise-identical to direct calls.
            let mut pairs = query_pairs(&obstacles, 12, true, direct_seed + worker as u64);
            pairs.extend(query_pairs(&obstacles, 12, false, direct_seed + 10 + worker as u64));
            for &(a, b) in &pairs {
                assert_eq!(client.distance(scene, a, b).unwrap(), direct.distance(a, b).unwrap(), "{a:?}->{b:?}");
            }

            // Pre-batched queries: index-aligned and identical.
            assert_eq!(client.batch_distances(scene, &pairs).unwrap(), direct.distances(&pairs).unwrap());

            // A path certifies against the distance it claims.
            let verts = obstacles.vertices();
            let path = client.path(scene, verts[0], verts[verts.len() - 1]).unwrap();
            assert_eq!(path.length(), direct.vertex_distance(verts[0], verts[verts.len() - 1]).unwrap());
            assert!(path.avoids(&obstacles));
            scene
        }));
    }
    let scenes: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(scenes[0], scenes[1], "clients 0 and 1 share a scene id");
    assert_ne!(scenes[0], scenes[2]);

    // Two distinct scenes, three clients: exactly two Router builds.
    let stats = server.service().stats();
    assert_eq!(stats.total_builds(), 2, "{stats:?}");
    assert_eq!(stats.total_resident(), 2);

    // The resident sessions are the ones every client used, built once each
    // (BuildCounts certifies the lazy substructures), and repeated lookups
    // hand out the same `Arc<Router>`.
    let session_a = server.service().session(scenes[0]).unwrap();
    assert!(Arc::ptr_eq(&session_a, &server.service().session(scenes[0]).unwrap()));
    assert_eq!(session_a.build_counts().oracle_builds, 1);
    let session_b = server.service().session(scenes[2]).unwrap();
    assert_eq!(session_b.build_counts().oracle_builds, 1);
    assert_eq!(
        session_a.distance(Point::new(0, 0), Point::new(3, 3)),
        direct_a.distance(Point::new(0, 0), Point::new(3, 3))
    );
    assert_eq!(
        session_b.distance(Point::new(0, 0), Point::new(3, 3)),
        direct_b.distance(Point::new(0, 0), Point::new(3, 3))
    );

    // Wire-level stats and evict agree with the service view.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.stats().unwrap().total_resident(), 2);
    assert!(client.evict(scenes[0]).unwrap());
    assert!(!client.evict(scenes[0]).unwrap());
    match client.distance(scenes[0], Point::new(0, 0), Point::new(1, 1)) {
        Err(e) => assert_eq!(
            format!("{e}"),
            format!("server error: scene {:#018x} is not resident (load it first)", scenes[0])
        ),
        Ok(d) => panic!("evicted scene still answered: {d}"),
    }
    server.shutdown();
}

/// The session cache's LRU bound holds over the wire: a one-shard server
/// with capacity 2 stays at two resident sessions while a client cycles
/// through four scenes.
#[test]
fn lru_bound_caps_resident_sessions_over_tcp() {
    let config = ServiceConfig { shards: 1, session_capacity: 2, ..ServiceConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", RspService::new(config)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let mut ids = Vec::new();
    for offset in 0..4i64 {
        let obstacles = ObstacleSet::new(vec![Rect::new(offset * 20, 0, offset * 20 + 3, 5)]);
        let scene = client.load_scene(&obstacles).unwrap();
        // The freshly loaded scene is usable immediately.
        let d = client.distance(scene, Point::new(offset * 20 - 2, 0), Point::new(offset * 20 + 5, 5)).unwrap();
        assert!(d > 0);
        ids.push(scene);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.total_resident(), 2, "{stats:?}");
    assert_eq!(stats.total_evictions(), 2);
    assert_eq!(stats.total_builds(), 4);
    // The two most recent scenes survived; the oldest was evicted.
    assert!(server.service().session(ids[3]).is_ok());
    assert_eq!(server.service().session(ids[0]).err(), Some(ServerError::UnknownScene { scene: ids[0] }));
    server.shutdown();
}

/// Build one of each `RspError` variant from sampled evidence.
fn rsp_error_from(selector: u8, x: i64, y: i64, id_a: usize, id_b: usize) -> RspError {
    match selector % 7 {
        0 => RspError::OverlappingObstacles(DisjointnessViolation {
            first: id_a,
            second: id_b,
            first_rect: Rect::new(x, y, x + 2, y + 2),
            second_rect: Rect::new(x + 1, y + 1, x + 3, y + 3),
        }),
        1 => RspError::ObstacleOutsideContainer(id_a),
        2 => RspError::ContainerNotConvex,
        3 => RspError::NotAVertex(Point::new(x, y)),
        4 => RspError::PointOutsideContainer(Point::new(x, y)),
        5 => RspError::PointInsideObstacle { point: Point::new(x, y), obstacle: id_b },
        _ => RspError::ThreadPool(format!("pool of {id_a} threads unavailable")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every `RspError` variant maps onto a `ServerError`, survives a
    /// serialize → deserialize round trip bit-for-bit, and maps back to an
    /// `RspError` rendering identically (the evidence is intact).
    #[test]
    fn every_rsp_error_survives_the_wire(
        selector in 0u8..7,
        x in -1000i64..1000,
        y in -1000i64..1000,
        id_a in 0usize..10_000,
        id_b in 0usize..10_000,
    ) {
        let original = rsp_error_from(selector, x, y, id_a, id_b);
        let wire = ServerError::from(original.clone());
        let json = serde_json::to_string(&wire).expect("serialise");
        let decoded: ServerError = serde_json::from_str(&json).expect("deserialise");
        prop_assert_eq!(&decoded, &wire);
        // The evidence survives: mapping back yields an error that renders
        // exactly like the original (Display carries every field).
        let back = decoded.into_rsp().expect("mirrored variants map back");
        prop_assert_eq!(format!("{back}"), format!("{original}"));
        prop_assert_eq!(format!("{}", ServerError::from(back)), format!("{wire}"));
    }
}
