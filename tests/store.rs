//! Distance-store certification: the byte-budgeted implicit backend must be
//! a **bitwise-transparent** stand-in for the dense matrix, and it must
//! actually deliver the memory win that justifies its existence.
//!
//! Two angles:
//!
//! * A property sweep over every engine and all three workload families
//!   (uniform, clustered, corridors) comparing `StoreKind::Dense` against a
//!   deliberately starved `StoreKind::Implicit` (two-row budget, so eviction
//!   churn is constant) — distances and paths must agree bit for bit.
//! * A memory-scaling test at n = 512 / 1024 / 2048 pinning the acceptance
//!   bar from the O(n²) wall: the implicit store's resident bytes stay
//!   within its budget, and at n = 2048 that budget — and therefore the
//!   residency — is at most 10% of the 512 MiB dense matrix.

use proptest::prelude::*;
use rectilinear_shortest_paths::core::apsp::VertexApsp;
use rectilinear_shortest_paths::core::store::{default_budget_bytes, dense_bytes_for};
use rectilinear_shortest_paths::workload::{clustered, corridors, query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Dist, Engine, ObstacleSet, Point, Router, StoreKind};

/// An implicit store starved down to two resident rows, so every batch
/// exercises materialise → evict → re-materialise while it runs.
fn starved(obstacles: &ObstacleSet) -> StoreKind {
    let row_bytes = 4 * obstacles.len() * std::mem::size_of::<Dist>();
    StoreKind::Implicit { budget_bytes: 2 * row_bytes }
}

/// One of the three workload families, selected by index (proptest draws
/// the index so the sweep covers all of them).
fn family(which: usize, n: usize, seed: u64) -> ObstacleSet {
    match which {
        0 => uniform_disjoint(n, seed).obstacles,
        1 => clustered(n, 2, seed).obstacles,
        _ => corridors(n.max(2), 30, seed).obstacles,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every engine and scene family, the starved implicit store serves
    /// the same bits as the dense matrix — distances on mixed batches and
    /// paths on vertex pairs.
    #[test]
    fn implicit_store_is_bitwise_equal_to_dense(
        which in 0usize..3,
        n in 2usize..7,
        scene_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let obstacles = family(which, n, scene_seed);
        let mut pairs = query_pairs(&obstacles, 10, false, batch_seed);
        pairs.extend(query_pairs(&obstacles, 10, true, batch_seed + 1));
        let vertex_pairs = query_pairs(&obstacles, 8, true, batch_seed + 2);
        prop_assume!(!pairs.is_empty());
        for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
            let serve = |store: StoreKind| {
                let router = Router::builder(obstacles.clone()).engine(engine).store(store).build().expect("valid scene");
                (
                    router.distances(&pairs).expect("distance batch"),
                    router.paths(&vertex_pairs).expect("path batch"),
                )
            };
            let (dense_dist, dense_paths) = serve(StoreKind::Dense);
            let (impl_dist, impl_paths) = serve(starved(&obstacles));
            prop_assert_eq!(&impl_dist, &dense_dist);
            prop_assert_eq!(&impl_paths, &dense_paths);
        }
    }

    /// The batch planner is invisible in results and visible in sweeps: a
    /// vertex batch full of duplicates and flipped orientations is
    /// bitwise-equal to dense across every engine, and the starved store's
    /// miss counter is bounded by the number of distinct canonical rows —
    /// i.e. each providing row is swept at most once per batch even though
    /// the two-row budget cannot hold the batch's working set.
    #[test]
    fn planned_batches_are_bitwise_dense_with_bounded_sweeps(
        which in 0usize..3,
        n in 2usize..7,
        scene_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let obstacles = family(which, n, scene_seed);
        let base = query_pairs(&obstacles, 12, true, batch_seed);
        prop_assume!(!base.is_empty());
        let mut pairs = base.clone();
        pairs.extend(base.iter().map(|&(a, b)| (b, a)));
        pairs.extend_from_slice(&base[..base.len() / 2]);
        let verts = obstacles.vertices();
        let index: std::collections::HashMap<Point, usize> =
            verts.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let distinct_rows = pairs
            .iter()
            .map(|&(a, b)| std::cmp::min(index[&a], index[&b]))
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
            let build = |store: StoreKind| {
                Router::builder(obstacles.clone()).engine(engine).store(store).build().expect("valid scene")
            };
            let dense = build(StoreKind::Dense);
            let implicit = build(starved(&obstacles));
            prop_assert_eq!(implicit.distances(&pairs).expect("batch"), dense.distances(&pairs).expect("batch"));
            let stats = implicit.memory_stats();
            prop_assert!(
                stats.row_misses <= distinct_rows,
                "{} sweeps for {} distinct canonical rows", stats.row_misses, distinct_rows
            );
            prop_assert_eq!(stats.pinned_bytes, 0);
        }
    }

    /// Batch deduplication is exact: a batch with repeated and flipped
    /// arbitrary-point pairs — the slow ray-shooting path — and repeated
    /// vertex path reports answers every slot bitwise-identically to the
    /// equivalent per-call sequence.
    #[test]
    fn deduped_batches_equal_per_call_answers(
        which in 0usize..3,
        n in 2usize..6,
        scene_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let obstacles = family(which, n, scene_seed);
        let base = query_pairs(&obstacles, 8, false, batch_seed);
        prop_assume!(!base.is_empty());
        let mut pairs = base.clone();
        pairs.extend_from_slice(&base[..base.len().div_ceil(2)]);
        pairs.extend(base.iter().map(|&(a, b)| (b, a)));
        let router = Router::new(obstacles.clone()).expect("valid scene");
        let batch = router.distances(&pairs).expect("batch");
        for (&(a, b), &d) in pairs.iter().zip(&batch) {
            prop_assert_eq!(d, router.distance(a, b).expect("per-call"));
        }
        let vbase = query_pairs(&obstacles, 4, true, batch_seed ^ 0x9e37);
        let mut vpairs = vbase.clone();
        vpairs.extend_from_slice(&vbase);
        let paths = router.paths(&vpairs).expect("paths");
        for (&(s, t), p) in vpairs.iter().zip(&paths) {
            prop_assert_eq!(p, &router.path(s, t).expect("per-call path"));
        }
    }
}

/// `StoreKind::Auto` is the deployment default, so its resolution is part of
/// the public contract: dense below the threshold, byte-budgeted implicit at
/// and above it — observable on a built `Router`.
#[test]
fn auto_store_resolves_by_scene_size_on_the_router() {
    let small = Router::builder(uniform_disjoint(8, 3).obstacles).build().expect("valid scene");
    assert_eq!(small.store_kind(), StoreKind::Dense);
    let large = Router::builder(uniform_disjoint(512, 3).obstacles).build().expect("valid scene");
    assert_eq!(large.store_kind(), StoreKind::Implicit { budget_bytes: default_budget_bytes(512) });
}

/// The memory-scaling acceptance bar.  At n = 512 / 1024 / 2048 the implicit
/// store answers queries while holding only the touched rows; residency never
/// exceeds the default budget, and at n = 2048 the budget itself is at most
/// 10% of the dense matrix — so a serving session fits where the dense build
/// (512 MiB) cannot.  Uses `VertexApsp::build_implicit` directly: only the
/// sweep engine is constructed, no dense oracle, so this stays cheap in
/// debug builds.
#[test]
fn implicit_residency_stays_under_ten_percent_of_dense_at_scale() {
    for n in [512usize, 1024, 2048] {
        let w = uniform_disjoint(n, 42);
        let budget = default_budget_bytes(n);
        let apsp = VertexApsp::build_implicit(&w.obstacles, budget);
        let stats = apsp.store_stats();
        assert_eq!(stats.budget_bytes, budget);
        assert_eq!(stats.dense_bytes, dense_bytes_for(n));
        assert_eq!(stats.resident_bytes, 0, "nothing materialises before the first query");

        // 24 scattered vertex pairs; each answer comes from one on-demand
        // SMAWK/sweep row.  Cross-check the rows against each other through
        // L1 symmetry: d(u, v) computed from u's row must equal d(v, u)
        // computed from v's row.
        let verts = apsp.vertices();
        let m = verts.len();
        for k in 0..24 {
            let (i, j) = ((k * 131) % m, (k * 197 + 13) % m);
            let d = apsp.distance_between(verts[i], verts[j]);
            assert!(d >= verts[i].l1(verts[j]), "n={n}: distance below the L1 lower bound");
            assert_eq!(d, apsp.distance_between(verts[j], verts[i]), "n={n}: rows disagree on symmetry");
        }

        let stats = apsp.store_stats();
        assert!(stats.resident_bytes > 0, "n={n}: queries materialised nothing");
        assert!(
            stats.resident_bytes <= stats.budget_bytes,
            "n={n}: resident {} exceeds budget {}",
            stats.resident_bytes,
            stats.budget_bytes
        );
        if n == 2048 {
            assert_eq!(stats.dense_bytes, 512 << 20, "the wall this PR breaks: 512 MiB dense at n = 2048");
            assert!(
                stats.resident_bytes * 10 <= stats.dense_bytes,
                "resident {} is more than 10% of dense {}",
                stats.resident_bytes,
                stats.dense_bytes
            );
            assert!(stats.budget_bytes * 10 <= stats.dense_bytes, "even a full budget stays within the 10% bar");
        }
    }
}

/// End-to-end serving smoke at n = 2048: a full `Router` session on the
/// implicit store answers 256 mixed queries (vertex pairs, arbitrary points,
/// and paths) while the row cache stays within its 32 MiB budget — 10% of
/// the dense matrix this scene would otherwise need.  `#[ignore]`d because a
/// session this size belongs in release builds; CI runs it explicitly as the
/// large-n smoke step.
#[test]
#[ignore = "large scene; run in release (CI large-n smoke step)"]
fn large_scene_serving_smoke() {
    let n = 2048usize;
    let w = uniform_disjoint(n, 7);
    let router = Router::builder(w.obstacles.clone()).build().expect("valid scene");
    assert_eq!(router.store_kind(), StoreKind::Implicit { budget_bytes: default_budget_bytes(n) });

    let mut pairs: Vec<(Point, Point)> = query_pairs(&w.obstacles, 192, true, 1);
    pairs.extend(query_pairs(&w.obstacles, 64, false, 2));
    let distances = router.distances(&pairs).expect("mixed batch");
    for (&(a, b), &d) in pairs.iter().zip(&distances) {
        assert!(d >= a.l1(b), "distance below the L1 lower bound");
    }
    for &(s, t) in &query_pairs(&w.obstacles, 8, true, 3) {
        let path = router.path(s, t).expect("vertex-pair path");
        assert!(path.certifies(&w.obstacles, s, t, router.vertex_distance(s, t).unwrap()));
    }

    let stats = router.memory_stats();
    assert!(stats.resident_bytes > 0);
    assert!(stats.resident_bytes <= stats.budget_bytes);
    assert!(stats.resident_bytes * 10 <= stats.dense_bytes, "serving must stay within 10% of dense");
}

/// The cold-batch acceptance smoke: a 256-query vertex batch at n = 1024
/// against a freshly built implicit session starved to a two-row budget —
/// the exact shape the PR 8 `implicit_churn` arm measured at 902 ms per
/// batch (E13).  The planner must collapse it to one sweep per distinct
/// canonical row (8 hot sources here), which caps wall clock far below the
/// per-call baseline; 450 ms — half the old cost — is a loose bar that
/// still fails if planning ever regresses to per-query re-sweeps.
/// `#[ignore]`d because the timing bar only means something in release; CI
/// runs it in the release `--ignored` step.
#[test]
#[ignore = "timing bar; run in release (CI large-n smoke step)"]
fn cold_batch_plans_one_sweep_per_row_within_time_budget() {
    let n = 1024usize;
    let w = uniform_disjoint(n, 7);
    let row_bytes = 4 * n * std::mem::size_of::<Dist>();
    let router = Router::builder(w.obstacles.clone())
        .store(StoreKind::Implicit { budget_bytes: 2 * row_bytes })
        .build()
        .expect("valid scene");

    // 256 vertex queries fanned out from 8 hot sources (the lowest vertex
    // indices, so each pair's canonical row is its source), alternating
    // orientation so symmetry canonicalisation is load-bearing.
    let verts = w.obstacles.vertices();
    let m = verts.len();
    let mut pairs: Vec<(Point, Point)> = Vec::with_capacity(256);
    for k in 0..256usize {
        let s = verts[k % 8];
        let t = verts[8 + (k * 131 + 17) % (m - 8)];
        pairs.push(if k % 2 == 0 { (s, t) } else { (t, s) });
    }

    let start = std::time::Instant::now();
    let got = router.distances(&pairs).expect("cold batch");
    let elapsed = start.elapsed();

    // Counter snapshot first, so the consistency probes below don't blur it.
    let stats = router.memory_stats();
    assert_eq!(stats.row_misses as usize, 8, "one sweep per hot source, not per query");
    assert_eq!(stats.pinned_bytes, 0, "batch pins released");
    assert!(stats.resident_bytes <= stats.budget_bytes, "starved budget holds after the batch");
    assert!(elapsed < std::time::Duration::from_millis(450), "cold batch took {elapsed:?} (bar: 450 ms)");

    // Answers are internally consistent: L1 lower bound everywhere, and a
    // sample of flipped orientations agrees bitwise with per-call answers.
    for (&(a, b), &d) in pairs.iter().zip(&got) {
        assert!(d >= a.l1(b), "distance below the L1 lower bound");
    }
    for (&(a, b), &d) in pairs.iter().zip(&got).step_by(17) {
        assert_eq!(d, router.distance(b, a).unwrap(), "symmetry against the per-call path");
    }
}
