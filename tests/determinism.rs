//! Determinism certification for the work-stealing scheduler: every Router
//! engine must return **bitwise-identical** distances and paths no matter
//! how many worker threads serve the session.  This is what licenses the
//! parallel engines as drop-in replacements for the sequential one — any
//! scheduling-order leak (a non-associative reduction, an
//! iteration-order-dependent tie-break, a racy write) shows up here as a
//! cross-thread-count diff.
//!
//! Seeded scenes cover the three workload families (uniform, clustered,
//! corridors); a property-based sweep then fuzzes scene shape and mixed
//! vertex/arbitrary batches.

use proptest::prelude::*;
use rectilinear_shortest_paths::workload::{clustered, corridors, query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Dist, Engine, ObstacleSet, Point, RectiPath, Router, StoreKind};

/// Distance stores under test: the dense matrix and an implicit store with a
/// deliberately tiny budget (two rows), so eviction churn and lazy
/// materialisation order are both exercised.
fn store_kinds(obstacles: &ObstacleSet) -> [StoreKind; 2] {
    let row_bytes = 4 * obstacles.len() * std::mem::size_of::<Dist>();
    [StoreKind::Dense, StoreKind::Implicit { budget_bytes: 2 * row_bytes }]
}

/// Thread counts under test: sequential, minimal parallelism, and the full
/// machine (deduplicated on small machines).
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2);
    let mut counts = vec![1, 2, max];
    counts.dedup();
    counts
}

/// A deliberately mixed batch: arbitrary free pairs, vertex pairs, and
/// half-snapped pairs, interleaved.
fn mixed_batch(obstacles: &ObstacleSet, seed: u64) -> Vec<(Point, Point)> {
    let mut pairs = query_pairs(obstacles, 12, false, seed);
    pairs.extend(query_pairs(obstacles, 12, true, seed + 1));
    let verts = obstacles.vertices();
    if !verts.is_empty() {
        for (i, &(a, _)) in query_pairs(obstacles, 6, false, seed + 2).iter().enumerate() {
            pairs.push((a, verts[(i * 7) % verts.len()]));
        }
    }
    pairs
}

/// Distances and paths served by one engine at one thread count with one
/// distance store.
fn serve(
    obstacles: &ObstacleSet,
    engine: Engine,
    threads: usize,
    store: StoreKind,
    pairs: &[(Point, Point)],
    vertex_pairs: &[(Point, Point)],
) -> (Vec<Dist>, Vec<RectiPath>) {
    let router =
        Router::builder(obstacles.clone()).engine(engine).threads(threads).store(store).build().expect("valid scene");
    let distances = router.distances(pairs).expect("distance batch");
    let paths = router.paths(vertex_pairs).expect("path batch");
    (distances, paths)
}

#[test]
fn every_engine_is_bitwise_deterministic_across_thread_counts() {
    let scenes = [
        ("uniform", uniform_disjoint(7, 4).obstacles),
        ("clustered", clustered(6, 2, 9).obstacles),
        ("corridors", corridors(3, 40, 11).obstacles),
    ];
    for (name, obstacles) in scenes {
        let pairs = mixed_batch(&obstacles, 77);
        let vertex_pairs = query_pairs(&obstacles, 10, true, 99);
        for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
            // One reference per engine, shared across the thread-count AND
            // store matrix: thread scheduling must not move an answer, and
            // neither may the implicit store's lazy materialisation /
            // eviction order.
            let mut reference: Option<(Vec<Dist>, Vec<RectiPath>)> = None;
            for threads in thread_counts() {
                for store in store_kinds(&obstacles) {
                    let result = serve(&obstacles, engine, threads, store, &pairs, &vertex_pairs);
                    match &reference {
                        None => reference = Some(result),
                        Some((dist0, paths0)) => {
                            assert_eq!(
                                &result.0, dist0,
                                "{name}/{engine:?}/{store:?}: distances diverge at {threads} threads"
                            );
                            assert_eq!(
                                &result.1, paths0,
                                "{name}/{engine:?}/{store:?}: paths diverge at {threads} threads"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Delta-built sessions are part of the determinism contract too: after a
/// scene edit ([`Router::apply_delta`]), every engine × thread count × store
/// must serve the *edited* scene bitwise-identically — the carried
/// substructures (distance rows, escape staircases, slab columns) must not
/// leak any base-epoch or scheduling-order artifact into an answer.
#[test]
fn edited_sessions_are_bitwise_deterministic_across_the_matrix() {
    use rectilinear_shortest_paths::workload::edit_stream;
    let base = uniform_disjoint(7, 31).obstacles;
    let delta = &edit_stream(&base, 1, 17)[0];
    let edited_scene = base.apply_delta(delta).expect("stream delta applies").obstacles;
    let pairs = mixed_batch(&edited_scene, 55);
    let vertex_pairs = query_pairs(&edited_scene, 10, true, 66);
    for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
        let mut reference: Option<(Vec<Dist>, Vec<RectiPath>)> = None;
        for threads in thread_counts() {
            for store in store_kinds(&base) {
                let parent = Router::builder(base.clone())
                    .engine(engine)
                    .threads(threads)
                    .store(store)
                    .build()
                    .expect("valid scene");
                // Warm the parent so the delta build has something to carry.
                let _ = parent.distances(&query_pairs(&base, 4, true, 7)).expect("warm batch");
                let session = parent.apply_delta(delta).expect("edit applies");
                let result = (
                    session.distances(&pairs).expect("distance batch"),
                    session.paths(&vertex_pairs).expect("path batch"),
                );
                match &reference {
                    None => reference = Some(result),
                    Some((dist0, paths0)) => {
                        assert_eq!(
                            &result.0, dist0,
                            "edited {engine:?}/{store:?}: distances diverge at {threads} threads"
                        );
                        assert_eq!(
                            &result.1, paths0,
                            "edited {engine:?}/{store:?}: paths diverge at {threads} threads"
                        );
                    }
                }
            }
        }
    }
}

/// `Engine::Auto` resolves to different engines at different thread counts
/// (Sequential at 1, DivideAndConquer otherwise), so paths may legitimately
/// differ in shape — but distances are ground truth and must agree, and
/// every path must certify the same length.
#[test]
fn auto_engine_distances_agree_across_thread_counts() {
    let obstacles = uniform_disjoint(8, 21).obstacles;
    let pairs = mixed_batch(&obstacles, 13);
    let vertex_pairs = query_pairs(&obstacles, 8, true, 5);
    let mut reference: Option<Vec<Dist>> = None;
    for threads in thread_counts() {
        let router =
            Router::builder(obstacles.clone()).engine(Engine::Auto).threads(threads).build().expect("valid scene");
        let distances = router.distances(&pairs).expect("distance batch");
        match &reference {
            None => reference = Some(distances),
            Some(dist0) => assert_eq!(&distances, dist0, "Auto: distances diverge at {threads} threads"),
        }
        for &(s, t) in &vertex_pairs {
            let expect = router.vertex_distance(s, t).unwrap();
            let path = router.path(s, t).unwrap();
            assert!(path.certifies(&obstacles, s, t, expect), "Auto/{threads} threads: path fails to certify");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fuzzed scenes and batches: for every engine, a 2-thread and a
    /// max-thread session must reproduce the single-thread session bit for
    /// bit (distances and vertex-pair paths).
    #[test]
    fn engines_reproduce_single_thread_results_on_random_scenes(
        n in 2usize..7,
        scene_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let obstacles = uniform_disjoint(n, scene_seed).obstacles;
        let pairs = mixed_batch(&obstacles, batch_seed);
        let vertex_pairs = query_pairs(&obstacles, 6, true, batch_seed + 7);
        prop_assume!(!pairs.is_empty());
        for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
            let baseline = serve(&obstacles, engine, 1, StoreKind::Dense, &pairs, &vertex_pairs);
            for threads in thread_counts().into_iter().skip(1) {
                for store in store_kinds(&obstacles) {
                    let parallel = serve(&obstacles, engine, threads, store, &pairs, &vertex_pairs);
                    prop_assert_eq!(&parallel.0, &baseline.0);
                    prop_assert_eq!(&parallel.1, &baseline.1);
                }
            }
        }
    }
}
