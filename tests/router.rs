//! Integration tests for the `Router` session API: engine agreement on
//! seeded workload scenes, batch-vs-per-call equivalence (property-based),
//! the build-once guarantee for shared substructures, and typed errors.

use proptest::prelude::*;
use rectilinear_shortest_paths::geom::hanan::ground_truth_distance;
use rectilinear_shortest_paths::workload::{clustered, corridors, query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Engine, ObstacleSet, Point, Rect, Router, RspError};
use std::sync::Arc;

/// Router sessions over the same scene, one per engine variant.
fn routers_for_all_engines(obstacles: &ObstacleSet) -> Vec<(Engine, Router)> {
    [Engine::Auto, Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline]
        .into_iter()
        .map(|e| (e, Router::builder(obstacles.clone()).engine(e).build().expect("valid scene")))
        .collect()
}

#[test]
fn engines_agree_on_seeded_scenes() {
    let scenes = [uniform_disjoint(7, 4).obstacles, clustered(6, 2, 9).obstacles, corridors(3, 40, 11).obstacles];
    for obstacles in scenes {
        let routers = routers_for_all_engines(&obstacles);
        let verts = obstacles.vertices();
        let arbitrary = query_pairs(&obstacles, 12, false, 31);

        // Distances: vertex pairs and arbitrary pairs, identical across engines
        // and equal to the Hanan-grid ground truth.
        for &a in verts.iter().step_by(3) {
            for &b in verts.iter().step_by(5) {
                let expect = ground_truth_distance(&obstacles, a, b);
                for (engine, router) in &routers {
                    assert_eq!(router.vertex_distance(a, b), Ok(expect), "{engine:?}: {a:?} -> {b:?}");
                }
            }
        }
        for &(a, b) in &arbitrary {
            let expect = ground_truth_distance(&obstacles, a, b);
            for (engine, router) in &routers {
                assert_eq!(router.distance(a, b), Ok(expect), "{engine:?}: {a:?} -> {b:?}");
            }
        }

        // Paths: every engine reports a valid path certifying the same length.
        let sources = [verts[0], verts[verts.len() / 2]];
        for &s in &sources {
            for &t in verts.iter().step_by(7) {
                let expect = ground_truth_distance(&obstacles, s, t);
                for (engine, router) in &routers {
                    let path = router.path(s, t).unwrap();
                    assert!(path.certifies(&obstacles, s, t, expect), "{engine:?}: bad path {s:?} -> {t:?}");
                }
            }
        }
    }
}

#[test]
fn substructures_are_built_at_most_once() {
    let w = uniform_disjoint(6, 8);
    let router = Router::new(w.obstacles.clone()).unwrap();
    let verts = w.obstacles.vertices();

    // Hammer every query kind repeatedly.
    for round in 0..3 {
        let _ = router.distance(Point::new(-1, -1), Point::new(50, 50)).unwrap();
        let _ = router.vertex_distance(verts[0], verts[5]).unwrap();
        let _ = router.path(verts[0], verts[5]).unwrap();
        let _ = router.path_chunks(verts[0], verts[5], 2).unwrap();
        let _ = router.hop_count(verts[0], verts[5]).unwrap();
        let _ = router.distances(&[(verts[0], verts[1]), (Point::new(0, 0), verts[2])]).unwrap();
        let _ = router.paths(&[(verts[0], verts[3])]).unwrap();
        let _ = router.boundary_matrix();
        let counts = router.build_counts();
        assert_eq!(counts.oracle_builds, 1, "round {round}");
        assert_eq!(counts.tree_builds, 1, "round {round}: only verts[0] is a source");
        assert_eq!(counts.boundary_builds, 1, "round {round}");
    }

    // The oracle handle really is shared, not cloned: the router's OnceLock,
    // the tree set and our local handle all point at one allocation.
    let oracle = router.oracle();
    assert!(Arc::strong_count(&oracle) >= 3, "oracle must be shared, not rebuilt");
    assert_eq!(Arc::as_ptr(&oracle), Arc::as_ptr(&router.oracle()));
}

#[test]
fn batch_and_per_call_agree_on_mixed_seeded_batches() {
    for seed in [1u64, 22, 333] {
        let w = uniform_disjoint(8, seed);
        let router = Router::new(w.obstacles.clone()).unwrap();
        // A deliberately mixed batch: arbitrary pairs, vertex pairs, and
        // half-vertex pairs, interleaved.
        let mut pairs = query_pairs(&w.obstacles, 20, false, seed + 1);
        pairs.extend(query_pairs(&w.obstacles, 20, true, seed + 2));
        let verts = w.obstacles.vertices();
        for (i, &(a, _)) in query_pairs(&w.obstacles, 10, false, seed + 3).iter().enumerate() {
            pairs.push((a, verts[(i * 5) % verts.len()]));
        }
        let batch = router.distances(&pairs).unwrap();
        assert_eq!(batch.len(), pairs.len());
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], router.distance(a, b).unwrap(), "seed {seed}, pair {k}: {a:?} -> {b:?}");
        }
    }
}

#[test]
fn typed_errors_replace_options_and_panics() {
    // Overlap: the error names the offending pair, ids and geometry.
    let overlapping = ObstacleSet::new(vec![Rect::new(0, 0, 5, 5), Rect::new(20, 20, 24, 24), Rect::new(4, 4, 9, 9)]);
    match Router::new(overlapping) {
        Err(RspError::OverlappingObstacles(v)) => {
            assert_eq!((v.first, v.second), (0, 2));
            assert_eq!(v.second_rect, Rect::new(4, 4, 9, 9));
            let msg = v.to_string();
            assert!(msg.contains("obstacles 0 and 2"), "{msg}");
        }
        other => panic!("expected overlap error, got {:?}", other.err()),
    }

    let router = Router::new(ObstacleSet::new(vec![Rect::new(2, 2, 8, 8)])).unwrap();
    // Non-vertex endpoints for vertex-only APIs.
    assert_eq!(router.path(Point::new(3, 0), Point::new(2, 2)), Err(RspError::NotAVertex(Point::new(3, 0))));
    assert_eq!(router.vertex_distance(Point::new(2, 2), Point::new(0, 0)), Err(RspError::NotAVertex(Point::new(0, 0))));
    // Queries from inside an obstacle.
    match router.distance(Point::new(4, 4), Point::new(0, 0)) {
        Err(RspError::PointInsideObstacle { point, obstacle }) => {
            assert_eq!(point, Point::new(4, 4));
            assert_eq!(obstacle, 0);
        }
        other => panic!("expected inside-obstacle error, got {other:?}"),
    }
    // Batches propagate the same typed errors.
    assert!(router.distances(&[(Point::new(0, 0), Point::new(4, 4))]).is_err());
    assert!(router.paths(&[(Point::new(2, 2), Point::new(1, 1))]).is_err());
    // And the error type boxes like any std error.
    let boxed: Box<dyn std::error::Error> = Box::new(RspError::NotAVertex(Point::new(7, 7)));
    assert!(boxed.to_string().contains("not an obstacle vertex"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The batch API returns exactly what per-call `distance` returns, for
    /// randomly generated mixed batches of vertex/arbitrary-point pairs.
    #[test]
    fn distances_batch_matches_per_call(
        n in 1usize..8,
        scene_seed in any::<u64>(),
        points in proptest::collection::vec((-20i64..220, -20i64..220), 1..24),
        vertex_picks in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..24),
    ) {
        let obstacles = uniform_disjoint(n, scene_seed).obstacles;
        let verts = obstacles.vertices();
        let router = Router::new(obstacles.clone()).unwrap();

        // Build a mixed batch: free points (skipping obstacle interiors),
        // then pairs with one or both endpoints snapped to vertices.
        let free: Vec<Point> = points
            .iter()
            .map(|&(x, y)| Point::new(x, y))
            .filter(|&p| obstacles.containing_obstacle(p).is_none())
            .collect();
        let mut pairs: Vec<(Point, Point)> = free.windows(2).map(|w| (w[0], w[1])).collect();
        for (i, &(pick, both)) in vertex_picks.iter().enumerate() {
            let v = verts[pick as usize % verts.len()];
            if both {
                pairs.push((v, verts[(pick as usize + i) % verts.len()]));
            } else if let Some(&p) = free.get(i % free.len().max(1)) {
                pairs.push((p, v));
            }
        }
        prop_assume!(!pairs.is_empty());

        let batch = router.distances(&pairs).unwrap();
        prop_assert_eq!(batch.len(), pairs.len());
        for (k, &(a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(batch[k], router.distance(a, b).unwrap());
        }
        // And the whole session still built its oracle exactly once.
        prop_assert_eq!(router.build_counts().oracle_builds, 1);
    }
}
