//! Certification of incremental scene editing ([`Router::apply_delta`]):
//! a session built by delta rebuild must be **bitwise-identical** — every
//! distance and every reported path — to a session built from scratch on
//! the edited scene, after *every* step of an edit stream, for every engine,
//! both distance stores, and multiple thread counts.  This is what licenses
//! the delta path's substructure reuse (carried distance rows, escape
//! staircases and ray-shooting slab columns) as a pure optimisation.
//!
//! The reuse itself is certified separately: a far single-rectangle edit on
//! a large scene must carry >90% of the slab columns and >90% of the
//! resident implicit rows, and the scene hash must be delta-consistent
//! (insert-then-remove restores it), so content-addressed session caches
//! (`rsp-server`) resolve edits back to identical ids.

use proptest::prelude::*;
use rectilinear_shortest_paths::workload::{edit_stream, query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Dist, Engine, ObstacleSet, Rect, Router, SceneDelta, StoreKind};

/// Distance stores under test: the dense matrix and an implicit store with a
/// deliberately tiny budget (two rows), so the delta carry also runs under
/// eviction pressure.
fn store_kinds(obstacles: &ObstacleSet) -> [StoreKind; 2] {
    let row_bytes = 4 * obstacles.len() * std::mem::size_of::<Dist>();
    [StoreKind::Dense, StoreKind::Implicit { budget_bytes: 2 * row_bytes.max(64) }]
}

/// Assert the delta-built `edited` session answers exactly like the
/// from-scratch `fresh` session on `scene`: arbitrary-point distances,
/// vertex distances and vertex-pair paths.
fn assert_bitwise_equal(edited: &Router, fresh: &Router, scene: &ObstacleSet, seed: u64, label: &str) {
    let mut pairs = query_pairs(scene, 8, false, seed);
    pairs.extend(query_pairs(scene, 8, true, seed + 1));
    assert_eq!(
        edited.distances(&pairs).expect("edited distances"),
        fresh.distances(&pairs).expect("fresh distances"),
        "{label}: distances diverge"
    );
    let vertex_pairs = query_pairs(scene, 8, true, seed + 2);
    assert_eq!(
        edited.paths(&vertex_pairs).expect("edited paths"),
        fresh.paths(&vertex_pairs).expect("fresh paths"),
        "{label}: paths diverge"
    );
}

/// The full certification matrix: engines × stores × thread counts, walked
/// along one seeded edit stream, comparing after **every** step.  Each epoch
/// is warmed with a query batch before the next edit so the delta build has
/// substructures to carry (a cold `apply_delta` would just build fresh).
#[test]
fn edit_streams_stay_bitwise_faithful_for_every_engine_store_and_thread_count() {
    let base = uniform_disjoint(8, 42).obstacles;
    let stream = edit_stream(&base, 6, 7);
    for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
        for store in store_kinds(&base) {
            for threads in [1usize, 2] {
                let build = |obstacles: ObstacleSet| {
                    Router::builder(obstacles)
                        .engine(engine)
                        .store(store)
                        .threads(threads)
                        .build()
                        .expect("valid scene")
                };
                let mut session = build(base.clone());
                let mut scene = base.clone();
                for (step, delta) in stream.iter().enumerate() {
                    // Warm the current epoch, then edit.
                    let warm = query_pairs(&scene, 4, true, step as u64);
                    let _ = session.distances(&warm).expect("warm batch");
                    session = session.apply_delta(delta).expect("stream deltas stay valid");
                    scene = scene.apply_delta(delta).expect("stream deltas stay valid").obstacles;
                    assert_eq!(session.epoch(), step as u64 + 1);
                    let fresh = build(scene.clone());
                    let label = format!("{engine:?}/{store:?}/{threads}t/step {step}");
                    assert_bitwise_equal(&session, &fresh, &scene, 1000 + step as u64, &label);
                }
            }
        }
    }
}

/// A long (32-edit) stream on one configuration, certifying that epochs
/// chain indefinitely and reuse accounting only ever grows.
#[test]
fn a_32_edit_stream_chains_epochs() {
    let base = uniform_disjoint(10, 5).obstacles;
    let stream = edit_stream(&base, 32, 21);
    let mut session = Router::new(base.clone()).expect("valid scene");
    let mut scene = base;
    for (step, delta) in stream.iter().enumerate() {
        let warm = query_pairs(&scene, 2, true, step as u64);
        let _ = session.distances(&warm).expect("warm batch");
        session = session.apply_delta(delta).expect("stream deltas stay valid");
        scene = scene.apply_delta(delta).expect("stream deltas stay valid").obstacles;
    }
    assert_eq!(session.epoch(), 32);
    let fresh = Router::new(scene.clone()).expect("valid scene");
    assert_bitwise_equal(&session, &fresh, &scene, 99, "32-edit chain");
}

/// Reuse accounting on a large scene: a single far-away inserted rectangle
/// must leave >90% of the ray-shooting slab columns and >90% of the resident
/// implicit distance rows untouched — the delta build provably cannot be
/// doing linear re-derivation work for a constant-size far edit.
#[test]
fn far_single_rect_edit_reuses_slab_columns_and_resident_rows() {
    let n = 512;
    let base = uniform_disjoint(n, 13).obstacles;
    let row_bytes = 4 * n * std::mem::size_of::<Dist>();
    let budget = 160 * row_bytes;
    let parent =
        Router::builder(base.clone()).store(StoreKind::Implicit { budget_bytes: budget }).build().expect("valid scene");
    // Materialise ~128 rows.
    let verts = base.vertices();
    for i in 0..128 {
        let _ = parent.vertex_distance(verts[i * 7 % verts.len()], verts[(i * 11 + 3) % verts.len()]).unwrap();
    }
    let resident_rows = parent.memory_stats().resident_bytes / row_bytes;
    assert!(resident_rows >= 64, "warming materialised only {resident_rows} rows");
    // One small rectangle, far enough out that no in-scene pair's keep-test
    // can fail (the through-edit bound dwarfs every in-scene distance).
    let bbox = base.bbox().unwrap();
    let far = Rect::new(bbox.xmax + 4000, bbox.ymin, bbox.xmax + 4006, bbox.ymin + 6);
    let child = parent.apply_delta(&SceneDelta::inserting(vec![far])).expect("far insert is disjoint");
    // Force the delta oracle build so the counters fill.
    let new_verts = child.instance().obstacles().vertices();
    let _ = child.vertex_distance(new_verts[0], new_verts[17]).unwrap();
    let counts = child.build_counts();
    let slab_total = counts.slab_columns_reused + counts.slab_columns_rebuilt;
    assert!(
        counts.slab_columns_reused * 10 >= slab_total * 9,
        "slab columns: reused {} of {slab_total}",
        counts.slab_columns_reused
    );
    let row_total = counts.rows_reused + counts.rows_rebuilt;
    assert!(counts.rows_reused * 10 >= row_total * 9, "resident rows: carried {} of {row_total}", counts.rows_reused);
    assert!(counts.rows_reused as usize >= resident_rows * 9 / 10, "carried rows track the warmed residency");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Fuzzed bases and streams: a delta-built session (2 threads) must
    /// reproduce a from-scratch single-thread session bit for bit after
    /// every step, on both stores.
    #[test]
    fn random_edit_streams_stay_bitwise_faithful(
        n in 3usize..7,
        scene_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        edits in 1usize..5,
    ) {
        let base = uniform_disjoint(n, scene_seed).obstacles;
        let stream = edit_stream(&base, edits, stream_seed);
        for store in store_kinds(&base) {
            let mut session =
                Router::builder(base.clone()).store(store).threads(2).build().expect("valid scene");
            let mut scene = base.clone();
            for (step, delta) in stream.iter().enumerate() {
                let warm = query_pairs(&scene, 3, true, step as u64);
                let _ = session.distances(&warm).expect("warm batch");
                session = session.apply_delta(delta).expect("stream deltas stay valid");
                scene = scene.apply_delta(delta).expect("stream deltas stay valid").obstacles;
                let fresh =
                    Router::builder(scene.clone()).store(store).threads(1).build().expect("valid scene");
                let mut pairs = query_pairs(&scene, 6, false, 50 + step as u64);
                pairs.extend(query_pairs(&scene, 6, true, 60 + step as u64));
                prop_assert_eq!(session.distances(&pairs).unwrap(), fresh.distances(&pairs).unwrap());
                let vertex_pairs = query_pairs(&scene, 4, true, 70 + step as u64);
                prop_assert_eq!(session.paths(&vertex_pairs).unwrap(), fresh.paths(&vertex_pairs).unwrap());
            }
        }
    }

    /// Scene hashes are delta-consistent: inserting rectangles and then
    /// removing exactly those rectangles restores the original hash, so a
    /// content-addressed session cache resolves the round trip to the same
    /// scene id.
    #[test]
    fn insert_then_remove_round_trips_the_scene_hash(
        n in 1usize..10,
        scene_seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let base = uniform_disjoint(n, scene_seed).obstacles;
        let bbox = base.bbox().unwrap();
        // Far-flung distinct rectangles: disjoint from the scene and each other.
        let inserts: Vec<Rect> = (0..k as i64)
            .map(|i| Rect::new(bbox.xmax + 10 + 20 * i, bbox.ymin, bbox.xmax + 20 + 20 * i, bbox.ymin + 5))
            .collect();
        let applied = base.apply_delta(&SceneDelta::inserting(inserts)).unwrap();
        prop_assert!(applied.obstacles.scene_hash() != base.scene_hash());
        let undo = SceneDelta::removing((applied.first_inserted..applied.obstacles.len()).collect());
        let restored = applied.obstacles.apply_delta(&undo).unwrap().obstacles;
        prop_assert_eq!(restored.scene_hash(), base.scene_hash());
        prop_assert_eq!(restored.rects(), base.rects());
    }
}

/// Release-mode smoke (run with `--ignored`): a 64-edit stream over a
/// 1024-obstacle implicit-store scene.  Every edit must clear a per-edit
/// wall-clock budget for `apply_delta` + a first 8-query batch (the
/// edit→first-query path the delta rebuild exists to make sublinear), with
/// periodic bitwise spot checks against from-scratch builds.
#[test]
#[ignore = "release-mode smoke: large scene, run with --ignored"]
fn release_smoke_64_edits_at_n_1024() {
    use std::time::{Duration, Instant};
    let n = 1024;
    let base = uniform_disjoint(n, 3).obstacles;
    let stream = edit_stream(&base, 64, 9);
    let store = StoreKind::Implicit { budget_bytes: 64 << 20 };
    let mut session = Router::builder(base.clone()).store(store).build().expect("valid scene");
    let mut scene = base;
    // Warm epoch 0 fully (oracle + some rows).
    let warm = query_pairs(&scene, 64, true, 1);
    let _ = session.distances(&warm).expect("warm batch");
    let budget = Duration::from_secs(10);
    for (step, delta) in stream.iter().enumerate() {
        let start = Instant::now();
        session = session.apply_delta(delta).expect("stream deltas stay valid");
        scene = scene.apply_delta(delta).expect("stream deltas stay valid").obstacles;
        let pairs = query_pairs(&scene, 8, true, 100 + step as u64);
        let lengths = session.distances(&pairs).expect("first batch");
        let elapsed = start.elapsed();
        assert!(elapsed < budget, "edit {step}: edit->first-batch took {elapsed:?} (budget {budget:?})");
        if step % 16 == 15 {
            let fresh = Router::builder(scene.clone()).store(store).build().expect("valid scene");
            assert_eq!(lengths, fresh.distances(&pairs).expect("fresh batch"), "edit {step}: spot check diverged");
            let vertex_pairs = query_pairs(&scene, 4, true, 200 + step as u64);
            assert_eq!(
                session.paths(&vertex_pairs).expect("edited paths"),
                fresh.paths(&vertex_pairs).expect("fresh paths"),
                "edit {step}: path spot check diverged"
            );
        }
    }
    assert_eq!(session.epoch(), 64);
}
