//! Certifies the ISSUE 5 allocation bound: the steady-state arbitrary-point
//! query path (`PathLengthOracle::distance` and the vertex/mixed variants)
//! performs **zero heap allocations per query**.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass the test replays a query batch and asserts the allocation counter
//! did not move.  The file deliberately contains a single `#[test]` so no
//! sibling test thread can allocate concurrently inside the measured window.

use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::geom::INF;
use rectilinear_shortest_paths::workload::{query_pairs, uniform_disjoint};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn arbitrary_point_queries_do_not_allocate() {
    let w = uniform_disjoint(24, 7);
    let oracle = PathLengthOracle::build(&w.obstacles);
    let both_arbitrary = query_pairs(&w.obstacles, 64, false, 11);
    let vertex_pairs = query_pairs(&w.obstacles, 64, true, 12);
    let mixed: Vec<_> = both_arbitrary.iter().zip(&vertex_pairs).map(|(&(a, _), &(v, _))| (a, v)).collect();

    let mut checksum = 0i64;
    let replay = |acc: &mut i64| {
        for &(p, q) in both_arbitrary.iter().chain(&vertex_pairs).chain(&mixed) {
            let d = oracle.distance(p, q);
            assert!(d < INF);
            *acc += d;
        }
    };

    // Warm-up: no lazy state exists on this path today, but the guarantee
    // is about the steady state, so grant one pass.
    replay(&mut checksum);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut measured = 0i64;
    replay(&mut measured);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(measured, checksum, "replay must be deterministic");
    assert_eq!(
        after - before,
        0,
        "the steady-state query path allocated {} times over {} queries",
        after - before,
        both_arbitrary.len() + vertex_pairs.len() + mixed.len()
    );
}
