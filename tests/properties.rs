//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;
use rectilinear_shortest_paths::core::dnc::one_rect_distance;
use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::core::separator::find_separator_unbounded;
use rectilinear_shortest_paths::core::seq::SingleSourceEngine;
use rectilinear_shortest_paths::core::trace::chain_avoids_obstacles;
use rectilinear_shortest_paths::geom::hanan::ground_truth_distance;
use rectilinear_shortest_paths::geom::{Chain, ObstacleIndex, ObstacleSet, Point, Rect};
use rectilinear_shortest_paths::monge::{is_monge, min_plus_naive, min_plus_parallel, MinPlusMatrix};
use rectilinear_shortest_paths::workload::{clustered, corridors, uniform_disjoint};

/// Strategy: a set of disjoint rectangles on a coarse grid.
fn obstacles_strategy(max_n: usize) -> impl Strategy<Value = ObstacleSet> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| uniform_disjoint(n, seed).obstacles)
}

fn sorted_coords(len: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-300i64..300, 1..=len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2: the separator never cuts an obstacle, is a staircase, has
    /// O(n) segments and respects the 7n/8 balance bound.
    #[test]
    fn separator_properties(obs in obstacles_strategy(40)) {
        prop_assume!(obs.len() >= 2);
        let sep = find_separator_unbounded(&obs).unwrap();
        prop_assert!(chain_avoids_obstacles(&sep.chain, &obs));
        prop_assert!(sep.chain.is_staircase());
        prop_assert!(sep.chain.num_segments() <= 2 * obs.len() + 4);
        prop_assert!(sep.is_theorem2_balanced(obs.len()));
        prop_assert_eq!(sep.above.len() + sep.below.len(), obs.len());
    }

    /// Lemma 3: the (min,+) product of Monge matrices computed via SMAWK
    /// equals the naive product and is again Monge.
    #[test]
    fn monge_product_properties(xs in sorted_coords(12), ys in sorted_coords(10), zs in sorted_coords(14), gap in 0i64..40) {
        let a = MinPlusMatrix::from_fn(xs.len(), ys.len(), |i, j| (xs[i] - ys[j]).abs() + gap);
        let b = MinPlusMatrix::from_fn(ys.len(), zs.len(), |i, j| (ys[i] - zs[j]).abs() + gap);
        prop_assert!(is_monge(&a));
        prop_assert!(is_monge(&b));
        let fast = min_plus_parallel(&a, &b);
        prop_assert_eq!(&fast, &min_plus_naive(&a, &b));
        prop_assert!(is_monge(&fast));
    }

    /// The single-rectangle closed form matches the exact oracle.
    #[test]
    fn one_rect_distance_is_exact(
        rx in -50i64..50, ry in -50i64..50, w in 1i64..40, h in 1i64..40,
        px in -100i64..100, py in -100i64..100, qx in -100i64..100, qy in -100i64..100,
    ) {
        let r = Rect::new(rx, ry, rx + w, ry + h);
        let p = Point::new(px, py);
        let q = Point::new(qx, qy);
        prop_assume!(!r.contains_open(p) && !r.contains_open(q));
        let obs = ObstacleSet::new(vec![r]);
        prop_assert_eq!(one_rect_distance(&r, p, q), ground_truth_distance(&obs, p, q));
    }

    /// Single-source distances are a metric-consistent upper bound family:
    /// symmetric, zero on the diagonal, never below L1, and exact versus the
    /// Hanan ground truth.
    #[test]
    fn single_source_engine_is_exact(obs in obstacles_strategy(8), sx in -20i64..200, sy in -20i64..200) {
        let source = Point::new(sx, sy);
        prop_assume!(obs.containing_obstacle(source).is_none());
        let engine = SingleSourceEngine::new(&obs);
        let dist = engine.distances_from(source);
        for (i, &v) in engine.vertices().iter().enumerate() {
            prop_assert!(dist[i] >= source.l1(v));
            prop_assert_eq!(dist[i], ground_truth_distance(&obs, source, v));
        }
    }

    /// Oracle queries are symmetric, satisfy the triangle inequality over a
    /// sampled midpoint set, and never beat the L1 lower bound.
    #[test]
    fn oracle_metric_properties(obs in obstacles_strategy(6), ax in -10i64..150, ay in -10i64..150, bx in -10i64..150, by in -10i64..150) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assume!(obs.containing_obstacle(a).is_none() && obs.containing_obstacle(b).is_none());
        let oracle = PathLengthOracle::build(&obs);
        let d_ab = oracle.distance(a, b);
        prop_assert_eq!(d_ab, oracle.distance(b, a));
        prop_assert!(d_ab >= a.l1(b));
        prop_assert_eq!(oracle.distance(a, a), 0);
        for &m in obs.vertices().iter().take(6) {
            prop_assert!(d_ab <= oracle.distance(a, m) + oracle.distance(m, b));
        }
    }

    /// The staircase binary search behind `Chain::intersect_*` agrees with
    /// the linear reference scan on random monotone staircases, across every
    /// vertex coordinate, the gaps between them, and points beyond the ends.
    #[test]
    fn staircase_line_intersections_match_linear_scan(
        xs in sorted_coords(40),
        ys in sorted_coords(40),
        decreasing in any::<bool>(),
    ) {
        let mut xs = xs;
        let mut ys = ys;
        xs.dedup();
        ys.dedup();
        let k = xs.len().min(ys.len());
        prop_assume!(k >= 2);
        let mut pts = Vec::with_capacity(2 * k);
        for i in 0..k {
            let y = if decreasing { -ys[i] } else { ys[i] };
            pts.push(Point::new(xs[i], y));
            if i + 1 < k {
                pts.push(Point::new(xs[i + 1], y));
            }
        }
        let chain = Chain::new(pts);
        prop_assert!(chain.is_staircase());
        let mut probes: Vec<i64> = xs.iter().chain(ys.iter()).flat_map(|&c| [c - 1, c, c + 1, -c]).collect();
        probes.push(-301);
        probes.push(301);
        for &c in &probes {
            prop_assert_eq!(chain.intersect_vertical(c), chain.intersect_vertical_linear(c));
            prop_assert_eq!(chain.intersect_horizontal(c), chain.intersect_horizontal_linear(c));
        }
    }

    /// `ObstacleIndex` containment and segment clearance agree with the
    /// naive `ObstacleSet` scans on all three seeded scene families,
    /// including probes strictly inside obstacles (where the two historical
    /// `segment_clear` implementations used to disagree).
    #[test]
    fn obstacle_index_matches_naive_scans(kind in 0usize..3, n in 2usize..24, seed in any::<u64>()) {
        let obs = match kind {
            0 => uniform_disjoint(n, seed).obstacles,
            1 => clustered(n, 3, seed).obstacles,
            _ => corridors(n.min(10), 40, seed).obstacles,
        };
        prop_assume!(!obs.is_empty());
        let index = ObstacleIndex::build(&obs);
        let bbox = obs.bbox().unwrap();
        let step = ((bbox.width().max(bbox.height())) / 9).max(1);
        let mut probes = Vec::new();
        for r in obs.iter().take(6) {
            probes.push(r.center());
            probes.push(r.ll());
            probes.push(Point::new(r.xmin, (r.ymin + r.ymax) / 2));
        }
        let mut x = bbox.xmin - 2;
        while x <= bbox.xmax + 2 {
            let mut y = bbox.ymin - 2;
            while y <= bbox.ymax + 2 {
                probes.push(Point::new(x, y));
                y += step;
            }
            x += step;
        }
        for &p in &probes {
            prop_assert_eq!(index.containing_obstacle(p), obs.containing_obstacle(p));
        }
        for (i, &a) in probes.iter().enumerate() {
            for &b in probes.iter().skip(i) {
                if a.x != b.x && a.y != b.y {
                    continue;
                }
                prop_assert_eq!(index.segment_clear(a, b), obs.segment_clear(a, b));
            }
        }
    }
}
