//! Cross-crate integration tests: generator → builders → oracle → path
//! reporter, validated against the Hanan-grid ground truth.

use rectilinear_shortest_paths::core::apsp::VertexApsp;
use rectilinear_shortest_paths::core::baseline::{dijkstra_sssp_matrix, repeated_sssp_matrix};
use rectilinear_shortest_paths::core::bigp::BigPolygonStructure;
use rectilinear_shortest_paths::core::dnc::{build_boundary_matrix_bbox, DncOptions};
use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::core::separator::find_separator_unbounded;
use rectilinear_shortest_paths::core::sptree::ShortestPathTrees;
use rectilinear_shortest_paths::core::tree::RecursionTree;
use rectilinear_shortest_paths::core::Instance;
use rectilinear_shortest_paths::geom::hanan::{ground_truth_distance, ground_truth_matrix};
use rectilinear_shortest_paths::geom::Point;
use rectilinear_shortest_paths::workload::{aspect_stress, clustered, corridors, query_pairs, uniform_disjoint};

#[test]
fn every_engine_agrees_on_uniform_instances() {
    for seed in 0..3u64 {
        let w = uniform_disjoint(9, seed);
        let obs = &w.obstacles;
        let verts = obs.vertices();
        let truth = ground_truth_matrix(obs, &verts);

        let apsp = VertexApsp::build(obs);
        let seq = VertexApsp::build_sequential(obs);
        let rep = repeated_sssp_matrix(obs);
        let dij = dijkstra_sssp_matrix(obs);
        for i in 0..verts.len() {
            for j in 0..verts.len() {
                assert_eq!(apsp.distance(i, j), truth[i][j], "apsp {:?}->{:?}", verts[i], verts[j]);
                assert_eq!(seq.distance(i, j), truth[i][j]);
                assert_eq!(rep.get(i, j), truth[i][j]);
                assert_eq!(dij.get(i, j), truth[i][j]);
            }
        }
    }
}

#[test]
fn boundary_matrix_matches_truth_on_varied_workloads() {
    let workloads = vec![uniform_disjoint(8, 11), clustered(8, 2, 3), aspect_stress(7, 4), corridors(3, 40, 5)];
    for w in workloads {
        let bm = build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions::default());
        let truth = ground_truth_matrix(&w.obstacles, &bm.points);
        for (i, row) in truth.iter().enumerate() {
            for (j, &expected) in row.iter().enumerate() {
                assert_eq!(bm.dist.get(i, j), expected, "{}: {:?} -> {:?}", w.name, bm.points[i], bm.points[j]);
            }
        }
    }
}

#[test]
fn oracle_and_paths_end_to_end() {
    let w = uniform_disjoint(10, 42);
    let obs = &w.obstacles;
    let inst = Instance::with_margin(obs.clone(), 5);
    assert!(inst.validate().is_ok());

    let oracle = PathLengthOracle::build(obs);
    // arbitrary-point queries
    for (a, b) in query_pairs(obs, 60, false, 1) {
        assert_eq!(oracle.distance(a, b), ground_truth_distance(obs, a, b), "{:?} {:?}", a, b);
    }
    // actual paths certify their lengths
    let verts = obs.vertices();
    let sources = vec![verts[0], verts[13], verts[27]];
    let trees = ShortestPathTrees::build(obs, Some(&sources));
    for &s in &sources {
        for &t in verts.iter().step_by(4) {
            let d = oracle.vertex_distance(s, t).unwrap();
            let path = trees.path_between(s, t).unwrap();
            assert!(path.certifies(obs, s, t, d));
        }
    }
}

#[test]
fn separator_theorem_holds_across_workload_families() {
    for (tag, obs) in [
        ("uniform", uniform_disjoint(64, 7).obstacles),
        ("clustered", clustered(64, 4, 8).obstacles),
        ("aspect", aspect_stress(48, 9).obstacles),
    ] {
        let n = obs.len();
        let sep = find_separator_unbounded(&obs).expect("separator");
        assert!(sep.is_theorem2_balanced(n), "{tag}: {} of {}", sep.max_side(), n);
        assert!(sep.chain.num_segments() <= 2 * n + 4, "{tag}");
        assert!(sep.chain.is_staircase(), "{tag}");
    }
}

#[test]
fn recursion_tree_partitions_obstacles() {
    let w = uniform_disjoint(30, 2);
    let tree = RecursionTree::build(&w.obstacles);
    let leaf_total: usize = tree.nodes.iter().filter(|n| n.children.is_empty()).map(|n| n.obstacle_ids.len()).sum();
    assert_eq!(leaf_total, 30);
}

#[test]
fn big_polygon_structure_is_consistent_with_oracle() {
    let w = uniform_disjoint(10, 77);
    let obs = &w.obstacles;
    let container = obs.bbox().unwrap().expand(25);
    let big = BigPolygonStructure::build(obs, container, 10_000);
    let oracle = PathLengthOracle::build(obs);
    let boundary_samples = [
        Point::new(container.xmin, container.ymin + 11),
        Point::new(container.xmax, container.ymax - 3),
        Point::new(container.xmin + 17, container.ymax),
        container.lr(),
    ];
    for &p in &boundary_samples {
        for &t in obs.vertices().iter().step_by(5) {
            assert_eq!(big.boundary_distance(p, t), oracle.distance(p, t), "{:?} -> {:?}", p, t);
        }
    }
    assert!(big.implicit_entries() < 10_000 * 10_000 / 100);
}
