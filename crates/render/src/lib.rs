//! # rsp-render — ASCII and SVG rendering of instances and constructions
//!
//! The paper's 14 figures are illustrative diagrams (staircases, envelopes,
//! separators, the `B(Q)` points, the chunk partition of `Bound(P)`).  The
//! `figure_gallery` example regenerates them from real data using this crate:
//! obstacles, staircase chains, regions, points and paths are drawn either as
//! a terminal-friendly ASCII grid or as a standalone SVG document.

use rsp_geom::{Chain, Coord, ObstacleSet, Point, Rect, RectiPath, StairRegion};

/// A drawing canvas collecting primitives; render with [`Scene::to_ascii`] or
/// [`Scene::to_svg`].
#[derive(Default)]
pub struct Scene {
    rects: Vec<(Rect, char)>,
    chains: Vec<(Chain, char)>,
    points: Vec<(Point, char)>,
    regions: Vec<StairRegion>,
}

impl Scene {
    pub fn new() -> Self {
        Scene::default()
    }

    /// Add all obstacles of a set (drawn filled with `#`).
    pub fn add_obstacles(&mut self, obstacles: &ObstacleSet) -> &mut Self {
        for r in obstacles.iter() {
            self.rects.push((*r, '#'));
        }
        self
    }

    pub fn add_rect(&mut self, r: Rect, glyph: char) -> &mut Self {
        self.rects.push((r, glyph));
        self
    }

    /// Add a chain (staircase, separator, escape path).
    pub fn add_chain(&mut self, c: &Chain, glyph: char) -> &mut Self {
        self.chains.push((c.clone(), glyph));
        self
    }

    /// Add a path.
    pub fn add_path(&mut self, p: &RectiPath, glyph: char) -> &mut Self {
        self.chains.push((p.chain().clone(), glyph));
        self
    }

    /// Add a marked point.
    pub fn add_point(&mut self, p: Point, glyph: char) -> &mut Self {
        self.points.push((p, glyph));
        self
    }

    /// Add a region outline.
    pub fn add_region(&mut self, r: &StairRegion) -> &mut Self {
        self.regions.push(r.clone());
        self
    }

    fn bounds(&self) -> Rect {
        let mut lo = Point::new(i64::MAX, i64::MAX);
        let mut hi = Point::new(i64::MIN, i64::MIN);
        let mut consider = |p: Point| {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        };
        for (r, _) in &self.rects {
            consider(r.ll());
            consider(r.ur());
        }
        for (c, _) in &self.chains {
            for &p in c.points() {
                consider(p);
            }
        }
        for (p, _) in &self.points {
            consider(*p);
        }
        for r in &self.regions {
            for &p in r.vertices() {
                consider(p);
            }
        }
        if lo.x > hi.x {
            return Rect::new(0, 0, 1, 1);
        }
        Rect::new(lo.x, lo.y, hi.x.max(lo.x + 1), hi.y.max(lo.y + 1))
    }

    /// Render as an ASCII grid at most `max_cols` wide (y grows upwards, so
    /// the first output line is the top of the scene).
    pub fn to_ascii(&self, max_cols: usize) -> String {
        let b = self.bounds().expand(1);
        let w = (b.xmax - b.xmin + 1) as usize;
        let h = (b.ymax - b.ymin + 1) as usize;
        let scale = (w.div_ceil(max_cols.max(10))).max(1) as Coord;
        let cols = ((b.xmax - b.xmin) / scale + 1) as usize;
        let rows = ((b.ymax - b.ymin) / scale + 1) as usize;
        let _ = h;
        let mut grid = vec![vec![' '; cols]; rows];
        let to_cell =
            |p: Point| -> (usize, usize) { (((p.x - b.xmin) / scale) as usize, ((p.y - b.ymin) / scale) as usize) };
        // region outlines first (lowest layer)
        for region in &self.regions {
            for (a, c) in region.edges() {
                draw_segment(&mut grid, to_cell(a), to_cell(c), '.');
            }
        }
        for (r, glyph) in &self.rects {
            let (c0, r0) = to_cell(r.ll());
            let (c1, r1) = to_cell(r.ur());
            for row in grid.iter_mut().take(r1 + 1).skip(r0) {
                for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                    *cell = *glyph;
                }
            }
        }
        for (chain, glyph) in &self.chains {
            for (a, c) in chain.segments() {
                draw_segment(&mut grid, to_cell(a), to_cell(c), *glyph);
            }
        }
        for (p, glyph) in &self.points {
            let (c, r) = to_cell(*p);
            grid[r][c] = *glyph;
        }
        let mut out = String::new();
        for row in grid.iter().rev() {
            let line: String = row.iter().collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render as a standalone SVG document (y axis flipped so that larger y
    /// is up, matching the paper's figures).
    pub fn to_svg(&self, target_width: f64) -> String {
        let b = self.bounds().expand(2);
        let w = (b.xmax - b.xmin) as f64;
        let h = (b.ymax - b.ymin) as f64;
        let scale = target_width / w.max(1.0);
        let sw = w * scale;
        let sh = h * scale;
        let tx = |x: Coord| (x - b.xmin) as f64 * scale;
        let ty = |y: Coord| sh - (y - b.ymin) as f64 * scale;
        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{sw:.0}\" height=\"{sh:.0}\" viewBox=\"0 0 {sw:.1} {sh:.1}\">\n"
        ));
        s.push_str(&format!("<rect x=\"0\" y=\"0\" width=\"{sw:.1}\" height=\"{sh:.1}\" fill=\"white\"/>\n"));
        for region in &self.regions {
            let pts: Vec<String> = region.vertices().iter().map(|p| format!("{:.1},{:.1}", tx(p.x), ty(p.y))).collect();
            s.push_str(&format!(
                "<polygon points=\"{}\" fill=\"none\" stroke=\"#bbbbbb\" stroke-dasharray=\"4 3\" stroke-width=\"1\"/>\n",
                pts.join(" ")
            ));
        }
        for (r, _) in &self.rects {
            s.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#d0d7e5\" stroke=\"#333366\" stroke-width=\"1\"/>\n",
                tx(r.xmin),
                ty(r.ymax),
                (r.width()) as f64 * scale,
                (r.height()) as f64 * scale
            ));
        }
        let palette = ["#cc3333", "#228833", "#3366cc", "#aa7700", "#aa33aa", "#117777"];
        for (i, (chain, _)) in self.chains.iter().enumerate() {
            let pts: Vec<String> = chain.points().iter().map(|p| format!("{:.1},{:.1}", tx(p.x), ty(p.y))).collect();
            s.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\n",
                pts.join(" "),
                palette[i % palette.len()]
            ));
        }
        for (p, _) in &self.points {
            s.push_str(&format!("<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#000000\"/>\n", tx(p.x), ty(p.y)));
        }
        s.push_str("</svg>\n");
        s
    }
}

fn draw_segment(grid: &mut [Vec<char>], a: (usize, usize), b: (usize, usize), glyph: char) {
    let (ac, ar) = a;
    let (bc, br) = b;
    if ac == bc {
        for row in grid.iter_mut().take(ar.max(br) + 1).skip(ar.min(br)) {
            row[ac] = glyph;
        }
    } else {
        for cell in grid[ar].iter_mut().take(ac.max(bc) + 1).skip(ac.min(bc)) {
            *cell = glyph;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> Scene {
        let mut s = Scene::new();
        let obs = ObstacleSet::new(vec![Rect::new(2, 2, 6, 5), Rect::new(10, 1, 14, 8)]);
        s.add_obstacles(&obs);
        s.add_chain(&Chain::new(vec![Point::new(0, 0), Point::new(0, 9), Point::new(15, 9)]), '*');
        s.add_point(Point::new(8, 4), 'p');
        s.add_region(&StairRegion::from_rect(Rect::new(-1, -1, 16, 10)));
        s
    }

    #[test]
    fn ascii_renders_and_contains_glyphs() {
        let out = scene().to_ascii(100);
        assert!(out.contains('#'));
        assert!(out.contains('*'));
        assert!(out.contains('p'));
        assert!(out.lines().count() >= 10);
    }

    #[test]
    fn ascii_downscales_when_wide() {
        let mut s = Scene::new();
        s.add_rect(Rect::new(0, 0, 2000, 50), '#');
        let out = s.to_ascii(80);
        assert!(out.lines().map(|l| l.len()).max().unwrap() <= 90);
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = scene().to_svg(400.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 obstacles
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polygon"));
    }
}
