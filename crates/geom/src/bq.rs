//! Boundary discretisations of a convex clear region `Q`.
//!
//! The paper (Definition 1, Fig. 3) defines `B(Q)` as the vertices of `Q`
//! together with the boundary points that are horizontally or vertically
//! visible from an obstacle vertex or a vertex of `Q`.  `|B(Q)| =
//! O(|Q| + |R'|)`.
//!
//! The divide-and-conquer implementation in `rsp-core` uses a slightly larger
//! but simpler set `B'(Q)`: the boundary points lying on the coordinate grid
//! of the obstacle vertices and the region vertices
//! ([`StairRegion::boundary_grid_points`]).  `B(Q) ⊆ B'(Q)` and
//! `|B'(Q)| = O(|Q| + |R'|)` still holds, which preserves all the complexity
//! bounds while making the Monge-product conquer easier to state.  This
//! module provides the faithful `B(Q)` (used in tests and the figure
//! gallery) plus ordering helpers shared by both notions.

use crate::point::{Coord, Dir, Point};
use crate::rayshoot::shoot_naive;
use crate::rect::ObstacleSet;
use crate::region::StairRegion;

/// First intersection of a ray from `p` in direction `dir` with the region
/// boundary, for a point `p` inside the (rectilinearly convex) region.
pub fn boundary_exit(region: &StairRegion, p: Point, dir: Dir) -> Option<Point> {
    let mut best: Option<Point> = None;
    for (a, b) in region.edges() {
        let hit =
            match dir {
                Dir::North => (a.y == b.y && a.y >= p.y && a.x.min(b.x) <= p.x && p.x <= a.x.max(b.x))
                    .then(|| Point::new(p.x, a.y)),
                Dir::South => (a.y == b.y && a.y <= p.y && a.x.min(b.x) <= p.x && p.x <= a.x.max(b.x))
                    .then(|| Point::new(p.x, a.y)),
                Dir::East => (a.x == b.x && a.x >= p.x && a.y.min(b.y) <= p.y && p.y <= a.y.max(b.y))
                    .then(|| Point::new(a.x, p.y)),
                Dir::West => (a.x == b.x && a.x <= p.x && a.y.min(b.y) <= p.y && p.y <= a.y.max(b.y))
                    .then(|| Point::new(a.x, p.y)),
            };
        if let Some(h) = hit {
            if h == p {
                continue;
            }
            if best.is_none_or(|b0| h.l1(p) < b0.l1(p)) {
                best = Some(h);
            }
        }
    }
    best
}

/// The paper's `B(Q)` (Definition 1): vertices of `Q` plus boundary points
/// horizontally/vertically visible from obstacle vertices or region vertices.
/// Returned in counterclockwise boundary order.
pub fn visibility_discretization(region: &StairRegion, obstacles: &ObstacleSet) -> Vec<Point> {
    let mut points: Vec<Point> = region.vertices().to_vec();
    let mut sources: Vec<Point> = obstacles.vertices();
    sources.extend(region.vertices().iter().copied());
    for &v in &sources {
        if !region.contains(v) {
            continue;
        }
        for dir in Dir::ALL {
            let exit = match boundary_exit(region, v, dir) {
                Some(e) => e,
                None => continue,
            };
            // the segment from v to the boundary must not cross an obstacle
            // interior and must not cross the boundary earlier (guaranteed by
            // taking the first exit), i.e. v must "see" the boundary point.
            let blocked = match shoot_naive(obstacles, v, dir, None) {
                Some(hit) => hit.distance_from(v) < exit.l1(v),
                None => false,
            };
            if !blocked {
                points.push(exit);
            }
        }
    }
    order_along_boundary(region, points)
}

/// Order a set of boundary points counterclockwise along the region boundary
/// (deduplicating).  Points not on the boundary are dropped.
pub fn order_along_boundary(region: &StairRegion, mut points: Vec<Point>) -> Vec<Point> {
    points.retain(|&p| region.on_boundary(p));
    points.sort_by_key(|&p| boundary_arc_position(region, p).unwrap());
    points.dedup();
    points
}

/// Arc-length position of a boundary point along the counterclockwise walk
/// starting at vertex 0.
pub fn boundary_arc_position(region: &StairRegion, p: Point) -> Option<Coord> {
    let idx = region.locate_on_boundary(p)?;
    let verts = region.vertices();
    let mut acc: Coord = 0;
    for i in 0..idx {
        acc += verts[i].l1(verts[(i + 1) % verts.len()]);
    }
    Some(acc + verts[idx].l1(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn setup() -> (StairRegion, ObstacleSet) {
        let region = StairRegion::from_rect(Rect::new(0, 0, 12, 10));
        let obstacles = ObstacleSet::new(vec![Rect::new(3, 3, 5, 7), Rect::new(8, 2, 10, 4)]);
        (region, obstacles)
    }

    #[test]
    fn boundary_exit_directions() {
        let (region, _) = setup();
        assert_eq!(boundary_exit(&region, pt(6, 5), Dir::North), Some(pt(6, 10)));
        assert_eq!(boundary_exit(&region, pt(6, 5), Dir::South), Some(pt(6, 0)));
        assert_eq!(boundary_exit(&region, pt(6, 5), Dir::East), Some(pt(12, 5)));
        assert_eq!(boundary_exit(&region, pt(6, 5), Dir::West), Some(pt(0, 5)));
    }

    #[test]
    fn arc_positions_are_monotone_ccw() {
        let (region, _) = setup();
        let pts = [pt(0, 0), pt(6, 0), pt(12, 0), pt(12, 5), pt(12, 10), pt(3, 10), pt(0, 4)];
        let positions: Vec<_> = pts.iter().map(|&p| boundary_arc_position(&region, p).unwrap()).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
        assert_eq!(boundary_arc_position(&region, pt(5, 5)), None);
    }

    #[test]
    fn visibility_discretization_contains_projections() {
        let (region, obstacles) = setup();
        let bq = visibility_discretization(&region, &obstacles);
        // region vertices always included
        for v in region.vertices() {
            assert!(bq.contains(v));
        }
        // the obstacle vertex (3,3) sees the west wall at (0,3) and the floor at (3,0)
        assert!(bq.contains(&pt(0, 3)));
        assert!(bq.contains(&pt(3, 0)));
        // the obstacle vertex (3,7) is blocked to the east by nothing until the wall
        assert!(bq.contains(&pt(12, 7)));
        // (8,2) looking west is NOT blocked by the first obstacle (y=2 is below it)
        assert!(bq.contains(&pt(0, 2)));
        // (8,4) looking west IS blocked by the first obstacle (y=4 in (3,7))
        assert!(!bq.contains(&pt(0, 4)) || obstacles.segment_clear(pt(8, 4), pt(0, 4)));
        // every reported point is on the boundary and the list is CCW-sorted
        let positions: Vec<_> = bq.iter().map(|&p| boundary_arc_position(&region, p).unwrap()).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn bq_size_is_linear() {
        let (region, obstacles) = setup();
        let bq = visibility_discretization(&region, &obstacles);
        assert!(bq.len() <= 4 * (region.num_vertices() + 4 * obstacles.len()));
    }

    #[test]
    fn grid_discretization_is_superset_of_visibility_discretization() {
        let (region, obstacles) = setup();
        let bq = visibility_discretization(&region, &obstacles);
        let mut xs = obstacles.xs();
        xs.extend(region.vertices().iter().map(|p| p.x));
        let mut ys = obstacles.ys();
        ys.extend(region.vertices().iter().map(|p| p.y));
        let bprime = region.boundary_grid_points(&xs, &ys);
        for p in &bq {
            assert!(bprime.contains(p), "B(Q) point {:?} missing from B'(Q)", p);
        }
    }
}
