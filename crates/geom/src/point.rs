//! Points, coordinates, directions and the L1 metric (Section 2 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Exact integer coordinate.  All geometry in this workspace is exact.
pub type Coord = i64;

/// Path-length / distance type.  Lengths of rectilinear paths with `Coord`
/// endpoints are always representable as `i64`.
pub type Dist = i64;

/// "Infinite" distance sentinel.  Chosen so that `INF + INF` does not
/// overflow and `INF` still compares larger than any realistic path length.
pub const INF: Dist = i64::MAX / 4;

/// A point in the plane with integer coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Point {
    /// Create a point.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// L1 (rectilinear / Manhattan) distance `|x(p)-x(q)| + |y(p)-y(q)|`.
    ///
    /// A *staircase* (convex path) between `p` and `q` has exactly this
    /// length, which is why staircases are always shortest paths when they
    /// are obstacle-avoiding (Section 2).
    pub fn l1(&self, other: Point) -> Dist {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Is `self` strictly below `other` (same x, smaller y)?  Matches the
    /// paper's definition of "strictly below".
    pub fn strictly_below(&self, other: Point) -> bool {
        self.x == other.x && self.y < other.y
    }

    /// Is `self` strictly to the left of `other` (same y, smaller x)?
    pub fn strictly_left_of(&self, other: Point) -> bool {
        self.y == other.y && self.x < other.x
    }

    /// Does `self` dominate `other` in the NE sense (`x >= ` and `y >= `)?
    pub fn dominates_ne(&self, other: Point) -> bool {
        self.x >= other.x && self.y >= other.y
    }

    /// Translate by `(dx, dy)`.
    pub fn offset(&self, dx: Coord, dy: Coord) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// Convenience constructor used pervasively in tests and examples.
pub fn pt(x: Coord, y: Coord) -> Point {
    Point::new(x, y)
}

/// The four axis directions.  Used for ray shooting, path tracing
/// (`NE(p)`, `WS(p)`, ... in Section 3) and trapezoidal decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Dir {
    /// Towards increasing `y`.
    North,
    /// Towards decreasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// Unit step of this direction.
    pub fn step(self) -> (Coord, Coord) {
        match self {
            Dir::North => (0, 1),
            Dir::South => (0, -1),
            Dir::East => (1, 0),
            Dir::West => (-1, 0),
        }
    }

    /// Opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }

    /// Is this direction vertical (north/south)?
    pub fn is_vertical(self) -> bool {
        matches!(self, Dir::North | Dir::South)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_metric_basics() {
        let a = pt(0, 0);
        let b = pt(3, 4);
        assert_eq!(a.l1(b), 7);
        assert_eq!(b.l1(a), 7);
        assert_eq!(a.l1(a), 0);
    }

    #[test]
    fn l1_triangle_inequality_examples() {
        let a = pt(-5, 2);
        let b = pt(7, -3);
        let c = pt(0, 0);
        assert!(a.l1(b) <= a.l1(c) + c.l1(b));
    }

    #[test]
    fn strict_relations() {
        assert!(pt(1, 0).strictly_below(pt(1, 5)));
        assert!(!pt(1, 0).strictly_below(pt(2, 5)));
        assert!(pt(0, 3).strictly_left_of(pt(4, 3)));
        assert!(!pt(0, 3).strictly_left_of(pt(0, 3)));
    }

    #[test]
    fn dominance() {
        assert!(pt(3, 3).dominates_ne(pt(1, 2)));
        assert!(pt(3, 3).dominates_ne(pt(3, 3)));
        assert!(!pt(3, 3).dominates_ne(pt(4, 0)));
    }

    #[test]
    fn directions() {
        assert_eq!(Dir::North.opposite(), Dir::South);
        assert_eq!(Dir::East.opposite(), Dir::West);
        assert!(Dir::North.is_vertical());
        assert!(!Dir::East.is_vertical());
        assert_eq!(Dir::West.step(), (-1, 0));
        assert_eq!(Dir::ALL.len(), 4);
    }

    #[test]
    fn inf_is_safe_to_add() {
        const { assert!(INF + INF > 0) };
        const { assert!(INF > 1_000_000_000_000) };
    }
}
