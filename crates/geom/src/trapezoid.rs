//! Trapezoidal decomposition of the obstacle vertices.
//!
//! For every obstacle vertex we record the first obstacle edge hit by a ray
//! in each of the four axis directions (ignoring the vertex's own obstacle).
//! This is the information produced by the parallel trapezoidal-decomposition
//! algorithm of [4] that the paper uses in the Path Tracing Lemma (Lemma 6),
//! in the shortest-path-tree construction (Section 8) and in the sequential
//! algorithm (Section 9, the `Hit(e)` sets).

use crate::point::{Dir, Point};
use crate::rayshoot::{Hit, ShootIndex};
use crate::rect::{ObstacleSet, RectId};
use rayon::prelude::*;

/// One of the four sides of a rectangle, naming an obstacle edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Edge {
    /// The bottom side (`y = ymin`).
    Bottom,
    /// The top side (`y = ymax`).
    Top,
    /// The left side (`x = xmin`).
    Left,
    /// The right side (`x = xmax`).
    Right,
}

impl Edge {
    /// The side of the obstacle that a ray travelling in `dir` runs into.
    pub fn facing(dir: Dir) -> Edge {
        match dir {
            Dir::North => Edge::Bottom,
            Dir::South => Edge::Top,
            Dir::East => Edge::Left,
            Dir::West => Edge::Right,
        }
    }
}

/// Identifier of an obstacle edge.
pub type EdgeId = (RectId, Edge);

/// The trapezoidal decomposition: per-vertex first hits and per-edge `Hit(e)`
/// sets.
pub struct TrapezoidDecomposition {
    /// `hits[dir][vertex_index]` — first obstacle hit from that vertex.
    hits: [Vec<Option<Hit>>; 4],
    /// number of obstacles
    n: usize,
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::North => 0,
        Dir::South => 1,
        Dir::East => 2,
        Dir::West => 3,
    }
}

impl TrapezoidDecomposition {
    /// Build the decomposition.  Work `O(n log^2 n)`, parallelised over
    /// vertices with rayon (the paper uses the `O(log n)`-time algorithm of
    /// [4]; the role here is identical).
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let index = ShootIndex::build(obstacles);
        let vertices = obstacles.vertices();
        let shoot_all = |dir: Dir| -> Vec<Option<Hit>> {
            vertices
                .par_iter()
                .enumerate()
                .map(|(vi, &v)| {
                    let own = obstacles.vertex_owner(vi);
                    match index.shoot(v, dir) {
                        Some(h) if h.rect == own => {
                            // A vertex never sees its own rectangle because its
                            // coordinates sit on the rectangle boundary (open
                            // interval rule); keep this arm for safety.
                            None
                        }
                        other => other,
                    }
                })
                .collect()
        };
        let hits = [shoot_all(Dir::North), shoot_all(Dir::South), shoot_all(Dir::East), shoot_all(Dir::West)];
        TrapezoidDecomposition { hits, n: obstacles.len() }
    }

    /// First obstacle hit from vertex `vertex_index` (index into
    /// [`ObstacleSet::vertices`]) in direction `dir`.
    pub fn vertex_hit(&self, vertex_index: usize, dir: Dir) -> Option<Hit> {
        self.hits[dir_index(dir)][vertex_index]
    }

    /// The `Hit(e)` set of Section 9: all vertices whose ray in the direction
    /// facing `edge` hits that edge of obstacle `rect`, sorted along the
    /// edge.  Returned as (vertex_index, hit_point) pairs.
    pub fn hit_set(&self, obstacles: &ObstacleSet, rect: RectId, edge: Edge) -> Vec<(usize, Point)> {
        let dir = match edge {
            Edge::Bottom => Dir::North,
            Edge::Top => Dir::South,
            Edge::Left => Dir::East,
            Edge::Right => Dir::West,
        };
        let vertices = obstacles.vertices();
        let mut out: Vec<(usize, Point)> = Vec::new();
        for (vi, _) in vertices.iter().enumerate() {
            if let Some(hit) = self.vertex_hit(vi, dir) {
                if hit.rect == rect {
                    out.push((vi, hit.point));
                }
            }
        }
        match edge {
            Edge::Bottom | Edge::Top => out.sort_by_key(|(_, p)| p.x),
            Edge::Left | Edge::Right => out.sort_by_key(|(_, p)| p.y),
        }
        out
    }

    /// Number of obstacles this decomposition was built for.
    pub fn num_obstacles(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn obstacles() -> ObstacleSet {
        // two towers with a gap, plus a roof over the gap
        ObstacleSet::new(vec![
            Rect::new(0, 0, 2, 6),  // 0: left tower
            Rect::new(6, 0, 8, 6),  // 1: right tower
            Rect::new(1, 8, 7, 10), // 2: roof
        ])
    }

    #[test]
    fn vertex_hits() {
        let obs = obstacles();
        let t = TrapezoidDecomposition::build(&obs);
        assert_eq!(t.num_obstacles(), 3);
        // vertex 2 of rect 0 is its UR corner (2,6); nothing north of x=2 strictly inside... the roof spans (1,7)
        let ur0 = obs.vertices().iter().position(|&p| p == pt(2, 6)).unwrap();
        // x = 2 is strictly inside the roof's (1,7) span, so shooting north hits the roof
        let hit = t.vertex_hit(ur0, Dir::North).unwrap();
        assert_eq!(hit.rect, 2);
        assert_eq!(hit.point, pt(2, 8));
        // shooting east from (2,6) exits: the right tower spans y in (0,6) open, 6 not inside
        assert_eq!(t.vertex_hit(ur0, Dir::East), None);
        // UL corner of right tower (6,6) shooting west: y=6 not strictly inside left tower, no hit
        let ul1 = obs.vertices().iter().position(|&p| p == pt(6, 6)).unwrap();
        assert_eq!(t.vertex_hit(ul1, Dir::West), None);
        // LL corner of the roof (1,8) shooting south: x=1 strictly inside left tower (0,2)
        let ll2 = obs.vertices().iter().position(|&p| p == pt(1, 8)).unwrap();
        let hit = t.vertex_hit(ll2, Dir::South).unwrap();
        assert_eq!(hit.rect, 0);
        assert_eq!(hit.point, pt(1, 6));
    }

    #[test]
    fn hit_sets_are_sorted_along_edge() {
        let obs = obstacles();
        let t = TrapezoidDecomposition::build(&obs);
        // the roof's bottom edge is hit from below by vertices of both towers
        let set = t.hit_set(&obs, 2, Edge::Bottom);
        assert!(!set.is_empty());
        let xs: Vec<_> = set.iter().map(|(_, p)| p.x).collect();
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(xs, sorted);
        for (_, p) in set {
            assert_eq!(p.y, 8);
            assert!(p.x > 1 && p.x < 7);
        }
    }

    #[test]
    fn own_rect_is_never_hit_at_distance_zero() {
        let obs = obstacles();
        let t = TrapezoidDecomposition::build(&obs);
        for (vi, v) in obs.vertices().iter().enumerate() {
            for dir in Dir::ALL {
                if let Some(hit) = t.vertex_hit(vi, dir) {
                    assert!(
                        hit.rect != obs.vertex_owner(vi) || hit.distance_from(*v) > 0,
                        "vertex {:?} hits its own rect at distance 0",
                        v
                    );
                }
            }
        }
    }
}
