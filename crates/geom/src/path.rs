//! Actual rectilinear paths (Section 8 of the paper reports paths, not just
//! lengths).  A [`RectiPath`] is a polyline of axis-parallel segments with
//! helpers to validate that it is obstacle-avoiding and has the claimed
//! length, and to check the monotonicity properties the paper relies on.

use crate::chain::Chain;
use crate::point::{Dist, Point};
use crate::rect::ObstacleSet;
use serde::{Deserialize, Serialize};

/// A rectilinear path described by its turning points (including endpoints).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RectiPath {
    chain: Chain,
}

impl RectiPath {
    /// Build a path from a point sequence.  Consecutive equal points and
    /// collinear runs are normalised away.  Panics on non-axis-parallel
    /// steps.
    pub fn new(points: Vec<Point>) -> Self {
        RectiPath { chain: Chain::new(points) }
    }

    /// The underlying chain.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Turning points (including endpoints).
    pub fn points(&self) -> &[Point] {
        self.chain.points()
    }

    /// First point of the path.
    pub fn source(&self) -> Point {
        self.chain.first()
    }

    /// Last point of the path.
    pub fn target(&self) -> Point {
        self.chain.last()
    }

    /// Path length (sum of segment lengths).
    pub fn length(&self) -> Dist {
        self.chain.length()
    }

    /// Number of segments — the paper's `k` in the `O(log n + k)` reporting
    /// bound.
    pub fn num_segments(&self) -> usize {
        self.chain.num_segments()
    }

    /// Does the path avoid all obstacle interiors?  (Running along an
    /// obstacle boundary is allowed.)
    pub fn avoids(&self, obstacles: &ObstacleSet) -> bool {
        self.chain.segments().all(|(a, b)| obstacles.segment_clear(a, b))
    }

    /// Is the path monotone with respect to the x-axis?
    pub fn is_x_monotone(&self) -> bool {
        self.chain.is_x_monotone()
    }

    /// Is the path monotone with respect to the y-axis?
    pub fn is_y_monotone(&self) -> bool {
        self.chain.is_y_monotone()
    }

    /// Is the path a staircase (monotone in both axes)?  Staircases achieve
    /// the L1 distance between their endpoints.
    pub fn is_staircase(&self) -> bool {
        self.chain.is_staircase()
    }

    /// Reverse the path.
    pub fn reversed(&self) -> RectiPath {
        RectiPath { chain: self.chain.reversed() }
    }

    /// Concatenate with another path starting where this one ends.
    pub fn concat(&self, other: &RectiPath) -> RectiPath {
        RectiPath { chain: self.chain.concat(&other.chain) }
    }

    /// Full validity check: connects `source` to `target`, avoids the
    /// obstacles, and has length exactly `expected_length`.
    pub fn certifies(&self, obstacles: &ObstacleSet, source: Point, target: Point, expected_length: Dist) -> bool {
        self.source() == source && self.target() == target && self.avoids(obstacles) && self.length() == expected_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    #[test]
    fn length_and_segments() {
        let p = RectiPath::new(vec![pt(0, 0), pt(0, 3), pt(4, 3), pt(4, 1)]);
        assert_eq!(p.length(), 9);
        assert_eq!(p.num_segments(), 3);
        assert_eq!(p.source(), pt(0, 0));
        assert_eq!(p.target(), pt(4, 1));
        assert!(p.is_x_monotone());
        assert!(!p.is_y_monotone());
        assert!(!p.is_staircase());
    }

    #[test]
    fn staircase_achieves_l1() {
        let p = RectiPath::new(vec![pt(0, 0), pt(2, 0), pt(2, 2), pt(5, 2), pt(5, 4)]);
        assert!(p.is_staircase());
        assert_eq!(p.length(), p.source().l1(p.target()));
    }

    #[test]
    fn obstacle_avoidance() {
        let obs = ObstacleSet::new(vec![Rect::new(1, 1, 3, 3)]);
        let through = RectiPath::new(vec![pt(0, 2), pt(4, 2)]);
        assert!(!through.avoids(&obs));
        let around = RectiPath::new(vec![pt(0, 2), pt(0, 3), pt(4, 3), pt(4, 2)]);
        assert!(around.avoids(&obs));
        assert!(around.certifies(&obs, pt(0, 2), pt(4, 2), 6));
        assert!(!around.certifies(&obs, pt(0, 2), pt(4, 2), 4));
    }

    #[test]
    fn concat_and_reverse() {
        let a = RectiPath::new(vec![pt(0, 0), pt(5, 0)]);
        let b = RectiPath::new(vec![pt(5, 0), pt(5, 5)]);
        let c = a.concat(&b);
        assert_eq!(c.length(), 10);
        assert_eq!(c.reversed().source(), pt(5, 5));
    }
}
