//! Rectilinear chains (polylines) and staircases.
//!
//! A *staircase* in the paper is a path that is monotone with respect to both
//! axes (a "convex path", Section 2).  Separators (Theorem 2), the `MAX_xy`
//! staircases (Fig. 1) and the chains `Chain(U_v)`, `Chain(W_v)` of Section 6
//! are all staircases.  We represent a chain by its sequence of turning
//! points; consecutive points must differ in exactly one coordinate.

use crate::point::{Coord, Dist, Point};
use serde::{Deserialize, Serialize};

/// Which side of a (monotone) chain a point lies on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// Above-left of an increasing chain / above-right of a decreasing chain.
    Above,
    /// Below-right of an increasing chain / below-left of a decreasing chain.
    Below,
    /// Exactly on the chain.
    On,
}

/// Monotonicity class of a staircase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Monotone {
    /// Goes up as we move from left to right.
    Increasing,
    /// Goes down as we move from left to right.
    Decreasing,
}

/// Cached monotonicity sign meaning "the chain reverses direction along this
/// axis" (the other values are `-1`, `0`, `+1`: the net sign of movement).
const NOT_MONOTONE: i8 = 2;

/// Below this many vertices the linear intersection scan beats the binary
/// search; it is also the regime where degenerate staircases (no movement
/// along one axis) live.
const STAIR_SEARCH_CUTOFF: usize = 8;

/// Accessor pair selecting the query-axis and perpendicular coordinate of a
/// point in [`Chain::intersect_line_stair`].
type AxisAccessors = (fn(&Point) -> Coord, fn(&Point) -> Coord);

/// Monotonicity signs `(sx, sy)` of a vertex list: each is `+1`/`-1` when
/// every step along that axis has that sign, `0` when the chain never moves
/// along the axis, and [`NOT_MONOTONE`] when it reverses.
fn monotone_signs(pts: &[Point]) -> (i8, i8) {
    let mut sx = 0i8;
    let mut sy = 0i8;
    for w in pts.windows(2) {
        let dx = (w[1].x - w[0].x).signum() as i8;
        if dx != 0 && sx != NOT_MONOTONE {
            if sx == 0 {
                sx = dx;
            } else if sx != dx {
                sx = NOT_MONOTONE;
            }
        }
        let dy = (w[1].y - w[0].y).signum() as i8;
        if dy != 0 && sy != NOT_MONOTONE {
            if sy == 0 {
                sy = dy;
            } else if sy != dy {
                sy = NOT_MONOTONE;
            }
        }
    }
    (sx, sy)
}

/// A rectilinear polyline described by its vertices (turning points plus the
/// two endpoints).  Consecutive vertices must share exactly one coordinate.
///
/// Monotonicity along each axis is computed once at construction, which makes
/// the staircase classifiers `O(1)` and lets the line-intersection queries
/// binary-search monotone chains in `O(log n)` (Section 6.4 needs this bound
/// on the escape staircases).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chain {
    pts: Vec<Point>,
    /// Cached x-monotonicity sign (see [`monotone_signs`]).
    sx: i8,
    /// Cached y-monotonicity sign.
    sy: i8,
}

// The monotonicity cache is derived data: serialize the vertex list only
// and rebuild the signs through `Chain::new` on the way in, so no
// serialized input can desynchronise the binary-search fast path (and the
// wire format stays the pre-cache one).
impl Serialize for Chain {
    fn to_value(&self) -> serde::Value {
        self.pts.to_value()
    }
}

impl Deserialize for Chain {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<Point>::from_value(v).map(Chain::new)
    }
}

impl Chain {
    /// Build a chain from vertices.  Collinear consecutive segments are
    /// merged; repeated points are dropped.  Panics if a pair of consecutive
    /// points is not axis-aligned.
    pub fn new(pts: Vec<Point>) -> Self {
        let mut out: Vec<Point> = Vec::with_capacity(pts.len());
        for p in pts {
            if let Some(&last) = out.last() {
                if last == p {
                    continue;
                }
                assert!(last.x == p.x || last.y == p.y, "chain segments must be axis-parallel: {:?} -> {:?}", last, p);
                // merge collinear runs
                if out.len() >= 2 {
                    let prev = out[out.len() - 2];
                    let collinear_v = prev.x == last.x && last.x == p.x;
                    let collinear_h = prev.y == last.y && last.y == p.y;
                    if collinear_v || collinear_h {
                        // only merge if the direction does not reverse
                        let same_dir_v = collinear_v && ((last.y - prev.y).signum() == (p.y - last.y).signum());
                        let same_dir_h = collinear_h && ((last.x - prev.x).signum() == (p.x - last.x).signum());
                        if same_dir_v || same_dir_h {
                            out.pop();
                        }
                    }
                }
            }
            out.push(p);
        }
        let (sx, sy) = monotone_signs(&out);
        Chain { pts: out, sx, sy }
    }

    /// Chain consisting of a single point.
    pub fn singleton(p: Point) -> Self {
        Chain { pts: vec![p], sx: 0, sy: 0 }
    }

    /// The vertices of the chain.
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// First endpoint.
    pub fn first(&self) -> Point {
        self.pts[0]
    }

    /// Last endpoint.
    pub fn last(&self) -> Point {
        *self.pts.last().unwrap()
    }

    /// Number of segments (the paper's `|C|`).
    pub fn num_segments(&self) -> usize {
        self.pts.len().saturating_sub(1)
    }

    /// Total length of the chain.
    pub fn length(&self) -> Dist {
        self.pts.windows(2).map(|w| w[0].l1(w[1])).sum()
    }

    /// Iterate over the segments as (start, end) pairs.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.pts.windows(2).map(|w| (w[0], w[1]))
    }

    /// Reverse the chain.
    pub fn reversed(&self) -> Chain {
        let mut p = self.pts.clone();
        p.reverse();
        let flip = |s: i8| if s == NOT_MONOTONE { s } else { -s };
        Chain { pts: p, sx: flip(self.sx), sy: flip(self.sy) }
    }

    /// Concatenate `self` with `other`.  The last point of `self` must equal
    /// the first point of `other`.
    pub fn concat(&self, other: &Chain) -> Chain {
        assert_eq!(self.last(), other.first(), "chains must share an endpoint");
        let mut pts = self.pts.clone();
        pts.extend_from_slice(&other.pts[1..]);
        Chain::new(pts)
    }

    /// Is the chain monotone in x (every vertical line meets it in a
    /// connected set)?  `O(1)` — the sign is cached at construction.
    pub fn is_x_monotone(&self) -> bool {
        self.sx != NOT_MONOTONE
    }

    /// Is the chain monotone in y?  `O(1)`.
    pub fn is_y_monotone(&self) -> bool {
        self.sy != NOT_MONOTONE
    }

    /// Is this chain a staircase (monotone in both axes — a "convex path")?
    pub fn is_staircase(&self) -> bool {
        self.is_x_monotone() && self.is_y_monotone()
    }

    /// Monotonicity of a staircase chain, normalised to a left-to-right walk.
    /// Returns `None` if the chain is not a staircase or is a single
    /// axis-parallel segment (either classification is fine then).
    pub fn staircase_monotonicity(&self) -> Option<Monotone> {
        if !self.is_staircase() {
            return None;
        }
        let a = self.first();
        let b = self.last();
        let dx = (b.x - a.x).signum();
        let dy = (b.y - a.y).signum();
        if dx == 0 || dy == 0 {
            return None;
        }
        Some(if dx == dy { Monotone::Increasing } else { Monotone::Decreasing })
    }

    /// Is `p` on the chain?
    pub fn contains_point(&self, p: Point) -> bool {
        self.pts.len() == 1 && self.pts[0] == p || self.segments().any(|(a, b)| on_segment(a, b, p))
    }

    /// Arc-length position of a point that lies on the chain (distance along
    /// the chain from `first()`).  Returns `None` if the point is not on it.
    pub fn arc_position(&self, p: Point) -> Option<Dist> {
        if self.pts.len() == 1 {
            return if self.pts[0] == p { Some(0) } else { None };
        }
        let mut acc: Dist = 0;
        for (a, b) in self.segments() {
            if on_segment(a, b, p) {
                return Some(acc + a.l1(p));
            }
            acc += a.l1(b);
        }
        None
    }

    /// Distance along the chain between two points of the chain.  For a
    /// staircase this equals their L1 distance (which is why walking along a
    /// clear staircase is always a shortest path — Lemma 11's proof).
    pub fn walk_distance(&self, p: Point, q: Point) -> Option<Dist> {
        Some((self.arc_position(p)? - self.arc_position(q)?).abs())
    }

    /// For a *staircase* chain: which side of the chain is `p` on?
    ///
    /// The answer is with respect to the chain extended to infinity by
    /// prolonging its first and last segments, which matches how separators
    /// clamped to a bounding window behave (the window boundary is reached by
    /// the first/last segment).
    pub fn side_of(&self, p: Point) -> Side {
        debug_assert!(self.is_staircase(), "side_of requires a staircase");
        if self.contains_point(p) {
            return Side::On;
        }
        if self.pts.len() == 1 {
            // degenerate; classify by y then x
            let q = self.pts[0];
            return if (p.y, -p.x) > (q.y, -q.x) { Side::Above } else { Side::Below };
        }
        let mono = self.staircase_monotonicity();
        // Determine the chain's y-extent at x = p.x (extending first/last
        // segments to infinity), then compare.
        let xs_lo = self.pts.iter().map(|q| q.x).min().unwrap();
        let xs_hi = self.pts.iter().map(|q| q.x).max().unwrap();
        if p.x < xs_lo || p.x > xs_hi {
            // Off the end: classify against the endpoint's y, using the
            // prolongation of the terminal segment (which is horizontal or
            // vertical).  For a vertical terminal segment the prolongation is
            // a vertical ray; anything beyond it in x is classified by which
            // side of that ray it is on combined with monotonicity.
            let (end, other) = if p.x < xs_lo {
                if self.first().x <= self.last().x {
                    (self.first(), self.pts[1])
                } else {
                    (self.last(), self.pts[self.pts.len() - 2])
                }
            } else if self.first().x >= self.last().x {
                (self.first(), self.pts[1])
            } else {
                (self.last(), self.pts[self.pts.len() - 2])
            };
            let _ = other;
            return if p.y > end.y {
                Side::Above
            } else if p.y < end.y {
                Side::Below
            } else {
                // same y, beyond in x: for increasing chains the region above
                // is up-left, so a point left of the left end is Above iff
                // the chain increases; mirrored for the right end.
                match (mono, p.x < xs_lo) {
                    (Some(Monotone::Increasing), true) => Side::Above,
                    (Some(Monotone::Increasing), false) => Side::Below,
                    (Some(Monotone::Decreasing), true) => Side::Below,
                    (Some(Monotone::Decreasing), false) => Side::Above,
                    (None, _) => Side::Above,
                }
            };
        }
        // y-extent of the chain at x = p.x
        let mut ylo = Coord::MAX;
        let mut yhi = Coord::MIN;
        for (a, b) in self.segments() {
            let (sx_lo, sx_hi) = (a.x.min(b.x), a.x.max(b.x));
            if sx_lo <= p.x && p.x <= sx_hi {
                ylo = ylo.min(a.y.min(b.y));
                yhi = yhi.max(a.y.max(b.y));
                // For vertical segments at exactly p.x the whole extent counts;
                // for horizontal segments only the segment's y.
                if a.y == b.y {
                    ylo = ylo.min(a.y);
                    yhi = yhi.max(a.y);
                }
            }
        }
        if p.y > yhi {
            Side::Above
        } else if p.y < ylo {
            Side::Below
        } else {
            // Between ylo and yhi but not on the chain: this can only happen
            // at an x where the chain has a jump (vertical segment at a
            // different x sharing the column).  Resolve by comparing with the
            // chain point at this exact column.
            Side::Above
        }
    }

    /// Intersection of the chain with the vertical line `x = c`, as the
    /// (possibly degenerate) y-interval covered.  `None` if no intersection.
    ///
    /// `O(log n)` on staircases (binary search over the monotone vertex
    /// list — a staircase meets a grid line in at most three consecutive
    /// segments); `O(n)` on general chains.  Debug builds cross-check the
    /// binary search against [`Chain::intersect_vertical_linear`].
    pub fn intersect_vertical(&self, c: Coord) -> Option<(Coord, Coord)> {
        if self.is_staircase() && self.pts.len() > STAIR_SEARCH_CUTOFF && self.sx != 0 {
            let fast = self.intersect_line_stair(c, true);
            debug_assert_eq!(
                fast,
                self.intersect_vertical_linear(c),
                "staircase binary search disagrees with the linear scan at x={c}: {:?}",
                self.pts
            );
            return fast;
        }
        self.intersect_vertical_linear(c)
    }

    /// Reference `O(n)` implementation of [`Chain::intersect_vertical`]:
    /// works on arbitrary chains and is the debug-build cross-check for the
    /// staircase binary search.
    pub fn intersect_vertical_linear(&self, c: Coord) -> Option<(Coord, Coord)> {
        let mut lo = Coord::MAX;
        let mut hi = Coord::MIN;
        let mut found = false;
        if self.pts.len() == 1 {
            let p = self.pts[0];
            return if p.x == c { Some((p.y, p.y)) } else { None };
        }
        for (a, b) in self.segments() {
            let (sx_lo, sx_hi) = (a.x.min(b.x), a.x.max(b.x));
            if sx_lo <= c && c <= sx_hi {
                found = true;
                if a.x == b.x {
                    lo = lo.min(a.y.min(b.y));
                    hi = hi.max(a.y.max(b.y));
                } else {
                    lo = lo.min(a.y);
                    hi = hi.max(a.y);
                }
            }
        }
        if found {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Intersection of the chain with the horizontal line `y = c`, as the
    /// (possibly degenerate) x-interval covered.  Same cost profile as
    /// [`Chain::intersect_vertical`].
    pub fn intersect_horizontal(&self, c: Coord) -> Option<(Coord, Coord)> {
        if self.is_staircase() && self.pts.len() > STAIR_SEARCH_CUTOFF && self.sy != 0 {
            let fast = self.intersect_line_stair(c, false);
            debug_assert_eq!(
                fast,
                self.intersect_horizontal_linear(c),
                "staircase binary search disagrees with the linear scan at y={c}: {:?}",
                self.pts
            );
            return fast;
        }
        self.intersect_horizontal_linear(c)
    }

    /// Reference `O(n)` implementation of [`Chain::intersect_horizontal`].
    pub fn intersect_horizontal_linear(&self, c: Coord) -> Option<(Coord, Coord)> {
        let mut lo = Coord::MAX;
        let mut hi = Coord::MIN;
        let mut found = false;
        if self.pts.len() == 1 {
            let p = self.pts[0];
            return if p.y == c { Some((p.x, p.x)) } else { None };
        }
        for (a, b) in self.segments() {
            let (sy_lo, sy_hi) = (a.y.min(b.y), a.y.max(b.y));
            if sy_lo <= c && c <= sy_hi {
                found = true;
                if a.y == b.y {
                    lo = lo.min(a.x.min(b.x));
                    hi = hi.max(a.x.max(b.x));
                } else {
                    lo = lo.min(a.x);
                    hi = hi.max(a.x);
                }
            }
        }
        if found {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Binary-search core of the staircase line intersections.  `vertical`
    /// selects the query line orientation (`x = c` vs `y = c`).  Requires a
    /// staircase with nonzero movement along the query axis; on such a chain
    /// the coordinates of the vertex list are monotone along the axis, so at
    /// most two vertices share the coordinate `c` and the segments meeting
    /// the line form a run of at most three, found by one `partition_point`.
    fn intersect_line_stair(&self, c: Coord, vertical: bool) -> Option<(Coord, Coord)> {
        let pts = &self.pts;
        let n = pts.len();
        let (sign, (coord, perp)): (i8, AxisAccessors) =
            if vertical { (self.sx, (|p| p.x, |p| p.y)) } else { (self.sy, (|p| p.y, |p| p.x)) };
        debug_assert!(sign == 1 || sign == -1);
        // First vertex index whose coordinate has reached `c` in walk order.
        let start =
            if sign == 1 { pts.partition_point(|p| coord(p) < c) } else { pts.partition_point(|p| coord(p) > c) };
        let mut lo = Coord::MAX;
        let mut hi = Coord::MIN;
        let mut found = false;
        let mut i = start.saturating_sub(1);
        while i + 1 < n {
            let (a, b) = (&pts[i], &pts[i + 1]);
            let (slo, shi) = (coord(a).min(coord(b)), coord(a).max(coord(b)));
            if (sign == 1 && slo > c) || (sign == -1 && shi < c) {
                break; // all later segments lie strictly beyond the line
            }
            if slo <= c && c <= shi {
                found = true;
                if coord(a) == coord(b) {
                    lo = lo.min(perp(a).min(perp(b)));
                    hi = hi.max(perp(a).max(perp(b)));
                } else {
                    lo = lo.min(perp(a));
                    hi = hi.max(perp(a));
                }
            }
            i += 1;
        }
        if found {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// All points of the chain lying on the vertical line `x = c` restricted
    /// to chain vertices and segment crossings (i.e. the canonical crossing
    /// point).  Used when discretising a separator chain by coordinate grid
    /// lines.
    pub fn points_at_x(&self, c: Coord) -> Vec<Point> {
        let mut out = Vec::new();
        if let Some((lo, hi)) = self.intersect_vertical(c) {
            out.push(Point::new(c, lo));
            if hi != lo {
                out.push(Point::new(c, hi));
            }
        }
        out
    }

    /// Same as [`Chain::points_at_x`] for horizontal grid lines.
    pub fn points_at_y(&self, c: Coord) -> Vec<Point> {
        let mut out = Vec::new();
        if let Some((lo, hi)) = self.intersect_horizontal(c) {
            out.push(Point::new(lo, c));
            if hi != lo {
                out.push(Point::new(hi, c));
            }
        }
        out
    }
}

/// Is point `p` on the closed axis-parallel segment `a`–`b`?
pub fn on_segment(a: Point, b: Point, p: Point) -> bool {
    if a.x == b.x {
        p.x == a.x && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
    } else {
        p.y == a.y && p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn stair() -> Chain {
        // increasing staircase from (0,0) up-right to (6,6)
        Chain::new(vec![pt(0, 0), pt(2, 0), pt(2, 3), pt(5, 3), pt(5, 6), pt(6, 6)])
    }

    #[test]
    fn construction_merges_collinear() {
        let c = Chain::new(vec![pt(0, 0), pt(1, 0), pt(3, 0), pt(3, 2), pt(3, 5)]);
        assert_eq!(c.points(), &[pt(0, 0), pt(3, 0), pt(3, 5)]);
        assert_eq!(c.num_segments(), 2);
        assert_eq!(c.length(), 8);
    }

    #[test]
    #[should_panic]
    fn construction_rejects_diagonal() {
        Chain::new(vec![pt(0, 0), pt(1, 1)]);
    }

    #[test]
    fn staircase_classification() {
        let c = stair();
        assert!(c.is_staircase());
        assert_eq!(c.staircase_monotonicity(), Some(Monotone::Increasing));
        let dec = Chain::new(vec![pt(0, 5), pt(3, 5), pt(3, 1), pt(7, 1)]);
        assert_eq!(dec.staircase_monotonicity(), Some(Monotone::Decreasing));
        let zig = Chain::new(vec![pt(0, 0), pt(2, 0), pt(2, 2), pt(4, 2), pt(4, 0)]);
        assert!(!zig.is_staircase());
        assert!(zig.is_x_monotone());
        assert!(!zig.is_y_monotone());
    }

    #[test]
    fn length_equals_l1_for_staircase() {
        let c = stair();
        assert_eq!(c.length(), c.first().l1(c.last()));
    }

    #[test]
    fn contains_and_arc_position() {
        let c = stair();
        assert!(c.contains_point(pt(2, 1)));
        assert!(c.contains_point(pt(4, 3)));
        assert!(!c.contains_point(pt(3, 4)));
        assert_eq!(c.arc_position(pt(0, 0)), Some(0));
        assert_eq!(c.arc_position(pt(2, 0)), Some(2));
        assert_eq!(c.arc_position(pt(2, 3)), Some(5));
        assert_eq!(c.arc_position(pt(4, 3)), Some(7));
        assert_eq!(c.arc_position(pt(3, 4)), None);
        assert_eq!(c.walk_distance(pt(2, 0), pt(4, 3)), Some(5));
    }

    #[test]
    fn walk_distance_is_l1_on_staircase() {
        let c = stair();
        let on = [pt(0, 0), pt(2, 2), pt(4, 3), pt(5, 5), pt(6, 6)];
        for &p in &on {
            for &q in &on {
                assert_eq!(c.walk_distance(p, q), Some(p.l1(q)), "{:?} {:?}", p, q);
            }
        }
    }

    #[test]
    fn side_tests() {
        let c = stair();
        assert_eq!(c.side_of(pt(0, 5)), Side::Above);
        assert_eq!(c.side_of(pt(1, 2)), Side::Above);
        assert_eq!(c.side_of(pt(4, 1)), Side::Below);
        assert_eq!(c.side_of(pt(6, 0)), Side::Below);
        assert_eq!(c.side_of(pt(2, 2)), Side::On);
        assert_eq!(c.side_of(pt(3, 3)), Side::On);
        // beyond the ends in x
        assert_eq!(c.side_of(pt(-5, 3)), Side::Above);
        assert_eq!(c.side_of(pt(-5, -3)), Side::Below);
        assert_eq!(c.side_of(pt(10, 2)), Side::Below);
        assert_eq!(c.side_of(pt(10, 9)), Side::Above);
    }

    #[test]
    fn line_intersections() {
        let c = stair();
        assert_eq!(c.intersect_vertical(2), Some((0, 3)));
        assert_eq!(c.intersect_vertical(4), Some((3, 3)));
        assert_eq!(c.intersect_vertical(-1), None);
        assert_eq!(c.intersect_horizontal(3), Some((2, 5)));
        assert_eq!(c.intersect_horizontal(5), Some((5, 5)));
        assert_eq!(c.intersect_horizontal(10), None);
        assert_eq!(c.points_at_x(2), vec![pt(2, 0), pt(2, 3)]);
        assert_eq!(c.points_at_y(3), vec![pt(2, 3), pt(5, 3)]);
    }

    /// A long increasing staircase exercising the binary-search path of the
    /// line intersections (more than `STAIR_SEARCH_CUTOFF` vertices, with
    /// flat runs of varying width).
    fn long_stair(steps: i64) -> Chain {
        let mut pts = Vec::new();
        let (mut x, mut y) = (0i64, 0i64);
        for i in 0..steps {
            pts.push(pt(x, y));
            x += 1 + (i % 3);
            pts.push(pt(x, y));
            y += 1 + ((i + 1) % 2);
        }
        pts.push(pt(x, y));
        Chain::new(pts)
    }

    #[test]
    fn binary_search_intersections_match_linear_on_long_staircases() {
        for chain in [long_stair(20), long_stair(20).reversed(), long_stair(7)] {
            assert!(chain.is_staircase());
            let b = chain.points().iter().fold(Rect::new(0, 0, 1, 1), |r, p| {
                Rect::new(r.xmin.min(p.x), r.ymin.min(p.y), r.xmax.max(p.x), r.ymax.max(p.y))
            });
            for c in (b.xmin - 2)..=(b.xmax + 2) {
                assert_eq!(chain.intersect_vertical(c), chain.intersect_vertical_linear(c), "x={c}");
            }
            for c in (b.ymin - 2)..=(b.ymax + 2) {
                assert_eq!(chain.intersect_horizontal(c), chain.intersect_horizontal_linear(c), "y={c}");
            }
        }
        // decreasing staircase (x increasing, y decreasing)
        let dec = Chain::new(
            (0..15)
                .flat_map(|i| [pt(2 * i, -3 * i), pt(2 * i + 1, -3 * i), pt(2 * i + 1, -3 * (i + 1))])
                .collect::<Vec<_>>(),
        );
        assert!(dec.is_staircase());
        for c in -50..35 {
            assert_eq!(dec.intersect_vertical(c), dec.intersect_vertical_linear(c), "x={c}");
            assert_eq!(dec.intersect_horizontal(c), dec.intersect_horizontal_linear(c), "y={c}");
        }
    }

    #[test]
    fn non_monotone_chains_use_the_linear_scan() {
        // a long zig-zag is x-monotone but not a staircase; intersections
        // must still be exact (linear fallback)
        let zig: Vec<Point> = (0..12).flat_map(|i| [pt(3 * i, (i % 2) * 4), pt(3 * i + 3, (i % 2) * 4)]).collect();
        let chain = Chain::new(zig);
        assert!(chain.is_x_monotone() && !chain.is_y_monotone() && !chain.is_staircase());
        assert_eq!(chain.intersect_horizontal(0), chain.intersect_horizontal_linear(0));
        assert_eq!(chain.intersect_vertical(7), chain.intersect_vertical_linear(7));
        assert_eq!(chain.intersect_vertical(4), Some((4, 4)));
    }

    #[test]
    fn monotonicity_cache_survives_reversal_and_concat() {
        let c = long_stair(12);
        assert!(c.is_staircase());
        assert_eq!(c.staircase_monotonicity(), Some(Monotone::Increasing));
        let r = c.reversed();
        assert!(r.is_staircase());
        assert!(r.is_x_monotone() && r.is_y_monotone());
        let d = Chain::new(vec![c.last(), pt(c.last().x + 4, c.last().y)]);
        let cat = c.concat(&d);
        assert!(cat.is_staircase());
        let zig = Chain::new(vec![pt(0, 0), pt(2, 0), pt(2, 2), pt(4, 2), pt(4, 0)]);
        assert!(!zig.reversed().is_y_monotone());
        assert!(zig.reversed().is_x_monotone());
    }

    #[test]
    fn concat_and_reverse() {
        let a = Chain::new(vec![pt(0, 0), pt(0, 3)]);
        let b = Chain::new(vec![pt(0, 3), pt(4, 3)]);
        let c = a.concat(&b);
        assert_eq!(c.points(), &[pt(0, 0), pt(0, 3), pt(4, 3)]);
        assert_eq!(c.reversed().first(), pt(4, 3));
        assert_eq!(c.reversed().length(), c.length());
    }
}
