//! Axis-parallel rectangles and sets of pairwise-disjoint rectangular
//! obstacles (the set `R` of the paper, Section 2).

use crate::point::{Coord, Dir, Dist, Point};
use serde::{Deserialize, Serialize};

/// A closed axis-parallel rectangle `[xmin, xmax] x [ymin, ymax]`.
///
/// Obstacles are *opaque for visibility* and *forbidden for paths* only in
/// their open interior: paths may run along obstacle boundaries (this is the
/// convention of the paper: a separator "may run along an obstacle's
/// boundary").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge coordinate.
    pub xmin: Coord,
    /// Bottom edge coordinate.
    pub ymin: Coord,
    /// Right edge coordinate.
    pub xmax: Coord,
    /// Top edge coordinate.
    pub ymax: Coord,
}

impl Rect {
    /// Create a rectangle.  Panics if it is degenerate (zero width/height),
    /// since the paper assumes proper rectangles.
    pub fn new(xmin: Coord, ymin: Coord, xmax: Coord, ymax: Coord) -> Self {
        assert!(xmin < xmax && ymin < ymax, "degenerate rectangle");
        Rect { xmin, ymin, xmax, ymax }
    }

    /// Horizontal extent `xmax - xmin`.
    pub fn width(&self) -> Coord {
        self.xmax - self.xmin
    }

    /// Vertical extent `ymax - ymin`.
    pub fn height(&self) -> Coord {
        self.ymax - self.ymin
    }

    /// Half-perimeter (useful as a size measure in workloads).
    pub fn half_perimeter(&self) -> Coord {
        self.width() + self.height()
    }

    /// Lower-left corner.
    pub fn ll(&self) -> Point {
        Point::new(self.xmin, self.ymin)
    }
    /// Lower-right corner.
    pub fn lr(&self) -> Point {
        Point::new(self.xmax, self.ymin)
    }
    /// Upper-left corner.
    pub fn ul(&self) -> Point {
        Point::new(self.xmin, self.ymax)
    }
    /// Upper-right corner.
    pub fn ur(&self) -> Point {
        Point::new(self.xmax, self.ymax)
    }

    /// The four corners in the order LL, LR, UR, UL (counterclockwise).
    pub fn corners(&self) -> [Point; 4] {
        [self.ll(), self.lr(), self.ur(), self.ul()]
    }

    /// Center point, rounded down.
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) / 2, (self.ymin + self.ymax) / 2)
    }

    /// Closed containment.
    pub fn contains_closed(&self, p: Point) -> bool {
        self.xmin <= p.x && p.x <= self.xmax && self.ymin <= p.y && p.y <= self.ymax
    }

    /// Open (strict interior) containment.
    pub fn contains_open(&self, p: Point) -> bool {
        self.xmin < p.x && p.x < self.xmax && self.ymin < p.y && p.y < self.ymax
    }

    /// Is `p` on the boundary?
    pub fn on_boundary(&self, p: Point) -> bool {
        self.contains_closed(p) && !self.contains_open(p)
    }

    /// Do the open interiors of `self` and `other` intersect?
    pub fn interiors_intersect(&self, other: &Rect) -> bool {
        self.xmin < other.xmax && other.xmin < self.xmax && self.ymin < other.ymax && other.ymin < self.ymax
    }

    /// Does the *open* axis-parallel segment from `a` to `b` pass through the
    /// open interior of this rectangle?  (Running along the boundary does not
    /// count.)  `a` and `b` must share a coordinate.
    pub fn blocks_segment(&self, a: Point, b: Point) -> bool {
        if a == b {
            return false;
        }
        if a.x == b.x {
            // vertical segment
            let (lo, hi) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
            self.xmin < a.x && a.x < self.xmax && lo.max(self.ymin) < hi.min(self.ymax)
        } else {
            debug_assert_eq!(a.y, b.y, "segment must be axis-parallel");
            let (lo, hi) = if a.x <= b.x { (a.x, b.x) } else { (b.x, a.x) };
            self.ymin < a.y && a.y < self.ymax && lo.max(self.xmin) < hi.min(self.xmax)
        }
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xmin: self.xmin.min(other.xmin),
            ymin: self.ymin.min(other.ymin),
            xmax: self.xmax.max(other.xmax),
            ymax: self.ymax.max(other.ymax),
        }
    }

    /// Expand in every direction by `margin` (must keep the rectangle valid).
    pub fn expand(&self, margin: Coord) -> Rect {
        Rect::new(self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin)
    }

    /// The corner of the rectangle in the given quadrant direction pair,
    /// e.g. `(Dir::North, Dir::East)` gives the upper-right corner.
    pub fn corner(&self, vertical: Dir, horizontal: Dir) -> Point {
        let x = if horizontal == Dir::East { self.xmax } else { self.xmin };
        let y = if vertical == Dir::North { self.ymax } else { self.ymin };
        Point::new(x, y)
    }

    /// L1 distance from a point to the closed rectangle (0 if inside).
    pub fn l1_distance_to(&self, p: Point) -> Dist {
        let dx = if p.x < self.xmin {
            self.xmin - p.x
        } else if p.x > self.xmax {
            p.x - self.xmax
        } else {
            0
        };
        let dy = if p.y < self.ymin {
            self.ymin - p.y
        } else if p.y > self.ymax {
            p.y - self.ymax
        } else {
            0
        };
        dx + dy
    }
}

/// Identifier of an obstacle within an [`ObstacleSet`].
pub type RectId = usize;

/// A batched scene edit: rectangles to insert plus obstacle ids to remove.
///
/// Removals name ids of the *current* epoch's set.  Applying a delta
/// compacts ids: survivors keep their relative order (so a surviving
/// obstacle's new id is its old id minus the removed ids below it) and the
/// inserted rectangles are appended in delta order.  A "move" is one delta
/// holding both the removal of the old id and the insertion of the new
/// geometry.  Serialisable: the `rsp-server` protocol ships deltas on the
/// wire (`UpdateScene`, protocol v4).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SceneDelta {
    /// Rectangles added to the scene (appended after the survivors).
    pub insert: Vec<Rect>,
    /// Ids (in the pre-delta set) of obstacles removed from the scene.
    pub remove: Vec<RectId>,
}

impl SceneDelta {
    /// A delta that only inserts.
    pub fn inserting(rects: Vec<Rect>) -> Self {
        SceneDelta { insert: rects, remove: Vec::new() }
    }

    /// A delta that only removes.
    pub fn removing(ids: Vec<RectId>) -> Self {
        SceneDelta { insert: Vec::new(), remove: ids }
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.remove.is_empty()
    }
}

/// Why a [`SceneDelta`] could not be applied to an [`ObstacleSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaError {
    /// A removal id is not an id of the current set.
    RemoveOutOfRange {
        /// The offending id.
        id: RectId,
        /// Number of obstacles in the set the delta was applied to.
        len: usize,
    },
    /// The same id appears twice in the removal list.
    DuplicateRemove {
        /// The repeated id.
        id: RectId,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::RemoveOutOfRange { id, len } => {
                write!(f, "delta removes obstacle {id}, but the scene has only {len} obstacles")
            }
            DeltaError::DuplicateRemove { id } => write!(f, "delta removes obstacle {id} twice"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying a [`SceneDelta`]: the edited set plus everything a
/// consumer needs to *reuse* work computed for the old set — the id remap in
/// both directions and the list of rectangles whose interior occupancy
/// changed (the removed geometries and the inserted ones).  Distances,
/// ray-shooting slabs and escape staircases that provably avoid every edited
/// rectangle are unaffected by the delta; the dirty-region machinery in
/// `rsp-core` builds exactly on this contract.
#[derive(Clone, Debug)]
pub struct AppliedDelta {
    /// The edited obstacle set (survivors in order, then inserts).
    pub obstacles: ObstacleSet,
    /// Old id → new id (`None` for removed obstacles).
    pub old_to_new: Vec<Option<RectId>>,
    /// New id → old id (`None` for inserted obstacles).
    pub new_to_old: Vec<Option<RectId>>,
    /// The closed rectangles whose interiors changed occupancy: removed
    /// geometries followed by inserted ones.
    pub edited: Vec<Rect>,
    /// New ids `>= first_inserted` are inserted obstacles.
    pub first_inserted: usize,
}

impl AppliedDelta {
    /// Check the *edited* set for overlapping interiors in `O(k·m)` (each
    /// inserted rectangle against every other rectangle), relying on the
    /// base set having been disjoint — removals cannot create an overlap.
    /// Ids in the returned violation are in the new set's numbering.
    pub fn validate_disjoint_incremental(&self) -> Result<(), DisjointnessViolation> {
        let rects = self.obstacles.rects();
        for i in self.first_inserted..rects.len() {
            for j in 0..i {
                if rects[i].interiors_intersect(&rects[j]) {
                    return Err(DisjointnessViolation {
                        first: j,
                        second: i,
                        first_rect: rects[j],
                        second_rect: rects[i],
                    });
                }
            }
        }
        Ok(())
    }
}

/// Evidence that two obstacles violate the paper's disjointness assumption:
/// the offending pair of rectangle ids together with the rectangles
/// themselves, as reported by [`ObstacleSet::validate_disjoint`].
/// Serialisable so the `rsp-server` wire protocol can ship the evidence to
/// remote clients intact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisjointnessViolation {
    /// Index of the first rectangle of the overlapping pair.
    pub first: RectId,
    /// Index of the second rectangle of the overlapping pair.
    pub second: RectId,
    /// The first rectangle.
    pub first_rect: Rect,
    /// The second rectangle.
    pub second_rect: Rect,
}

impl std::fmt::Display for DisjointnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = &self.first_rect;
        let b = &self.second_rect;
        write!(
            f,
            "obstacles {} and {} have overlapping interiors: \
             [{},{}]x[{},{}] intersects [{},{}]x[{},{}]",
            self.first, self.second, a.xmin, a.xmax, a.ymin, a.ymax, b.xmin, b.xmax, b.ymin, b.ymax
        )
    }
}

impl std::error::Error for DisjointnessViolation {}

/// A set of pairwise interior-disjoint rectangular obstacles — the input `R`
/// of the paper.  The vertex set `V_R` has `4n` points.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObstacleSet {
    rects: Vec<Rect>,
}

impl ObstacleSet {
    /// Build an obstacle set.  Does not validate disjointness (call
    /// [`ObstacleSet::validate_disjoint`] when the input is untrusted).
    pub fn new(rects: Vec<Rect>) -> Self {
        ObstacleSet { rects }
    }

    /// Empty obstacle set.
    pub fn empty() -> Self {
        ObstacleSet { rects: Vec::new() }
    }

    /// Number of obstacles (`n`).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when the set holds no obstacles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Access the underlying rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Iterate over the rectangles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Rect> {
        self.rects.iter()
    }

    /// Obstacle by id.
    pub fn rect(&self, id: RectId) -> Rect {
        self.rects[id]
    }

    /// Check that all rectangles have pairwise disjoint interiors.  On
    /// failure the error names the offending pair (ids and rectangles).
    /// `O(n^2)` — intended for input validation and tests, not hot paths.
    pub fn validate_disjoint(&self) -> Result<(), DisjointnessViolation> {
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].interiors_intersect(&self.rects[j]) {
                    return Err(DisjointnessViolation {
                        first: i,
                        second: j,
                        first_rect: self.rects[i],
                        second_rect: self.rects[j],
                    });
                }
            }
        }
        Ok(())
    }

    /// The `4n` obstacle vertices `V_R`, in obstacle order
    /// (LL, LR, UR, UL per obstacle).
    pub fn vertices(&self) -> Vec<Point> {
        let mut v = Vec::with_capacity(4 * self.rects.len());
        for r in &self.rects {
            v.extend_from_slice(&r.corners());
        }
        v
    }

    /// Obstacle id owning vertex index `i` of [`ObstacleSet::vertices`].
    pub fn vertex_owner(&self, vertex_index: usize) -> RectId {
        vertex_index / 4
    }

    /// All distinct x coordinates of obstacle vertices, sorted.
    pub fn xs(&self) -> Vec<Coord> {
        let mut xs: Vec<Coord> = self.rects.iter().flat_map(|r| [r.xmin, r.xmax]).collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// All distinct y coordinates of obstacle vertices, sorted.
    pub fn ys(&self) -> Vec<Coord> {
        let mut ys: Vec<Coord> = self.rects.iter().flat_map(|r| [r.ymin, r.ymax]).collect();
        ys.sort_unstable();
        ys.dedup();
        ys
    }

    /// Bounding box of all obstacles; `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// Is `p` strictly inside some obstacle?  Returns the obstacle id.
    ///
    /// `O(n)` reference scan; query hot paths use the logarithmic
    /// [`ObstacleIndex`](crate::ObstacleIndex) instead (same answers,
    /// property-pinned).
    pub fn containing_obstacle(&self, p: Point) -> Option<RectId> {
        self.rects.iter().position(|r| r.contains_open(p))
    }

    /// Is the open axis-parallel segment `a`–`b` free of obstacle interiors?
    ///
    /// `O(n)` reference scan; query hot paths use
    /// [`ObstacleIndex::segment_clear`](crate::ObstacleIndex::segment_clear),
    /// which pins the same semantics behind one containment probe plus one
    /// ray shot.
    pub fn segment_clear(&self, a: Point, b: Point) -> bool {
        self.rects.iter().all(|r| !r.blocks_segment(a, b))
    }

    /// Restrict to a subset of obstacle ids (preserving order).
    pub fn subset(&self, ids: &[RectId]) -> ObstacleSet {
        ObstacleSet::new(ids.iter().map(|&i| self.rects[i]).collect())
    }

    /// Apply a [`SceneDelta`]: drop the removed ids, keep the survivors in
    /// their relative order, append the inserted rectangles.  Fails (without
    /// building anything) when a removal id is out of range or repeated.
    /// Does not validate disjointness of the result — callers holding a
    /// validated base set use
    /// [`AppliedDelta::validate_disjoint_incremental`], which is `O(k·m)`
    /// instead of `O(m^2)`.
    pub fn apply_delta(&self, delta: &SceneDelta) -> Result<AppliedDelta, DeltaError> {
        let n_old = self.rects.len();
        let mut removed = vec![false; n_old];
        for &id in &delta.remove {
            if id >= n_old {
                return Err(DeltaError::RemoveOutOfRange { id, len: n_old });
            }
            if removed[id] {
                return Err(DeltaError::DuplicateRemove { id });
            }
            removed[id] = true;
        }
        let n_new = n_old - delta.remove.len() + delta.insert.len();
        let mut rects = Vec::with_capacity(n_new);
        let mut old_to_new = Vec::with_capacity(n_old);
        let mut new_to_old = Vec::with_capacity(n_new);
        let mut edited = Vec::with_capacity(delta.remove.len() + delta.insert.len());
        for (id, &r) in self.rects.iter().enumerate() {
            if removed[id] {
                old_to_new.push(None);
                edited.push(r);
            } else {
                old_to_new.push(Some(rects.len()));
                new_to_old.push(Some(id));
                rects.push(r);
            }
        }
        let first_inserted = rects.len();
        for &r in &delta.insert {
            new_to_old.push(None);
            edited.push(r);
            rects.push(r);
        }
        Ok(AppliedDelta { obstacles: ObstacleSet::new(rects), old_to_new, new_to_old, edited, first_inserted })
    }

    /// A stable, order-independent 64-bit hash of the scene geometry.
    ///
    /// Each rectangle is hashed independently with FNV-1a over the
    /// little-endian bytes of its four coordinates; the per-rectangle hashes
    /// are then combined commutatively (wrapping sum and xor, mixed with the
    /// rectangle count in a final FNV-1a pass), so two sets holding the same
    /// rectangles in different insertion orders hash identically.  Used by
    /// `rsp-server` to key session caches — the hash is part of the wire
    /// contract and must stay stable across versions (pinned by a unit test).
    pub fn scene_hash(&self) -> u64 {
        fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
            let mut h = h;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let (mut sum, mut xor) = (0u64, 0u64);
        for r in &self.rects {
            let mut h = OFFSET;
            for c in [r.xmin, r.ymin, r.xmax, r.ymax] {
                h = fnv1a(h, &c.to_le_bytes());
            }
            sum = sum.wrapping_add(h);
            xor ^= h;
        }
        let mut out = fnv1a(OFFSET, &(self.rects.len() as u64).to_le_bytes());
        out = fnv1a(out, &sum.to_le_bytes());
        fnv1a(out, &xor.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    fn r(a: Coord, b: Coord, c: Coord, d: Coord) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn containment_and_boundary() {
        let rect = r(0, 0, 10, 4);
        assert!(rect.contains_closed(pt(0, 0)));
        assert!(!rect.contains_open(pt(0, 0)));
        assert!(rect.contains_open(pt(5, 2)));
        assert!(rect.on_boundary(pt(10, 4)));
        assert!(rect.on_boundary(pt(3, 0)));
        assert!(!rect.on_boundary(pt(3, 1)));
        assert!(!rect.contains_closed(pt(11, 2)));
    }

    #[test]
    fn corners_and_dims() {
        let rect = r(1, 2, 5, 7);
        assert_eq!(rect.ll(), pt(1, 2));
        assert_eq!(rect.ur(), pt(5, 7));
        assert_eq!(rect.width(), 4);
        assert_eq!(rect.height(), 5);
        assert_eq!(rect.corners().len(), 4);
        assert_eq!(rect.corner(Dir::North, Dir::West), pt(1, 7));
        assert_eq!(rect.corner(Dir::South, Dir::East), pt(5, 2));
    }

    #[test]
    fn interior_intersection() {
        let a = r(0, 0, 4, 4);
        let b = r(4, 0, 8, 4); // shares an edge only
        let c = r(3, 3, 6, 6); // overlaps a
        assert!(!a.interiors_intersect(&b));
        assert!(a.interiors_intersect(&c));
        assert!(c.interiors_intersect(&a));
    }

    #[test]
    fn segment_blocking() {
        let rect = r(2, 2, 6, 6);
        // vertical segment through the interior
        assert!(rect.blocks_segment(pt(4, 0), pt(4, 10)));
        // vertical segment along the boundary is not blocked
        assert!(!rect.blocks_segment(pt(2, 0), pt(2, 10)));
        assert!(!rect.blocks_segment(pt(6, 3), pt(6, 5)));
        // horizontal segment entirely left of the rect
        assert!(!rect.blocks_segment(pt(-3, 4), pt(1, 4)));
        // horizontal segment crossing the interior
        assert!(rect.blocks_segment(pt(0, 4), pt(10, 4)));
        // horizontal segment that only touches a corner point
        assert!(!rect.blocks_segment(pt(0, 2), pt(10, 2)));
        // degenerate segment
        assert!(!rect.blocks_segment(pt(4, 4), pt(4, 4)));
    }

    #[test]
    fn l1_distance_to_rect() {
        let rect = r(0, 0, 4, 4);
        assert_eq!(rect.l1_distance_to(pt(2, 2)), 0);
        assert_eq!(rect.l1_distance_to(pt(6, 2)), 2);
        assert_eq!(rect.l1_distance_to(pt(6, 7)), 5);
        assert_eq!(rect.l1_distance_to(pt(-1, -1)), 2);
    }

    #[test]
    fn obstacle_set_basics() {
        let set = ObstacleSet::new(vec![r(0, 0, 2, 2), r(4, 4, 6, 6)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.vertices().len(), 8);
        assert_eq!(set.xs(), vec![0, 2, 4, 6]);
        assert_eq!(set.ys(), vec![0, 2, 4, 6]);
        assert_eq!(set.bbox(), Some(r(0, 0, 6, 6)));
        assert!(set.validate_disjoint().is_ok());
        assert_eq!(set.containing_obstacle(pt(1, 1)), Some(0));
        assert_eq!(set.containing_obstacle(pt(3, 3)), None);
        assert!(set.segment_clear(pt(0, 3), pt(10, 3)));
        assert!(!set.segment_clear(pt(0, 5), pt(10, 5)));
        assert_eq!(set.vertex_owner(5), 1);
    }

    #[test]
    fn obstacle_set_detects_overlap() {
        let set = ObstacleSet::new(vec![r(0, 0, 4, 4), r(3, 3, 8, 8)]);
        let err = set.validate_disjoint().unwrap_err();
        assert_eq!((err.first, err.second), (0, 1));
        assert_eq!(err.first_rect, r(0, 0, 4, 4));
        assert_eq!(err.second_rect, r(3, 3, 8, 8));
        let msg = err.to_string();
        assert!(msg.contains("obstacles 0 and 1"), "{msg}");
        assert!(msg.contains("[0,4]x[0,4]"), "{msg}");
        assert!(msg.contains("[3,8]x[3,8]"), "{msg}");
    }

    #[test]
    fn subset_preserves_order() {
        let set = ObstacleSet::new(vec![r(0, 0, 1, 1), r(2, 2, 3, 3), r(4, 4, 5, 5)]);
        let sub = set.subset(&[2, 0]);
        assert_eq!(sub.rect(0), r(4, 4, 5, 5));
        assert_eq!(sub.rect(1), r(0, 0, 1, 1));
    }

    #[test]
    fn scene_hash_is_order_independent_and_pinned() {
        let rects = vec![r(0, 0, 2, 2), r(4, 4, 6, 6), r(-3, 1, -1, 9)];
        let base = ObstacleSet::new(rects.clone()).scene_hash();
        // Every permutation of the insertion order hashes identically.
        let perms: [[usize; 3]; 5] = [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for p in perms {
            let shuffled = ObstacleSet::new(p.iter().map(|&i| rects[i]).collect());
            assert_eq!(shuffled.scene_hash(), base, "order {p:?}");
        }
        // Geometry changes change the hash; so does multiplicity (the sum
        // component keeps duplicate rectangles from xor-cancelling).
        let moved = ObstacleSet::new(vec![r(0, 0, 2, 2), r(4, 4, 6, 6), r(-3, 1, -1, 10)]);
        assert_ne!(moved.scene_hash(), base);
        let doubled = ObstacleSet::new(vec![r(0, 0, 2, 2), r(0, 0, 2, 2)]);
        assert_ne!(doubled.scene_hash(), ObstacleSet::new(vec![r(0, 0, 2, 2)]).scene_hash());
        // The hash is a wire-level cache key: pin the exact value so an
        // accidental algorithm change is caught loudly.
        assert_eq!(ObstacleSet::new(vec![r(0, 0, 2, 2)]).scene_hash(), PINNED_SINGLE);
        assert_eq!(base, PINNED_TRIPLE);
        assert_eq!(ObstacleSet::empty().scene_hash(), PINNED_EMPTY);
    }

    // Pinned constants for `scene_hash_is_order_independent_and_pinned`.
    const PINNED_SINGLE: u64 = 1049604639078050488;
    const PINNED_TRIPLE: u64 = 11593469030792053122;
    const PINNED_EMPTY: u64 = 9354609568656401157;

    #[test]
    fn empty_set() {
        let set = ObstacleSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.bbox(), None);
        assert!(set.segment_clear(pt(0, 0), pt(100, 0)));
    }

    #[test]
    fn apply_delta_compacts_ids_and_reports_edits() {
        let set = ObstacleSet::new(vec![r(0, 0, 1, 1), r(2, 2, 3, 3), r(4, 4, 5, 5)]);
        let delta = SceneDelta { insert: vec![r(6, 6, 7, 7)], remove: vec![1] };
        assert!(!delta.is_empty());
        let applied = set.apply_delta(&delta).unwrap();
        assert_eq!(applied.obstacles.rects(), &[r(0, 0, 1, 1), r(4, 4, 5, 5), r(6, 6, 7, 7)]);
        assert_eq!(applied.old_to_new, vec![Some(0), None, Some(1)]);
        assert_eq!(applied.new_to_old, vec![Some(0), Some(2), None]);
        assert_eq!(applied.edited, vec![r(2, 2, 3, 3), r(6, 6, 7, 7)]);
        assert_eq!(applied.first_inserted, 2);
        assert!(applied.validate_disjoint_incremental().is_ok());
        // Hash agrees with building the edited set from scratch.
        assert_eq!(applied.obstacles.scene_hash(), ObstacleSet::new(applied.obstacles.rects().to_vec()).scene_hash());
    }

    #[test]
    fn apply_delta_rejects_bad_removals() {
        let set = ObstacleSet::new(vec![r(0, 0, 1, 1)]);
        assert_eq!(
            set.apply_delta(&SceneDelta::removing(vec![3])).err(),
            Some(DeltaError::RemoveOutOfRange { id: 3, len: 1 })
        );
        assert_eq!(
            set.apply_delta(&SceneDelta::removing(vec![0, 0])).err(),
            Some(DeltaError::DuplicateRemove { id: 0 })
        );
        let msg = DeltaError::RemoveOutOfRange { id: 3, len: 1 }.to_string();
        assert!(msg.contains("obstacle 3"), "{msg}");
    }

    #[test]
    fn incremental_disjointness_names_the_new_pair() {
        let set = ObstacleSet::new(vec![r(0, 0, 4, 4), r(10, 10, 12, 12)]);
        let applied = set.apply_delta(&SceneDelta::inserting(vec![r(3, 3, 8, 8)])).unwrap();
        let v = applied.validate_disjoint_incremental().unwrap_err();
        assert_eq!((v.first, v.second), (0, 2));
        assert_eq!(v.second_rect, r(3, 3, 8, 8));
        // Inserted rectangles are also checked against each other.
        let applied = set.apply_delta(&SceneDelta::inserting(vec![r(20, 20, 24, 24), r(23, 23, 26, 26)])).unwrap();
        let v = applied.validate_disjoint_incremental().unwrap_err();
        assert_eq!((v.first, v.second), (2, 3));
    }

    #[test]
    fn insert_then_remove_restores_the_scene_hash() {
        let set = ObstacleSet::new(vec![r(0, 0, 2, 2), r(4, 4, 6, 6)]);
        let base = set.scene_hash();
        let grown = set.apply_delta(&SceneDelta::inserting(vec![r(10, 0, 12, 2)])).unwrap().obstacles;
        assert_ne!(grown.scene_hash(), base);
        let back = grown.apply_delta(&SceneDelta::removing(vec![2])).unwrap().obstacles;
        assert_eq!(back.scene_hash(), base, "insert-then-remove must round-trip the session key");
    }
}
