//! Rectilinearly convex regions with clear boundaries — the regions `Q` of
//! Sections 4–6 of the paper (envelopes `Env(R')`, the polygon `P`, and the
//! halves produced by cutting a region with a staircase separator).
//!
//! A region is stored as a simple rectilinear polygon (counterclockwise list
//! of vertices, axis-parallel edges).  The divide-and-conquer of Section 5
//! only ever produces *rectilinearly convex* regions: the root is a bounding
//! rectangle and every cut is by a staircase (a chain monotone in both axes),
//! and cutting a rectilinearly convex region along a staircase yields two
//! rectilinearly convex regions.

use crate::chain::{on_segment, Chain};
use crate::point::{Coord, Point};
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A simple rectilinear polygon with counterclockwise orientation, used as a
/// convex connected region whose boundary is clear of obstacle interiors.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StairRegion {
    verts: Vec<Point>,
}

impl StairRegion {
    /// Build a region from a vertex list (closed implicitly; the last vertex
    /// connects back to the first).  Collinear and duplicate vertices are
    /// removed and the orientation is normalised to counterclockwise.
    pub fn new(verts: Vec<Point>) -> Self {
        let cleaned = clean_polygon(verts);
        assert!(cleaned.len() >= 4, "a rectilinear region needs at least 4 vertices");
        let mut region = StairRegion { verts: cleaned };
        if region.signed_area2() < 0 {
            region.verts.reverse();
            region.verts = clean_polygon(region.verts.clone());
        }
        region
    }

    /// Region that is an axis-aligned rectangle.
    pub fn from_rect(r: Rect) -> Self {
        StairRegion::new(vec![r.ll(), r.lr(), r.ur(), r.ul()])
    }

    /// The vertices, counterclockwise.
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices (the paper's `|Q|`).
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Edges as (start, end) pairs, counterclockwise, including the closing
    /// edge.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.verts.len();
        (0..n).map(move |i| (self.verts[i], self.verts[(i + 1) % n]))
    }

    /// Twice the signed area (positive for counterclockwise orientation).
    pub fn signed_area2(&self) -> i64 {
        let n = self.verts.len();
        let mut acc = 0i64;
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let xmin = self.verts.iter().map(|p| p.x).min().unwrap();
        let xmax = self.verts.iter().map(|p| p.x).max().unwrap();
        let ymin = self.verts.iter().map(|p| p.y).min().unwrap();
        let ymax = self.verts.iter().map(|p| p.y).max().unwrap();
        Rect::new(xmin, ymin, xmax, ymax)
    }

    /// Is `p` on the boundary of the region?
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|(a, b)| on_segment(a, b, p))
    }

    /// Closed containment (boundary counts as inside).
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        // even-odd rule with a ray in +x direction; only vertical edges count,
        // half-open in y so that vertices are not double counted.
        let mut inside = false;
        for (a, b) in self.edges() {
            if a.x == b.x && a.x > p.x {
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                if lo <= p.y && p.y < hi {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Closed containment of a whole rectangle.  For rectilinearly convex
    /// regions it suffices to test the four corners.
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.corners().iter().all(|&c| self.contains(c))
    }

    /// Is the region rectilinearly convex (monotone with respect to both
    /// axes)?  Intended for assertions and tests.
    pub fn is_rectilinearly_convex(&self) -> bool {
        // Work with doubled coordinates so that we can probe strictly between
        // any two distinct integer coordinates.
        let doubled: Vec<Point> = self.verts.iter().map(|p| Point::new(p.x * 2, p.y * 2)).collect();
        let region2 = StairRegion { verts: doubled };
        let mut xs: Vec<Coord> = region2.verts.iter().map(|p| p.x).collect();
        xs.sort_unstable();
        xs.dedup();
        let mut probes = xs.clone();
        probes.extend(xs.windows(2).map(|w| (w[0] + w[1]) / 2));
        for &x in &probes {
            if !region2.vertical_cut_connected(x) {
                return false;
            }
        }
        let mut ys: Vec<Coord> = region2.verts.iter().map(|p| p.y).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut probes = ys.clone();
        probes.extend(ys.windows(2).map(|w| (w[0] + w[1]) / 2));
        for &y in &probes {
            if !region2.horizontal_cut_connected(y) {
                return false;
            }
        }
        true
    }

    fn vertical_cut_connected(&self, x: Coord) -> bool {
        // Collect the y-intervals of the region along the vertical line x.
        let mut ys: Vec<Coord> = Vec::new();
        for (a, b) in self.edges() {
            if a.y == b.y {
                // horizontal edge crossing the line contributes its y once
                let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
                if lo < x && x < hi {
                    ys.push(a.y);
                }
            }
        }
        ys.sort_unstable();
        ys.dedup();
        // Crossings pair up into intervals; connected means at most one pair,
        // modulo vertical boundary edges lying exactly on the line (which we
        // do not probe thanks to the doubling + midpoint scheme when strict).
        ys.len() <= 2
    }

    fn horizontal_cut_connected(&self, y: Coord) -> bool {
        let mut xs: Vec<Coord> = Vec::new();
        for (a, b) in self.edges() {
            if a.x == b.x {
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                if lo < y && y < hi {
                    xs.push(a.x);
                }
            }
        }
        xs.sort_unstable();
        xs.dedup();
        xs.len() <= 2
    }

    /// All boundary points that are vertices or lie on one of the given
    /// vertical (`xs`) / horizontal (`ys`) grid lines, in counterclockwise
    /// circular order starting from vertex 0.  This is the coordinate-grid
    /// boundary discretisation `B'(Q)` used by the divide-and-conquer (a
    /// superset of the paper's visibility-based `B(Q)`, Definition 1).
    pub fn boundary_grid_points(&self, xs: &[Coord], ys: &[Coord]) -> Vec<Point> {
        let mut out: Vec<Point> = Vec::new();
        for (a, b) in self.edges() {
            out.push(a);
            let mut interior: Vec<Point> = Vec::new();
            if a.x == b.x {
                // vertical edge: horizontal grid lines cut it
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                for &y in ys {
                    if lo < y && y < hi {
                        interior.push(Point::new(a.x, y));
                    }
                }
                interior.sort_by_key(|p| if b.y > a.y { p.y } else { -p.y });
            } else {
                let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
                for &x in xs {
                    if lo < x && x < hi {
                        interior.push(Point::new(x, a.y));
                    }
                }
                interior.sort_by_key(|p| if b.x > a.x { p.x } else { -p.x });
            }
            out.extend(interior);
        }
        out.dedup();
        if out.len() > 1 && out.first() == out.last() {
            out.pop();
        }
        out
    }

    /// Locate a boundary point: index `i` such that `p` lies on the edge
    /// `verts[i] -> verts[i+1]`, excluding the end vertex (half-open), so the
    /// location is unique.  `None` if `p` is not on the boundary.
    pub fn locate_on_boundary(&self, p: Point) -> Option<usize> {
        let n = self.verts.len();
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            if p != b && on_segment(a, b, p) {
                return Some(i);
            }
        }
        None
    }

    /// Walk the boundary counterclockwise from `a` to `b` (both on the
    /// boundary), returning the region vertices strictly between them (in
    /// walk order).  Used to assemble the two halves when splitting by a
    /// chain.
    fn boundary_walk(&self, a: Point, b: Point) -> Vec<Point> {
        let n = self.verts.len();
        let ia = self.locate_on_boundary(a).expect("walk start not on boundary");
        let ib = self.locate_on_boundary(b).expect("walk end not on boundary");
        if ia == ib {
            let va = self.verts[ia];
            if va.l1(a) <= va.l1(b) {
                // b is ahead of a on the same edge: no vertices in between
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        let mut k = (ia + 1) % n;
        loop {
            out.push(self.verts[k]);
            if k == ib {
                break;
            }
            k = (k + 1) % n;
        }
        out
    }

    /// Split the region along a chain whose endpoints lie on the boundary and
    /// whose interior lies strictly inside the region.  Returns the two
    /// pieces; the first piece is the one whose boundary traverses the chain
    /// from `chain.first()` to `chain.last()` and then returns along the
    /// region boundary counterclockwise.
    pub fn split_by_chain(&self, chain: &Chain) -> (StairRegion, StairRegion) {
        self.try_split_by_chain(chain).expect("degenerate split")
    }

    /// Like [`StairRegion::split_by_chain`] but returns `None` when the cut
    /// would be degenerate (one of the pieces has no area), instead of
    /// panicking.
    pub fn try_split_by_chain(&self, chain: &Chain) -> Option<(StairRegion, StairRegion)> {
        let p0 = chain.first();
        let p1 = chain.last();
        if !self.on_boundary(p0) || !self.on_boundary(p1) {
            return None;
        }
        let mut poly1: Vec<Point> = chain.points().to_vec();
        poly1.extend(self.boundary_walk(p1, p0));
        let rev = chain.reversed();
        let mut poly2: Vec<Point> = rev.points().to_vec();
        poly2.extend(self.boundary_walk(p0, p1));
        let c1 = clean_polygon(poly1);
        let c2 = clean_polygon(poly2);
        if c1.len() < 4 || c2.len() < 4 {
            return None;
        }
        Some((StairRegion::new(c1), StairRegion::new(c2)))
    }

    /// The total boundary length (perimeter).
    pub fn perimeter(&self) -> i64 {
        self.edges().map(|(a, b)| a.l1(b)).sum()
    }
}

/// Remove repeated points and merge collinear runs from a closed polygon
/// vertex list.
fn clean_polygon(verts: Vec<Point>) -> Vec<Point> {
    let mut v: Vec<Point> = Vec::with_capacity(verts.len());
    for p in verts {
        if v.last() == Some(&p) {
            continue;
        }
        v.push(p);
    }
    while v.len() > 1 && v.first() == v.last() {
        v.pop();
    }
    // merge collinear triples (wrapping)
    loop {
        let n = v.len();
        if n < 3 {
            break;
        }
        let mut removed = false;
        let mut out: Vec<Point> = Vec::with_capacity(n);
        for i in 0..n {
            let prev = v[(i + n - 1) % n];
            let cur = v[i];
            let next = v[(i + 1) % n];
            let collinear = (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
            if collinear {
                removed = true;
            } else {
                out.push(cur);
            }
        }
        v = out;
        if !removed {
            break;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    fn square() -> StairRegion {
        StairRegion::from_rect(Rect::new(0, 0, 10, 10))
    }

    #[test]
    fn construction_normalises_orientation() {
        let cw = StairRegion::new(vec![pt(0, 0), pt(0, 10), pt(10, 10), pt(10, 0)]);
        assert!(cw.signed_area2() > 0);
        assert_eq!(cw.num_vertices(), 4);
    }

    #[test]
    fn construction_removes_collinear() {
        let r = StairRegion::new(vec![pt(0, 0), pt(5, 0), pt(10, 0), pt(10, 10), pt(0, 10)]);
        assert_eq!(r.num_vertices(), 4);
    }

    #[test]
    fn containment() {
        let sq = square();
        assert!(sq.contains(pt(5, 5)));
        assert!(sq.contains(pt(0, 0)));
        assert!(sq.contains(pt(10, 3)));
        assert!(!sq.contains(pt(11, 3)));
        assert!(!sq.contains(pt(5, -1)));
        assert!(sq.on_boundary(pt(0, 7)));
        assert!(!sq.on_boundary(pt(1, 7)));
        assert!(sq.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(!sq.contains_rect(&Rect::new(2, 2, 12, 8)));
    }

    #[test]
    fn l_shape_is_not_rect_convex() {
        let l = StairRegion::new(vec![pt(0, 0), pt(10, 0), pt(10, 4), pt(4, 4), pt(4, 10), pt(0, 10)]);
        // an L-shape is x- and y-monotone?  The L above actually is monotone;
        // build a U-shape which is not.
        assert!(l.is_rectilinearly_convex());
        let u = StairRegion::new(vec![
            pt(0, 0),
            pt(12, 0),
            pt(12, 10),
            pt(8, 10),
            pt(8, 4),
            pt(4, 4),
            pt(4, 10),
            pt(0, 10),
        ]);
        assert!(!u.is_rectilinearly_convex());
        assert!(square().is_rectilinearly_convex());
    }

    #[test]
    fn boundary_grid_points_square() {
        let sq = square();
        let pts = sq.boundary_grid_points(&[3, 7], &[5]);
        // 4 vertices + 2 cuts on bottom + 2 on top + 1 on each side = 10
        assert_eq!(pts.len(), 10);
        // counterclockwise order, starting at (0,0)
        assert_eq!(pts[0], pt(0, 0));
        assert_eq!(pts[1], pt(3, 0));
        assert_eq!(pts[2], pt(7, 0));
        assert_eq!(pts[3], pt(10, 0));
        assert_eq!(pts[4], pt(10, 5));
        assert!(pts.contains(&pt(0, 5)));
        // grid lines outside the region are ignored
        let pts2 = sq.boundary_grid_points(&[-5, 20], &[]);
        assert_eq!(pts2.len(), 4);
    }

    #[test]
    fn locate_on_boundary_is_half_open() {
        let sq = square();
        assert_eq!(sq.locate_on_boundary(pt(5, 0)), Some(0));
        assert_eq!(sq.locate_on_boundary(pt(10, 0)), Some(1)); // vertex belongs to the edge it starts
        assert_eq!(sq.locate_on_boundary(pt(0, 0)), Some(0));
        assert_eq!(sq.locate_on_boundary(pt(5, 5)), None);
    }

    #[test]
    fn split_square_by_straight_chain() {
        let sq = square();
        let chain = Chain::new(vec![pt(4, 0), pt(4, 10)]);
        let (a, b) = sq.split_by_chain(&chain);
        let total = a.signed_area2() + b.signed_area2();
        assert_eq!(total, sq.signed_area2());
        // one piece contains (1,5), the other (9,5)
        let left_first = a.contains(pt(1, 5));
        assert!(left_first || !b.contains(pt(1, 5)));
        assert!(a.contains(pt(1, 5)) ^ a.contains(pt(9, 5)));
        assert!(b.contains(pt(1, 5)) ^ b.contains(pt(9, 5)));
        // both pieces keep the chain on their boundary
        assert!(a.on_boundary(pt(4, 5)));
        assert!(b.on_boundary(pt(4, 5)));
    }

    #[test]
    fn split_square_by_staircase_chain() {
        let sq = square();
        let chain = Chain::new(vec![pt(3, 0), pt(3, 4), pt(6, 4), pt(6, 10)]);
        let (a, b) = sq.split_by_chain(&chain);
        assert_eq!(a.signed_area2() + b.signed_area2(), sq.signed_area2());
        assert!(a.is_rectilinearly_convex());
        assert!(b.is_rectilinearly_convex());
        // the upper-left piece contains (1,9); the lower-right piece (9,1)
        assert!(a.contains(pt(1, 9)) ^ b.contains(pt(1, 9)));
        assert!(a.contains(pt(9, 1)) ^ b.contains(pt(9, 1)));
        // chain interior is on both boundaries
        assert!(a.on_boundary(pt(3, 2)) && b.on_boundary(pt(3, 2)));
        assert!(a.on_boundary(pt(5, 4)) && b.on_boundary(pt(5, 4)));
    }

    #[test]
    fn split_chain_with_endpoints_on_same_edge() {
        let sq = square();
        // dip into the region and come back to the bottom edge
        let chain = Chain::new(vec![pt(2, 0), pt(2, 3), pt(7, 3), pt(7, 0)]);
        let (a, b) = sq.split_by_chain(&chain);
        assert_eq!(a.signed_area2() + b.signed_area2(), sq.signed_area2());
        let small = if a.signed_area2() < b.signed_area2() { &a } else { &b };
        assert_eq!(small.signed_area2(), 2 * 5 * 3);
    }

    #[test]
    fn perimeter() {
        assert_eq!(square().perimeter(), 40);
    }
}
