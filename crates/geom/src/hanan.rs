//! Hanan-grid ground truth for rectilinear shortest paths among rectangular
//! obstacles.
//!
//! Any shortest rectilinear obstacle-avoiding path can be deformed, without
//! increasing its length, so that it runs on the grid induced by the x- and
//! y-coordinates of the obstacle vertices and the two terminals.  Dijkstra on
//! that grid therefore yields exact distances.  This module is the *oracle*
//! used by the test-suite to validate every other engine in the workspace; it
//! is intentionally simple and `O(n^2 log n)` per source, and is not part of
//! the paper's algorithm.

use crate::point::{Coord, Dist, Point, INF};
use crate::rect::ObstacleSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A Hanan grid graph over an obstacle set plus extra terminal points.
pub struct HananGrid {
    xs: Vec<Coord>,
    ys: Vec<Coord>,
    /// blocked[node] — node lies strictly inside an obstacle
    blocked: Vec<bool>,
    /// can_move_east[node] / can_move_north[node] — the unit grid segment in
    /// that direction is not blocked by an obstacle interior
    east_ok: Vec<bool>,
    north_ok: Vec<bool>,
}

impl HananGrid {
    /// Build the grid for the obstacle vertices plus `extra` points.
    pub fn build(obstacles: &ObstacleSet, extra: &[Point]) -> Self {
        let mut xs = obstacles.xs();
        let mut ys = obstacles.ys();
        xs.extend(extra.iter().map(|p| p.x));
        ys.extend(extra.iter().map(|p| p.y));
        if xs.is_empty() {
            xs.push(0);
        }
        if ys.is_empty() {
            ys.push(0);
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let nx = xs.len();
        let ny = ys.len();
        let idx = |i: usize, j: usize| i * ny + j;
        let mut blocked = vec![false; nx * ny];
        let mut east_ok = vec![false; nx * ny];
        let mut north_ok = vec![false; nx * ny];
        for i in 0..nx {
            for j in 0..ny {
                let p = Point::new(xs[i], ys[j]);
                blocked[idx(i, j)] = obstacles.containing_obstacle(p).is_some();
                if i + 1 < nx {
                    east_ok[idx(i, j)] = obstacles.segment_clear(p, Point::new(xs[i + 1], ys[j]));
                }
                if j + 1 < ny {
                    north_ok[idx(i, j)] = obstacles.segment_clear(p, Point::new(xs[i], ys[j + 1]));
                }
            }
        }
        HananGrid { xs, ys, blocked, east_ok, north_ok }
    }

    fn node_of(&self, p: Point) -> Option<usize> {
        let i = self.xs.binary_search(&p.x).ok()?;
        let j = self.ys.binary_search(&p.y).ok()?;
        Some(i * self.ys.len() + j)
    }

    /// Single-source shortest distances from `source` (which must be a grid
    /// point, e.g. one of the `extra` points given at build time, and must
    /// not be strictly inside an obstacle).  Returns per-node distances.
    pub fn dijkstra(&self, source: Point) -> Vec<Dist> {
        let n = self.blocked.len();
        let ny = self.ys.len();
        let nx = self.xs.len();
        let mut dist = vec![INF; n];
        let s = match self.node_of(source) {
            Some(s) if !self.blocked[s] => s,
            _ => return dist,
        };
        let mut heap: BinaryHeap<Reverse<(Dist, usize)>> = BinaryHeap::new();
        dist[s] = 0;
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            let (i, j) = (u / ny, u % ny);
            let relax = |v: usize, w: Dist, heap: &mut BinaryHeap<Reverse<(Dist, usize)>>, dist: &mut Vec<Dist>| {
                if !self.blocked[v] && d + w < dist[v] {
                    dist[v] = d + w;
                    heap.push(Reverse((dist[v], v)));
                }
            };
            if i + 1 < nx && self.east_ok[u] {
                relax(u + ny, self.xs[i + 1] - self.xs[i], &mut heap, &mut dist);
            }
            if i > 0 && self.east_ok[u - ny] {
                relax(u - ny, self.xs[i] - self.xs[i - 1], &mut heap, &mut dist);
            }
            if j + 1 < ny && self.north_ok[u] {
                relax(u + 1, self.ys[j + 1] - self.ys[j], &mut heap, &mut dist);
            }
            if j > 0 && self.north_ok[u - 1] {
                relax(u - 1, self.ys[j] - self.ys[j - 1], &mut heap, &mut dist);
            }
        }
        dist
    }

    /// Distance from `source` to `target`, both grid points.
    pub fn distance(&self, source: Point, target: Point) -> Dist {
        let d = self.dijkstra(source);
        match self.node_of(target) {
            Some(t) => d[t],
            None => INF,
        }
    }

    /// Distances from `source` to each of `targets`.
    pub fn distances_to(&self, source: Point, targets: &[Point]) -> Vec<Dist> {
        let d = self.dijkstra(source);
        targets.iter().map(|&t| self.node_of(t).map_or(INF, |i| d[i])).collect()
    }
}

/// Exact shortest-path distance between two points among rectangular
/// obstacles (ground truth; builds a fresh grid).
pub fn ground_truth_distance(obstacles: &ObstacleSet, a: Point, b: Point) -> Dist {
    let grid = HananGrid::build(obstacles, &[a, b]);
    grid.distance(a, b)
}

/// Exact all-pairs distance matrix between `points` (ground truth).
pub fn ground_truth_matrix(obstacles: &ObstacleSet, points: &[Point]) -> Vec<Vec<Dist>> {
    let grid = HananGrid::build(obstacles, points);
    points.iter().map(|&p| grid.distances_to(p, points)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    #[test]
    fn no_obstacles_is_l1() {
        let obs = ObstacleSet::empty();
        assert_eq!(ground_truth_distance(&obs, pt(0, 0), pt(7, 5)), 12);
        assert_eq!(ground_truth_distance(&obs, pt(-3, 4), pt(-3, 4)), 0);
    }

    #[test]
    fn single_wall_detour() {
        // a tall wall between the two points forces a detour over or under
        let obs = ObstacleSet::new(vec![Rect::new(4, -10, 6, 10)]);
        let a = pt(0, 0);
        let b = pt(10, 0);
        // direct distance is 10; the wall spans y in (-10,10), so we must go
        // up to 10 or down to -10 and back: 10 + 2*10 = 30
        assert_eq!(ground_truth_distance(&obs, a, b), 30);
    }

    #[test]
    fn corridor_between_obstacles() {
        let obs = ObstacleSet::new(vec![Rect::new(2, 0, 4, 5), Rect::new(2, 7, 4, 12)]);
        // passing through the corridor at y in [5,7] is allowed
        let a = pt(0, 6);
        let b = pt(6, 6);
        assert_eq!(ground_truth_distance(&obs, a, b), 6);
        // start below, end above: thread the gap
        let d = ground_truth_distance(&obs, pt(0, 0), pt(6, 12));
        assert_eq!(d, 18); // pure L1 works by going around/through the gap
    }

    #[test]
    fn path_may_run_along_obstacle_boundary() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 10, 10)]);
        // both points on the boundary; walking along the boundary is legal
        assert_eq!(ground_truth_distance(&obs, pt(0, 0), pt(10, 0)), 10);
        assert_eq!(ground_truth_distance(&obs, pt(0, 0), pt(10, 10)), 20);
        // opposite edge midpoints must walk around
        assert_eq!(ground_truth_distance(&obs, pt(0, 5), pt(10, 5)), 10 + 10);
    }

    #[test]
    fn matrix_is_symmetric_and_zero_diagonal() {
        let obs = ObstacleSet::new(vec![Rect::new(1, 1, 3, 3), Rect::new(5, 2, 8, 6)]);
        let pts = vec![pt(0, 0), pt(4, 4), pt(9, 0), pt(9, 7)];
        let m = ground_truth_matrix(&obs, &pts);
        for i in 0..pts.len() {
            assert_eq!(m[i][i], 0);
            for j in 0..pts.len() {
                assert_eq!(m[i][j], m[j][i]);
                assert!(m[i][j] >= pts[i].l1(pts[j]));
            }
        }
    }

    #[test]
    fn source_inside_obstacle_is_unreachable() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 10, 10)]);
        assert_eq!(ground_truth_distance(&obs, pt(5, 5), pt(20, 20)), INF);
    }
}
