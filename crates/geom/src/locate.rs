//! Logarithmic point location over disjoint rectangular obstacles.
//!
//! The paper's Section 6.4 query structure leans on a planar point-location
//! structure from [4] to decide, in `O(log n)`, whether a query point lies
//! inside an obstacle and whether an axis-parallel segment is clear.  The
//! naive stand-ins ([`ObstacleSet::containing_obstacle`] and
//! [`ObstacleSet::segment_clear`]) scan all `n` rectangles, which silently
//! turned the promised `O(log n)` arbitrary-point queries linear.
//!
//! [`ObstacleIndex`] restores the bound with a segment tree over the
//! obstacles' *top* edges: among the rectangles whose open x-extent contains
//! `p.x` (the "column" of `p`), disjointness makes the y-interiors pairwise
//! disjoint, so the rectangle with the smallest `ymax > p.y` is the only
//! candidate container — one tree descent plus one `ymin` check decides
//! containment.  Segment clearance is the same containment test at the start
//! point plus one ray shot ([`ShootIndex::segment_clear_from_outside`]).
//! Both queries cost `O(log n)` tree nodes (each with a binary search —
//! `O(log^2 n)` worst case, like every [`ShootIndex`] shot) and allocate
//! nothing.

use crate::point::{Coord, Dir, Point};
use crate::rayshoot::{DirIndex, Hit, ShootIndex, SlabReuse};
use crate::rect::{ObstacleSet, RectId};

/// Point-containment and segment-clearance index over an [`ObstacleSet`]:
/// the logarithmic replacement for the `O(n)` scans (see the module docs).
/// Owns a [`ShootIndex`] so one build serves ray shooting too.
///
/// **Precondition:** the obstacles must have pairwise-disjoint interiors
/// (the paper's input model; check with
/// [`ObstacleSet::validate_disjoint`]).  The containment argument relies on
/// it — on overlapping input the index may fail to report a containing
/// obstacle that the naive scan would find.
pub struct ObstacleIndex {
    shoot: ShootIndex,
    /// Top edges (`ymax`) over each rectangle's open x-extent, searchable
    /// upwards: finds the smallest `ymax >= y0` in `p.x`'s column.
    tops: DirIndex,
    /// `ymin` by rectangle id, to confirm a containment candidate.
    ymins: Vec<Coord>,
}

impl ObstacleIndex {
    /// Build the index in `O(n log n)`.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let top_edges: Vec<(Coord, Coord, Coord, RectId)> =
            obstacles.iter().enumerate().map(|(id, r)| (r.xmin, r.xmax, r.ymax, id)).collect();
        ObstacleIndex {
            shoot: ShootIndex::build(obstacles),
            tops: DirIndex::build(&top_edges, true),
            ymins: obstacles.iter().map(|r| r.ymin).collect(),
        }
    }

    /// Rebuild the index for an edited scene, copying every ray-shooting and
    /// top-edge slab column the edit provably cannot affect from `old` (see
    /// [`ShootIndex::build_delta`]).  `edited` holds the geometries of all
    /// inserted and removed rectangles, `old_to_new` the id compaction map.
    /// The result is identical to [`ObstacleIndex::build`] on `obstacles`;
    /// the returned [`SlabReuse`] aggregates all five directional indexes.
    pub fn build_delta(
        obstacles: &ObstacleSet,
        old: &ObstacleIndex,
        edited: &[crate::rect::Rect],
        old_to_new: &[Option<RectId>],
    ) -> (Self, SlabReuse) {
        let top_edges: Vec<(Coord, Coord, Coord, RectId)> =
            obstacles.iter().enumerate().map(|(id, r)| (r.xmin, r.xmax, r.ymax, id)).collect();
        let dirty_x: Vec<(Coord, Coord)> = edited.iter().map(|r| (r.xmin, r.xmax)).collect();
        let (shoot, mut reuse) = ShootIndex::build_delta(obstacles, &old.shoot, edited, old_to_new);
        let (tops, tops_reuse) = DirIndex::build_delta(&top_edges, true, &old.tops, old_to_new, &dirty_x);
        reuse.merge(tops_reuse);
        let index = ObstacleIndex { shoot, tops, ymins: obstacles.iter().map(|r| r.ymin).collect() };
        (index, reuse)
    }

    /// Number of indexed obstacles.
    pub fn len(&self) -> usize {
        self.ymins.len()
    }

    /// True when no obstacles are indexed.
    pub fn is_empty(&self) -> bool {
        self.ymins.is_empty()
    }

    /// The embedded ray-shooting index.
    pub fn shoot_index(&self) -> &ShootIndex {
        &self.shoot
    }

    /// First obstacle hit from `p` in direction `dir` (delegates to the
    /// embedded [`ShootIndex`]).
    pub fn shoot(&self, p: Point, dir: Dir) -> Option<Hit> {
        self.shoot.shoot(p, dir)
    }

    /// Is `p` strictly inside some obstacle?  Logarithmic replacement for
    /// [`ObstacleSet::containing_obstacle`]; same answer on every input
    /// with pairwise-disjoint obstacle interiors (see the type docs).
    ///
    /// Correctness: if `p` is inside `r`, then `r` is in `p`'s column with
    /// `ymin < p.y < ymax`, and no other column rectangle can have a top
    /// edge in `(p.y, r.ymax]` — its open y-interval would meet `r`'s,
    /// contradicting disjointness.  So the column's smallest `ymax > p.y`
    /// belongs to `r`.  Conversely a candidate with `ymin < p.y` contains
    /// `p` outright.
    pub fn containing_obstacle(&self, p: Point) -> Option<RectId> {
        // `ymax >= p.y + 1` is `ymax > p.y` on integer coordinates: a top
        // edge at exactly `p.y` leaves `p` on the boundary, not inside.
        let (_ymax, id) = self.tops.query(p.x, p.y + 1)?;
        (self.ymins[id] < p.y).then_some(id)
    }

    /// Is the open axis-parallel segment `a`–`b` free of obstacle interiors?
    /// Logarithmic replacement for [`ObstacleSet::segment_clear`]; same
    /// answer on every disjoint-interior input, including segments starting
    /// strictly inside an obstacle (the case a bare ray shot cannot see).
    pub fn segment_clear(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        self.containing_obstacle(a).is_none() && self.shoot.segment_clear_from_outside(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn obstacles() -> ObstacleSet {
        ObstacleSet::new(vec![
            Rect::new(2, 2, 6, 4),
            Rect::new(8, 1, 12, 9),
            Rect::new(3, 6, 5, 8),
            Rect::new(-4, -4, -1, 10),
            // stacked in the same column as rect 0, sharing the edge y=4
            Rect::new(2, 4, 6, 5),
        ])
    }

    #[test]
    fn containment_matches_naive_on_a_grid() {
        let obs = obstacles();
        let idx = ObstacleIndex::build(&obs);
        for x in -6..15 {
            for y in -6..12 {
                let p = pt(x, y);
                assert_eq!(idx.containing_obstacle(p), obs.containing_obstacle(p), "at {p:?}");
            }
        }
    }

    #[test]
    fn segment_clear_matches_naive_on_a_grid() {
        let obs = obstacles();
        let idx = ObstacleIndex::build(&obs);
        let probes: Vec<Point> = (-5..14).step_by(2).flat_map(|x| (-5..11).step_by(2).map(move |y| pt(x, y))).collect();
        for &a in &probes {
            for &b in &probes {
                if a.x != b.x && a.y != b.y {
                    continue;
                }
                assert_eq!(idx.segment_clear(a, b), obs.segment_clear(a, b), "{a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn segment_from_inside_an_obstacle_is_blocked() {
        let obs = obstacles();
        let idx = ObstacleIndex::build(&obs);
        // (9, 5) is strictly inside rect 1; a bare ray shot from it sees no
        // facing edge, the unified semantics still reports blocked.
        assert!(!idx.segment_clear(pt(9, 5), pt(20, 5)));
        assert!(!obs.segment_clear(pt(9, 5), pt(20, 5)));
        // degenerate segment stays clear even inside
        assert!(idx.segment_clear(pt(9, 5), pt(9, 5)));
    }

    #[test]
    fn boundary_points_are_not_inside() {
        let obs = obstacles();
        let idx = ObstacleIndex::build(&obs);
        for r in obs.iter() {
            for c in r.corners() {
                assert_eq!(idx.containing_obstacle(c), None, "corner {c:?}");
            }
            assert_eq!(idx.containing_obstacle(pt((r.xmin + r.xmax) / 2, r.ymax)), None);
            assert_eq!(idx.containing_obstacle(pt((r.xmin + r.xmax) / 2, r.ymin)), None);
        }
    }

    #[test]
    fn empty_set() {
        let idx = ObstacleIndex::build(&ObstacleSet::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.containing_obstacle(pt(0, 0)), None);
        assert!(idx.segment_clear(pt(0, 0), pt(100, 0)));
    }

    #[test]
    fn delta_build_answers_like_a_fresh_build() {
        use crate::rect::SceneDelta;
        let obs = obstacles();
        let old = ObstacleIndex::build(&obs);
        let delta = SceneDelta { insert: vec![Rect::new(20, 20, 24, 23)], remove: vec![2] };
        let applied = obs.apply_delta(&delta).unwrap();
        let (idx, reuse) = ObstacleIndex::build_delta(&applied.obstacles, &old, &applied.edited, &applied.old_to_new);
        let fresh = ObstacleIndex::build(&applied.obstacles);
        assert!(reuse.reused > 0, "a far-away edit must reuse some slab columns: {reuse:?}");
        for x in -6..27 {
            for y in -6..26 {
                let p = pt(x, y);
                assert_eq!(idx.containing_obstacle(p), fresh.containing_obstacle(p), "at {p:?}");
                for dir in Dir::ALL {
                    assert_eq!(idx.shoot(p, dir), fresh.shoot(p, dir), "at {p:?} {dir:?}");
                }
            }
        }
    }
}
