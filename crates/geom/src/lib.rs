#![warn(missing_docs)]

//! # rsp-geom — geometric substrate for rectilinear shortest paths
//!
//! This crate provides the geometric machinery used by the reproduction of
//! Atallah & Chen, *"Parallel rectilinear shortest paths with rectangular
//! obstacles"* (Computational Geometry: Theory and Applications 1, 1991).
//!
//! Everything here is exact integer geometry (`i64` coordinates, L1 metric):
//!
//! * [`Point`], [`Rect`], [`ObstacleSet`] — the input objects (Section 2 of
//!   the paper): `n` pairwise-disjoint axis-parallel rectangles.
//! * [`Chain`] — rectilinear polylines, in particular *staircases* (convex
//!   paths, Section 2), with side tests and line intersections.
//! * [`staircase`] — the `MAX_NE / MAX_NW / MAX_SE / MAX_SW` staircases of a
//!   rectangle set (Fig. 1) and rectilinear convex hulls / envelopes
//!   (Fig. 2).
//! * [`StairRegion`] — rectilinearly convex regions with clear boundaries
//!   (the regions `Q` of Sections 4–6), including splitting a region by a
//!   staircase chain.
//! * [`rayshoot`] — first-obstacle-hit queries in the four axis directions,
//!   both naive and via a segment-tree index (the substitute for the
//!   trapezoidal-decomposition / planar-subdivision structures of [4]).
//! * [`locate`] — [`ObstacleIndex`]: logarithmic point containment and
//!   axis-parallel segment clearance (the other half of the [4] stand-in;
//!   replaces the `O(n)` scans on the Section 6.4 query hot path).
//! * [`trapezoid`] — the per-vertex trapezoidal decomposition and the
//!   `Hit(e)` sets used by Sections 8 and 9.
//! * [`bq`] — the boundary discretisation `B(Q)` of Definition 1 (Fig. 3)
//!   and the coordinate-grid superset `B'(Q)` used by the divide-and-conquer.
//! * [`hanan`] — a Hanan-grid Dijkstra used as ground truth in tests.
//! * [`RectiPath`] — actual rectilinear paths with validity checks.

pub mod bq;
pub mod chain;
pub mod hanan;
pub mod locate;
pub mod path;
pub mod point;
pub mod rayshoot;
pub mod rect;
pub mod region;
pub mod staircase;
pub mod trapezoid;

pub use chain::{Chain, Side};
pub use locate::ObstacleIndex;
pub use path::RectiPath;
pub use point::{Coord, Dir, Dist, Point, INF};
pub use rayshoot::SlabReuse;
pub use rect::{AppliedDelta, DeltaError, DisjointnessViolation, ObstacleSet, Rect, RectId, SceneDelta};
pub use region::StairRegion;
pub use staircase::Quadrant;
