//! Axis-parallel ray shooting among rectangular obstacles.
//!
//! Given a point `p` and one of the four axis directions, find the first
//! obstacle whose boundary blocks the ray.  This is the primitive underlying
//! the trapezoidal decomposition (Lemma 6's path tracing), the planar
//! subdivisions `H1`/`H2` of Section 6.4 (arbitrary-point queries) and the
//! `Hit(e)` sets of Sections 8–9.
//!
//! Two implementations are provided: a naive `O(n)` scan (used for small
//! inputs and as a cross-check) and a segment-tree index with
//! `O(log^2 n)`-ish queries (our stand-in for the [4] planar point-location
//! structure — same role, logarithmic query time).

use crate::point::{Coord, Dir, Point};
use crate::rect::{ObstacleSet, RectId};

/// Result of a ray-shooting query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hit {
    /// The obstacle hit.
    pub rect: RectId,
    /// The point where the ray first meets the obstacle boundary.
    pub point: Point,
}

impl Hit {
    /// Distance from the query point to the hit point.
    pub fn distance_from(&self, p: Point) -> Coord {
        self.point.l1(p)
    }
}

/// Naive `O(n)` first-hit query.  A rectangle is hit by a ray only if the ray
/// passes through its open extent in the perpendicular axis (grazing along an
/// edge is not a hit); a hit at distance zero (the query point already lies
/// on the facing edge) counts.  `skip` excludes one obstacle (used when
/// shooting from a vertex of that obstacle).
pub fn shoot_naive(obstacles: &ObstacleSet, p: Point, dir: Dir, skip: Option<RectId>) -> Option<Hit> {
    let mut best: Option<Hit> = None;
    for (id, r) in obstacles.iter().enumerate() {
        if Some(id) == skip {
            continue;
        }
        let candidate = match dir {
            Dir::North => (r.xmin < p.x && p.x < r.xmax && r.ymin >= p.y).then(|| Point::new(p.x, r.ymin)),
            Dir::South => (r.xmin < p.x && p.x < r.xmax && r.ymax <= p.y).then(|| Point::new(p.x, r.ymax)),
            Dir::East => (r.ymin < p.y && p.y < r.ymax && r.xmin >= p.x).then(|| Point::new(r.xmin, p.y)),
            Dir::West => (r.ymin < p.y && p.y < r.ymax && r.xmax <= p.x).then(|| Point::new(r.xmax, p.y)),
        };
        if let Some(point) = candidate {
            let d = point.l1(p);
            if best.is_none_or(|b| d < b.distance_from(p)) {
                best = Some(Hit { rect: id, point });
            }
        }
    }
    best
}

/// Segment-tree index over one shooting direction, with a sorted-slab fast
/// path.
///
/// Coordinates perpendicular to the shooting direction are compressed into
/// "positions": even positions are the distinct coordinates themselves, odd
/// positions are the open gaps between consecutive coordinates.  An obstacle
/// edge covering the *open* interval `(a, b)` is stored in the `O(log n)`
/// canonical nodes of that position range, and every node keeps its edges
/// sorted by the coordinate along the shooting direction — `O(n log n)`
/// space, `O(log^2 n)` query (a binary search per tree level).
///
/// When the total edge/position incidence is small (the common case for
/// scattered obstacles: `O(n log n)` entries) the build additionally
/// materialises one sorted *slab* per position holding every edge covering
/// it.  A query is then a single binary search in one contiguous array —
/// a true `O(log n)` with a far smaller constant than the tree walk.  Scenes
/// where slabs would degenerate towards their `O(n^2)` worst case (long
/// walls spanning many positions, e.g. the `corridors` workload) skip the
/// slab build and serve every query from the tree.
pub(crate) struct DirIndex {
    /// sorted distinct perpendicular coordinates
    coords: Vec<Coord>,
    /// number of positions (2 * coords.len() - 1), rounded up to a power of two for the tree
    size: usize,
    /// tree nodes: node i covers positions [lo, hi); each holds (along_coord, rect) sorted
    nodes: Vec<Vec<(Coord, RectId)>>,
    /// per-position sorted edge lists (the slab fast path), flattened into
    /// one arena (`slab_starts[pos]..slab_starts[pos+1]` indexes
    /// `slab_entries`); empty when the incidence budget was exceeded
    slab_starts: Vec<u32>,
    /// arena backing the slabs (sorted by along-coordinate within each slab)
    slab_entries: Vec<(Coord, RectId)>,
    /// shooting toward larger coordinates (north/east) or smaller (south/west)
    forward: bool,
}

impl DirIndex {
    pub(crate) fn build(edges: &[(Coord, Coord, Coord, RectId)], forward: bool) -> Self {
        // edges: (perp_lo, perp_hi, along, rect): open interval (perp_lo, perp_hi)
        let mut coords: Vec<Coord> = edges.iter().flat_map(|e| [e.0, e.1]).collect();
        coords.sort_unstable();
        coords.dedup();
        let positions = if coords.is_empty() { 1 } else { 2 * coords.len() - 1 };
        let mut size = 1usize;
        while size < positions {
            size *= 2;
        }
        let mut nodes: Vec<Vec<(Coord, RectId)>> = vec![Vec::new(); 2 * size];
        let pos_of = |c: Coord| -> usize { coords.binary_search(&c).unwrap() * 2 };
        let mut incidence = 0usize;
        for &(lo, hi, along, rect) in edges {
            if lo >= hi {
                continue;
            }
            incidence += pos_of(hi) - pos_of(lo) - 1;
            // open interval (lo, hi) covers positions pos(lo)+1 ..= pos(hi)-1
            let (mut l, mut r) = (pos_of(lo) + 1 + size, pos_of(hi) - 1 + size + 1);
            while l < r {
                if l & 1 == 1 {
                    nodes[l].push((along, rect));
                    l += 1;
                }
                if r & 1 == 1 {
                    r -= 1;
                    nodes[r].push((along, rect));
                }
                l /= 2;
                r /= 2;
            }
        }
        for node in nodes.iter_mut() {
            node.sort_unstable();
        }
        // Slab fast path, gated on an O(n log n) incidence budget so the
        // structure never degenerates to quadratic space.  The per-position
        // lists live in one flat arena (offset array + entry array) so a
        // query touches two contiguous allocations, not a Vec-of-Vecs.
        let m = edges.len().max(2);
        let budget = 4 * m * (usize::BITS - m.leading_zeros()) as usize;
        let (slab_starts, slab_entries) = if incidence <= budget {
            let mut slabs: Vec<Vec<(Coord, RectId)>> = vec![Vec::new(); positions];
            for &(lo, hi, along, rect) in edges {
                if lo >= hi {
                    continue;
                }
                for slab in slabs.iter_mut().take(pos_of(hi)).skip(pos_of(lo) + 1) {
                    slab.push((along, rect));
                }
            }
            let mut starts = Vec::with_capacity(positions + 1);
            let mut entries = Vec::with_capacity(incidence);
            starts.push(0u32);
            for slab in slabs.iter_mut() {
                slab.sort_unstable();
                entries.extend_from_slice(slab);
                starts.push(entries.len() as u32);
            }
            (starts, entries)
        } else {
            (Vec::new(), Vec::new())
        };
        DirIndex { coords, size, nodes, slab_starts, slab_entries, forward }
    }

    /// Position of a query coordinate, or `None` if it is outside the range
    /// where any edge exists (then nothing can be hit anyway only if it is
    /// outside all intervals — being outside the compressed range means no
    /// open interval contains it).
    fn position(&self, c: Coord) -> Option<usize> {
        if self.coords.is_empty() {
            return None;
        }
        match self.coords.binary_search(&c) {
            Ok(i) => Some(2 * i),
            Err(0) => None,
            Err(i) if i == self.coords.len() => None,
            Err(i) => Some(2 * i - 1),
        }
    }

    /// First hit along the shooting direction from coordinate `along`,
    /// at perpendicular coordinate `perp`.
    pub(crate) fn query(&self, perp: Coord, along: Coord) -> Option<(Coord, RectId)> {
        let pos = self.position(perp)?;
        if !self.slab_starts.is_empty() {
            // Slab fast path: one binary search in one contiguous array.
            let list = &self.slab_entries[self.slab_starts[pos] as usize..self.slab_starts[pos + 1] as usize];
            return if self.forward {
                let i = list.partition_point(|&(c, _)| c < along);
                list.get(i).copied()
            } else {
                let i = list.partition_point(|&(c, _)| c <= along);
                if i == 0 {
                    None
                } else {
                    list.get(i - 1).copied()
                }
            };
        }
        let mut node = pos + self.size;
        let mut best: Option<(Coord, RectId)> = None;
        loop {
            let list = &self.nodes[node];
            let cand = if self.forward {
                let i = list.partition_point(|&(c, _)| c < along);
                list.get(i).copied()
            } else {
                let i = list.partition_point(|&(c, _)| c <= along);
                if i == 0 {
                    None
                } else {
                    list.get(i - 1).copied()
                }
            };
            if let Some((c, rect)) = cand {
                let better = match best {
                    None => true,
                    Some((bc, _)) => {
                        if self.forward {
                            c < bc
                        } else {
                            c > bc
                        }
                    }
                };
                if better {
                    best = Some((c, rect));
                }
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
        best
    }
}

/// Ray-shooting index over an obstacle set for all four directions.
pub struct ShootIndex {
    north: DirIndex,
    south: DirIndex,
    east: DirIndex,
    west: DirIndex,
}

impl ShootIndex {
    /// Build the index in `O(n log n)`.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let mut north_edges = Vec::with_capacity(obstacles.len());
        let mut south_edges = Vec::with_capacity(obstacles.len());
        let mut east_edges = Vec::with_capacity(obstacles.len());
        let mut west_edges = Vec::with_capacity(obstacles.len());
        for (id, r) in obstacles.iter().enumerate() {
            // Shooting north hits bottom edges, perpendicular coordinate is x.
            north_edges.push((r.xmin, r.xmax, r.ymin, id));
            south_edges.push((r.xmin, r.xmax, r.ymax, id));
            east_edges.push((r.ymin, r.ymax, r.xmin, id));
            west_edges.push((r.ymin, r.ymax, r.xmax, id));
        }
        ShootIndex {
            north: DirIndex::build(&north_edges, true),
            south: DirIndex::build(&south_edges, false),
            east: DirIndex::build(&east_edges, true),
            west: DirIndex::build(&west_edges, false),
        }
    }

    /// Is the open axis-parallel segment `a`–`b` free of obstacle interiors,
    /// **assuming `a` is not strictly inside an obstacle**?  One ray shot:
    /// the segment is clear iff the first obstacle in its direction is at
    /// least `|ab|` away.  Callers that cannot guarantee the precondition
    /// must use [`ObstacleIndex::segment_clear`](crate::ObstacleIndex::segment_clear),
    /// which adds the containment test (an obstacle surrounding `a` has no
    /// facing edge ahead of the ray and would be invisible here).
    pub fn segment_clear_from_outside(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let dir = if a.x == b.x {
            if b.y > a.y {
                Dir::North
            } else {
                Dir::South
            }
        } else {
            debug_assert_eq!(a.y, b.y, "segment must be axis-parallel");
            if b.x > a.x {
                Dir::East
            } else {
                Dir::West
            }
        };
        match self.shoot(a, dir) {
            None => true,
            Some(hit) => hit.distance_from(a) >= a.l1(b),
        }
    }

    /// First obstacle hit from `p` in direction `dir`, in `O(log^2 n)`.
    pub fn shoot(&self, p: Point, dir: Dir) -> Option<Hit> {
        match dir {
            Dir::North => self.north.query(p.x, p.y).map(|(y, rect)| Hit { rect, point: Point::new(p.x, y) }),
            Dir::South => self.south.query(p.x, p.y).map(|(y, rect)| Hit { rect, point: Point::new(p.x, y) }),
            Dir::East => self.east.query(p.y, p.x).map(|(x, rect)| Hit { rect, point: Point::new(x, p.y) }),
            Dir::West => self.west.query(p.y, p.x).map(|(x, rect)| Hit { rect, point: Point::new(x, p.y) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn obstacles() -> ObstacleSet {
        ObstacleSet::new(vec![
            Rect::new(2, 2, 6, 4),
            Rect::new(8, 1, 12, 9),
            Rect::new(3, 6, 5, 8),
            Rect::new(-4, -4, -1, 10),
        ])
    }

    #[test]
    fn naive_hits() {
        let obs = obstacles();
        let hit = shoot_naive(&obs, pt(4, 0), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 0);
        assert_eq!(hit.point, pt(4, 2));
        let hit = shoot_naive(&obs, pt(4, 5), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 2);
        let hit = shoot_naive(&obs, pt(4, 5), Dir::South, None).unwrap();
        assert_eq!(hit.point, pt(4, 4));
        let hit = shoot_naive(&obs, pt(0, 3), Dir::East, None).unwrap();
        assert_eq!(hit.point, pt(2, 3));
        let hit = shoot_naive(&obs, pt(0, 3), Dir::West, None).unwrap();
        assert_eq!(hit.point, pt(-1, 3));
        // grazing along the edge: x == xmin is not a hit
        assert_eq!(shoot_naive(&obs, pt(2, 0), Dir::North, None), None);
        // skip works
        let hit = shoot_naive(&obs, pt(4, 3), Dir::North, Some(0)).unwrap();
        assert_eq!(hit.rect, 2);
    }

    #[test]
    fn naive_zero_distance_hit() {
        let obs = obstacles();
        // point on the bottom edge of rect 0 shooting north hits it at distance 0
        let hit = shoot_naive(&obs, pt(4, 2), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 0);
        assert_eq!(hit.distance_from(pt(4, 2)), 0);
    }

    #[test]
    fn index_matches_naive_on_fixed_cases() {
        let obs = obstacles();
        let idx = ShootIndex::build(&obs);
        for x in -6..15 {
            for y in -6..12 {
                let p = pt(x, y);
                if obs.containing_obstacle(p).is_some() {
                    continue;
                }
                for dir in Dir::ALL {
                    let a = shoot_naive(&obs, p, dir, None).map(|h| h.point);
                    let b = idx.shoot(p, dir).map(|h| h.point);
                    assert_eq!(a, b, "mismatch at {:?} dir {:?}", p, dir);
                }
            }
        }
    }

    #[test]
    fn index_on_empty_set() {
        let obs = ObstacleSet::empty();
        let idx = ShootIndex::build(&obs);
        assert_eq!(idx.shoot(pt(0, 0), Dir::North), None);
        assert_eq!(shoot_naive(&obs, pt(0, 0), Dir::West, None), None);
    }

    #[test]
    fn index_matches_naive_randomised() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            // random disjoint-ish rects on a coarse grid (overlap does not
            // matter for ray-shooting equivalence testing)
            let rects: Vec<Rect> = (0..30)
                .map(|_| {
                    let x = rng.gen_range(-50..50);
                    let y = rng.gen_range(-50..50);
                    let w = rng.gen_range(1i64..8);
                    let h = rng.gen_range(1i64..8);
                    Rect::new(x, y, x + w, y + h)
                })
                .collect();
            let obs = ObstacleSet::new(rects);
            let idx = ShootIndex::build(&obs);
            for _ in 0..200 {
                let p = pt(rng.gen_range(-60..60), rng.gen_range(-60..60));
                for dir in Dir::ALL {
                    let a = shoot_naive(&obs, p, dir, None).map(|h| (h.point, h.rect));
                    let b = idx.shoot(p, dir).map(|h| (h.point, h.rect));
                    // hit points must agree; the rect may differ if two edges
                    // are collinear, so compare points only
                    assert_eq!(a.map(|v| v.0), b.map(|v| v.0), "p={:?} dir={:?}", p, dir);
                }
            }
        }
    }
}
