//! Axis-parallel ray shooting among rectangular obstacles.
//!
//! Given a point `p` and one of the four axis directions, find the first
//! obstacle whose boundary blocks the ray.  This is the primitive underlying
//! the trapezoidal decomposition (Lemma 6's path tracing), the planar
//! subdivisions `H1`/`H2` of Section 6.4 (arbitrary-point queries) and the
//! `Hit(e)` sets of Sections 8–9.
//!
//! Two implementations are provided: a naive `O(n)` scan (used for small
//! inputs and as a cross-check) and a segment-tree index with
//! `O(log^2 n)`-ish queries (our stand-in for the [4] planar point-location
//! structure — same role, logarithmic query time).

use crate::point::{Coord, Dir, Point};
use crate::rect::{ObstacleSet, Rect, RectId};

/// Result of a ray-shooting query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hit {
    /// The obstacle hit.
    pub rect: RectId,
    /// The point where the ray first meets the obstacle boundary.
    pub point: Point,
}

impl Hit {
    /// Distance from the query point to the hit point.
    pub fn distance_from(&self, p: Point) -> Coord {
        self.point.l1(p)
    }
}

/// Naive `O(n)` first-hit query.  A rectangle is hit by a ray only if the ray
/// passes through its open extent in the perpendicular axis (grazing along an
/// edge is not a hit); a hit at distance zero (the query point already lies
/// on the facing edge) counts.  `skip` excludes one obstacle (used when
/// shooting from a vertex of that obstacle).
pub fn shoot_naive(obstacles: &ObstacleSet, p: Point, dir: Dir, skip: Option<RectId>) -> Option<Hit> {
    let mut best: Option<Hit> = None;
    for (id, r) in obstacles.iter().enumerate() {
        if Some(id) == skip {
            continue;
        }
        let candidate = match dir {
            Dir::North => (r.xmin < p.x && p.x < r.xmax && r.ymin >= p.y).then(|| Point::new(p.x, r.ymin)),
            Dir::South => (r.xmin < p.x && p.x < r.xmax && r.ymax <= p.y).then(|| Point::new(p.x, r.ymax)),
            Dir::East => (r.ymin < p.y && p.y < r.ymax && r.xmin >= p.x).then(|| Point::new(r.xmin, p.y)),
            Dir::West => (r.ymin < p.y && p.y < r.ymax && r.xmax <= p.x).then(|| Point::new(r.xmax, p.y)),
        };
        if let Some(point) = candidate {
            let d = point.l1(p);
            if best.is_none_or(|b| d < b.distance_from(p)) {
                best = Some(Hit { rect: id, point });
            }
        }
    }
    best
}

/// Segment-tree index over one shooting direction, with a sorted-slab fast
/// path.
///
/// Coordinates perpendicular to the shooting direction are compressed into
/// "positions": even positions are the distinct coordinates themselves, odd
/// positions are the open gaps between consecutive coordinates.  An obstacle
/// edge covering the *open* interval `(a, b)` is stored in the `O(log n)`
/// canonical nodes of that position range, and every node keeps its edges
/// sorted by the coordinate along the shooting direction — `O(n log n)`
/// space, `O(log^2 n)` query (a binary search per tree level).
///
/// When the total edge/position incidence is small (the common case for
/// scattered obstacles: `O(n log n)` entries) the build additionally
/// materialises one sorted *slab* per position holding every edge covering
/// it.  A query is then a single binary search in one contiguous array —
/// a true `O(log n)` with a far smaller constant than the tree walk.  Scenes
/// where slabs would degenerate towards their `O(n^2)` worst case (long
/// walls spanning many positions, e.g. the `corridors` workload) skip the
/// slab build and serve every query from the tree.
pub(crate) struct DirIndex {
    /// sorted distinct perpendicular coordinates
    coords: Vec<Coord>,
    /// number of positions (2 * coords.len() - 1), rounded up to a power of two for the tree
    size: usize,
    /// tree nodes: node i covers positions [lo, hi); each holds (along_coord, rect) sorted
    nodes: Vec<Vec<(Coord, RectId)>>,
    /// per-position sorted edge lists (the slab fast path), flattened into
    /// one arena (`slab_starts[pos]..slab_starts[pos+1]` indexes
    /// `slab_entries`); empty when the incidence budget was exceeded
    slab_starts: Vec<u32>,
    /// arena backing the slabs (sorted by along-coordinate within each slab)
    slab_entries: Vec<(Coord, RectId)>,
    /// shooting toward larger coordinates (north/east) or smaller (south/west)
    forward: bool,
}

/// Everything of a [`DirIndex`] except the slabs: the coordinate
/// compression, the segment tree and the edge/position incidence count.
/// Shared verbatim by the fresh and the delta builds, so the two can only
/// differ in how they *fill* the slab arena — never in its shape.
struct DirSkeleton {
    coords: Vec<Coord>,
    size: usize,
    nodes: Vec<Vec<(Coord, RectId)>>,
    positions: usize,
    incidence: usize,
    /// Whether the incidence budget admits the slab fast path.
    slabs_on: bool,
}

fn dir_skeleton(edges: &[(Coord, Coord, Coord, RectId)]) -> DirSkeleton {
    // edges: (perp_lo, perp_hi, along, rect): open interval (perp_lo, perp_hi)
    let mut coords: Vec<Coord> = edges.iter().flat_map(|e| [e.0, e.1]).collect();
    coords.sort_unstable();
    coords.dedup();
    let positions = if coords.is_empty() { 1 } else { 2 * coords.len() - 1 };
    let mut size = 1usize;
    while size < positions {
        size *= 2;
    }
    let mut nodes: Vec<Vec<(Coord, RectId)>> = vec![Vec::new(); 2 * size];
    let pos_of = |c: Coord| -> usize { coords.binary_search(&c).unwrap() * 2 };
    let mut incidence = 0usize;
    for &(lo, hi, along, rect) in edges {
        if lo >= hi {
            continue;
        }
        incidence += pos_of(hi) - pos_of(lo) - 1;
        // open interval (lo, hi) covers positions pos(lo)+1 ..= pos(hi)-1
        let (mut l, mut r) = (pos_of(lo) + 1 + size, pos_of(hi) - 1 + size + 1);
        while l < r {
            if l & 1 == 1 {
                nodes[l].push((along, rect));
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                nodes[r].push((along, rect));
            }
            l /= 2;
            r /= 2;
        }
    }
    for node in nodes.iter_mut() {
        node.sort_unstable();
    }
    // The slab fast path is gated on an O(n log n) incidence budget so the
    // structure never degenerates to quadratic space.
    let m = edges.len().max(2);
    let budget = 4 * m * (usize::BITS - m.leading_zeros()) as usize;
    DirSkeleton { coords, size, nodes, positions, incidence, slabs_on: incidence <= budget }
}

/// Slab-column accounting of a [`DirIndex::build_delta`] rebuild: how many
/// positions copied their sorted slab from the previous epoch's index versus
/// how many were refilled from the edge list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabReuse {
    /// Slab columns copied (id-remapped) from the old index.
    pub reused: usize,
    /// Slab columns refilled and re-sorted from scratch.
    pub rebuilt: usize,
}

impl SlabReuse {
    /// Accumulate another direction's counts.
    pub fn merge(&mut self, other: SlabReuse) {
        self.reused += other.reused;
        self.rebuilt += other.rebuilt;
    }
}

impl DirIndex {
    pub(crate) fn build(edges: &[(Coord, Coord, Coord, RectId)], forward: bool) -> Self {
        let sk = dir_skeleton(edges);
        // The per-position lists live in one flat arena (offset array +
        // entry array) so a query touches two contiguous allocations, not a
        // Vec-of-Vecs.
        let (slab_starts, slab_entries) = if sk.slabs_on {
            let pos_of = |c: Coord| -> usize { sk.coords.binary_search(&c).unwrap() * 2 };
            let mut slabs: Vec<Vec<(Coord, RectId)>> = vec![Vec::new(); sk.positions];
            for &(lo, hi, along, rect) in edges {
                if lo >= hi {
                    continue;
                }
                for slab in slabs.iter_mut().take(pos_of(hi)).skip(pos_of(lo) + 1) {
                    slab.push((along, rect));
                }
            }
            let mut starts = Vec::with_capacity(sk.positions + 1);
            let mut entries = Vec::with_capacity(sk.incidence);
            starts.push(0u32);
            for slab in slabs.iter_mut() {
                slab.sort_unstable();
                entries.extend_from_slice(slab);
                starts.push(entries.len() as u32);
            }
            (starts, entries)
        } else {
            (Vec::new(), Vec::new())
        };
        DirIndex { coords: sk.coords, size: sk.size, nodes: sk.nodes, slab_starts, slab_entries, forward }
    }

    /// Rebuild for an edited scene, copying every slab column the edit
    /// provably cannot affect from `old` instead of refilling and re-sorting
    /// it.  The result is **identical** (field for field) to
    /// [`DirIndex::build`] over `edges`:
    ///
    /// * The coordinate compression, segment tree and incidence gate are
    ///   recomputed fresh — they are `O(m log m)` and shape the structure.
    /// * A position is *clean* when its geometric span (a coordinate for
    ///   even positions, the open gap between two adjacent coordinates for
    ///   odd ones) is disjoint from every interval in `dirty` — the closed
    ///   perpendicular extents of all inserted and removed rectangles.  No
    ///   inserted edge can cover a clean position (its extent lies inside a
    ///   dirty interval), no removed edge covered the corresponding old
    ///   position (same argument), and no old coordinate can sit strictly
    ///   inside a clean gap (it would have to belong to a removed edge whose
    ///   dirty interval then meets the gap) — so the old slab at the mapped
    ///   position holds exactly the surviving edges covering the clean
    ///   position.  Copying it with ids remapped through `old_to_new`
    ///   reproduces the fresh slab verbatim: survivors keep their relative
    ///   id order under compaction, so the `(along, id)` sort order is
    ///   preserved by the remap.
    /// * Dirty positions (and any position the mapping cannot place, e.g.
    ///   when `old` skipped its slabs) are refilled from `edges`.
    pub(crate) fn build_delta(
        edges: &[(Coord, Coord, Coord, RectId)],
        forward: bool,
        old: &DirIndex,
        old_to_new: &[Option<RectId>],
        dirty: &[(Coord, Coord)],
    ) -> (Self, SlabReuse) {
        let sk = dir_skeleton(edges);
        if !sk.slabs_on {
            // The fresh build would skip the slabs too; nothing to reuse.
            let index = DirIndex {
                coords: sk.coords,
                size: sk.size,
                nodes: sk.nodes,
                slab_starts: Vec::new(),
                slab_entries: Vec::new(),
                forward,
            };
            return (index, SlabReuse::default());
        }
        // Classify each position: copy its slab from the old arena, or
        // refill it.  `None` means refill.
        let old_range = |p: usize| -> Option<(usize, usize)> {
            if old.slab_starts.is_empty() || old.forward != forward {
                return None;
            }
            let clean = if p.is_multiple_of(2) {
                let c = sk.coords[p / 2];
                !dirty.iter().any(|&(lo, hi)| lo <= c && c <= hi)
            } else {
                let (a, b) = (sk.coords[p / 2], sk.coords[p / 2 + 1]);
                !dirty.iter().any(|&(lo, hi)| lo < b && a < hi)
            };
            if !clean {
                return None;
            }
            let old_pos = if p.is_multiple_of(2) {
                2 * old.coords.binary_search(&sk.coords[p / 2]).ok()?
            } else {
                let j = old.coords.binary_search(&sk.coords[p / 2]).ok()?;
                if old.coords.get(j + 1) != Some(&sk.coords[p / 2 + 1]) {
                    return None;
                }
                2 * j + 1
            };
            let (s, e) = (old.slab_starts[old_pos] as usize, old.slab_starts[old_pos + 1] as usize);
            // Every covering edge must have survived (it must, by the clean
            // argument above; stay defensive rather than subtly wrong).
            old.slab_entries[s..e]
                .iter()
                .all(|&(_, id)| old_to_new.get(id).copied().flatten().is_some())
                .then_some((s, e))
        };
        let sources: Vec<Option<(usize, usize)>> = (0..sk.positions).map(old_range).collect();
        // Refill only the positions that could not be copied.
        let pos_of = |c: Coord| -> usize { sk.coords.binary_search(&c).unwrap() * 2 };
        let mut refill: Vec<Vec<(Coord, RectId)>> = vec![Vec::new(); sk.positions];
        for &(lo, hi, along, rect) in edges {
            if lo >= hi {
                continue;
            }
            for p in (pos_of(lo) + 1)..pos_of(hi) {
                if sources[p].is_none() {
                    refill[p].push((along, rect));
                }
            }
        }
        let mut starts = Vec::with_capacity(sk.positions + 1);
        let mut entries = Vec::with_capacity(sk.incidence);
        starts.push(0u32);
        let mut reuse = SlabReuse::default();
        for (p, source) in sources.iter().enumerate() {
            match *source {
                Some((s, e)) => {
                    reuse.reused += 1;
                    entries.extend(
                        old.slab_entries[s..e].iter().map(|&(c, id)| (c, old_to_new[id].expect("checked survivor"))),
                    );
                }
                None => {
                    reuse.rebuilt += 1;
                    refill[p].sort_unstable();
                    entries.extend_from_slice(&refill[p]);
                }
            }
            starts.push(entries.len() as u32);
        }
        let index = DirIndex {
            coords: sk.coords,
            size: sk.size,
            nodes: sk.nodes,
            slab_starts: starts,
            slab_entries: entries,
            forward,
        };
        (index, reuse)
    }

    /// Position of a query coordinate, or `None` if it is outside the range
    /// where any edge exists (then nothing can be hit anyway only if it is
    /// outside all intervals — being outside the compressed range means no
    /// open interval contains it).
    fn position(&self, c: Coord) -> Option<usize> {
        if self.coords.is_empty() {
            return None;
        }
        match self.coords.binary_search(&c) {
            Ok(i) => Some(2 * i),
            Err(0) => None,
            Err(i) if i == self.coords.len() => None,
            Err(i) => Some(2 * i - 1),
        }
    }

    /// First hit along the shooting direction from coordinate `along`,
    /// at perpendicular coordinate `perp`.
    pub(crate) fn query(&self, perp: Coord, along: Coord) -> Option<(Coord, RectId)> {
        let pos = self.position(perp)?;
        if !self.slab_starts.is_empty() {
            // Slab fast path: one binary search in one contiguous array.
            let list = &self.slab_entries[self.slab_starts[pos] as usize..self.slab_starts[pos + 1] as usize];
            return if self.forward {
                let i = list.partition_point(|&(c, _)| c < along);
                list.get(i).copied()
            } else {
                let i = list.partition_point(|&(c, _)| c <= along);
                if i == 0 {
                    None
                } else {
                    list.get(i - 1).copied()
                }
            };
        }
        let mut node = pos + self.size;
        let mut best: Option<(Coord, RectId)> = None;
        loop {
            let list = &self.nodes[node];
            let cand = if self.forward {
                let i = list.partition_point(|&(c, _)| c < along);
                list.get(i).copied()
            } else {
                let i = list.partition_point(|&(c, _)| c <= along);
                if i == 0 {
                    None
                } else {
                    list.get(i - 1).copied()
                }
            };
            if let Some((c, rect)) = cand {
                let better = match best {
                    None => true,
                    Some((bc, _)) => {
                        if self.forward {
                            c < bc
                        } else {
                            c > bc
                        }
                    }
                };
                if better {
                    best = Some((c, rect));
                }
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
        best
    }
}

/// Ray-shooting index over an obstacle set for all four directions.
pub struct ShootIndex {
    north: DirIndex,
    south: DirIndex,
    east: DirIndex,
    west: DirIndex,
}

impl ShootIndex {
    /// Build the index in `O(n log n)`.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let mut north_edges = Vec::with_capacity(obstacles.len());
        let mut south_edges = Vec::with_capacity(obstacles.len());
        let mut east_edges = Vec::with_capacity(obstacles.len());
        let mut west_edges = Vec::with_capacity(obstacles.len());
        for (id, r) in obstacles.iter().enumerate() {
            // Shooting north hits bottom edges, perpendicular coordinate is x.
            north_edges.push((r.xmin, r.xmax, r.ymin, id));
            south_edges.push((r.xmin, r.xmax, r.ymax, id));
            east_edges.push((r.ymin, r.ymax, r.xmin, id));
            west_edges.push((r.ymin, r.ymax, r.xmax, id));
        }
        ShootIndex {
            north: DirIndex::build(&north_edges, true),
            south: DirIndex::build(&south_edges, false),
            east: DirIndex::build(&east_edges, true),
            west: DirIndex::build(&west_edges, false),
        }
    }

    /// Rebuild the index for an edited scene, copying the slab columns the
    /// edit cannot affect from `old`.  `edited` holds the geometries of every
    /// inserted and removed rectangle (in any order); `old_to_new` maps the
    /// previous epoch's obstacle ids to the compacted new ids (`None` for
    /// removed rectangles).  The result is identical to
    /// [`ShootIndex::build`] on `obstacles`; the returned [`SlabReuse`] sums
    /// the per-direction accounting.
    pub fn build_delta(
        obstacles: &ObstacleSet,
        old: &ShootIndex,
        edited: &[Rect],
        old_to_new: &[Option<RectId>],
    ) -> (Self, SlabReuse) {
        let mut north_edges = Vec::with_capacity(obstacles.len());
        let mut south_edges = Vec::with_capacity(obstacles.len());
        let mut east_edges = Vec::with_capacity(obstacles.len());
        let mut west_edges = Vec::with_capacity(obstacles.len());
        for (id, r) in obstacles.iter().enumerate() {
            north_edges.push((r.xmin, r.xmax, r.ymin, id));
            south_edges.push((r.xmin, r.xmax, r.ymax, id));
            east_edges.push((r.ymin, r.ymax, r.xmin, id));
            west_edges.push((r.ymin, r.ymax, r.xmax, id));
        }
        // North/south slabs are keyed on x, east/west slabs on y: a position
        // is dirty when it meets the closed perpendicular extent of any
        // edited rectangle.
        let dirty_x: Vec<(Coord, Coord)> = edited.iter().map(|r| (r.xmin, r.xmax)).collect();
        let dirty_y: Vec<(Coord, Coord)> = edited.iter().map(|r| (r.ymin, r.ymax)).collect();
        let (north, rn) = DirIndex::build_delta(&north_edges, true, &old.north, old_to_new, &dirty_x);
        let (south, rs) = DirIndex::build_delta(&south_edges, false, &old.south, old_to_new, &dirty_x);
        let (east, re) = DirIndex::build_delta(&east_edges, true, &old.east, old_to_new, &dirty_y);
        let (west, rw) = DirIndex::build_delta(&west_edges, false, &old.west, old_to_new, &dirty_y);
        let mut reuse = rn;
        reuse.merge(rs);
        reuse.merge(re);
        reuse.merge(rw);
        (ShootIndex { north, south, east, west }, reuse)
    }

    /// Is the open axis-parallel segment `a`–`b` free of obstacle interiors,
    /// **assuming `a` is not strictly inside an obstacle**?  One ray shot:
    /// the segment is clear iff the first obstacle in its direction is at
    /// least `|ab|` away.  Callers that cannot guarantee the precondition
    /// must use [`ObstacleIndex::segment_clear`](crate::ObstacleIndex::segment_clear),
    /// which adds the containment test (an obstacle surrounding `a` has no
    /// facing edge ahead of the ray and would be invisible here).
    pub fn segment_clear_from_outside(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let dir = if a.x == b.x {
            if b.y > a.y {
                Dir::North
            } else {
                Dir::South
            }
        } else {
            debug_assert_eq!(a.y, b.y, "segment must be axis-parallel");
            if b.x > a.x {
                Dir::East
            } else {
                Dir::West
            }
        };
        match self.shoot(a, dir) {
            None => true,
            Some(hit) => hit.distance_from(a) >= a.l1(b),
        }
    }

    /// First obstacle hit from `p` in direction `dir`, in `O(log^2 n)`.
    pub fn shoot(&self, p: Point, dir: Dir) -> Option<Hit> {
        match dir {
            Dir::North => self.north.query(p.x, p.y).map(|(y, rect)| Hit { rect, point: Point::new(p.x, y) }),
            Dir::South => self.south.query(p.x, p.y).map(|(y, rect)| Hit { rect, point: Point::new(p.x, y) }),
            Dir::East => self.east.query(p.y, p.x).map(|(x, rect)| Hit { rect, point: Point::new(x, p.y) }),
            Dir::West => self.west.query(p.y, p.x).map(|(x, rect)| Hit { rect, point: Point::new(x, p.y) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::rect::Rect;

    fn obstacles() -> ObstacleSet {
        ObstacleSet::new(vec![
            Rect::new(2, 2, 6, 4),
            Rect::new(8, 1, 12, 9),
            Rect::new(3, 6, 5, 8),
            Rect::new(-4, -4, -1, 10),
        ])
    }

    #[test]
    fn naive_hits() {
        let obs = obstacles();
        let hit = shoot_naive(&obs, pt(4, 0), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 0);
        assert_eq!(hit.point, pt(4, 2));
        let hit = shoot_naive(&obs, pt(4, 5), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 2);
        let hit = shoot_naive(&obs, pt(4, 5), Dir::South, None).unwrap();
        assert_eq!(hit.point, pt(4, 4));
        let hit = shoot_naive(&obs, pt(0, 3), Dir::East, None).unwrap();
        assert_eq!(hit.point, pt(2, 3));
        let hit = shoot_naive(&obs, pt(0, 3), Dir::West, None).unwrap();
        assert_eq!(hit.point, pt(-1, 3));
        // grazing along the edge: x == xmin is not a hit
        assert_eq!(shoot_naive(&obs, pt(2, 0), Dir::North, None), None);
        // skip works
        let hit = shoot_naive(&obs, pt(4, 3), Dir::North, Some(0)).unwrap();
        assert_eq!(hit.rect, 2);
    }

    #[test]
    fn naive_zero_distance_hit() {
        let obs = obstacles();
        // point on the bottom edge of rect 0 shooting north hits it at distance 0
        let hit = shoot_naive(&obs, pt(4, 2), Dir::North, None).unwrap();
        assert_eq!(hit.rect, 0);
        assert_eq!(hit.distance_from(pt(4, 2)), 0);
    }

    #[test]
    fn index_matches_naive_on_fixed_cases() {
        let obs = obstacles();
        let idx = ShootIndex::build(&obs);
        for x in -6..15 {
            for y in -6..12 {
                let p = pt(x, y);
                if obs.containing_obstacle(p).is_some() {
                    continue;
                }
                for dir in Dir::ALL {
                    let a = shoot_naive(&obs, p, dir, None).map(|h| h.point);
                    let b = idx.shoot(p, dir).map(|h| h.point);
                    assert_eq!(a, b, "mismatch at {:?} dir {:?}", p, dir);
                }
            }
        }
    }

    #[test]
    fn index_on_empty_set() {
        let obs = ObstacleSet::empty();
        let idx = ShootIndex::build(&obs);
        assert_eq!(idx.shoot(pt(0, 0), Dir::North), None);
        assert_eq!(shoot_naive(&obs, pt(0, 0), Dir::West, None), None);
    }

    #[test]
    fn index_matches_naive_randomised() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            // random disjoint-ish rects on a coarse grid (overlap does not
            // matter for ray-shooting equivalence testing)
            let rects: Vec<Rect> = (0..30)
                .map(|_| {
                    let x = rng.gen_range(-50..50);
                    let y = rng.gen_range(-50..50);
                    let w = rng.gen_range(1i64..8);
                    let h = rng.gen_range(1i64..8);
                    Rect::new(x, y, x + w, y + h)
                })
                .collect();
            let obs = ObstacleSet::new(rects);
            let idx = ShootIndex::build(&obs);
            for _ in 0..200 {
                let p = pt(rng.gen_range(-60..60), rng.gen_range(-60..60));
                for dir in Dir::ALL {
                    let a = shoot_naive(&obs, p, dir, None).map(|h| (h.point, h.rect));
                    let b = idx.shoot(p, dir).map(|h| (h.point, h.rect));
                    // hit points must agree; the rect may differ if two edges
                    // are collinear, so compare points only
                    assert_eq!(a.map(|v| v.0), b.map(|v| v.0), "p={:?} dir={:?}", p, dir);
                }
            }
        }
    }

    fn assert_dir_identical(delta: &DirIndex, fresh: &DirIndex, what: &str) {
        assert_eq!(delta.coords, fresh.coords, "{what}: coords");
        assert_eq!(delta.size, fresh.size, "{what}: size");
        assert_eq!(delta.nodes, fresh.nodes, "{what}: tree nodes");
        assert_eq!(delta.slab_starts, fresh.slab_starts, "{what}: slab starts");
        assert_eq!(delta.slab_entries, fresh.slab_entries, "{what}: slab entries");
        assert_eq!(delta.forward, fresh.forward, "{what}: forward");
    }

    fn assert_shoot_identical(delta: &ShootIndex, fresh: &ShootIndex) {
        assert_dir_identical(&delta.north, &fresh.north, "north");
        assert_dir_identical(&delta.south, &fresh.south, "south");
        assert_dir_identical(&delta.east, &fresh.east, "east");
        assert_dir_identical(&delta.west, &fresh.west, "west");
    }

    /// Random disjoint rects on an odd-coordinate grid (unit cells at odd
    /// coordinates never touch, so insertions stay disjoint by construction).
    fn sparse_scene(rng: &mut impl rand::Rng, n: usize) -> Vec<Rect> {
        use std::collections::HashSet;
        let mut cells = HashSet::new();
        let mut rects = Vec::new();
        while rects.len() < n {
            let cx = rng.gen_range(-40i64..40);
            let cy = rng.gen_range(-40i64..40);
            if cells.insert((cx, cy)) {
                rects.push(Rect::new(4 * cx, 4 * cy, 4 * cx + 2, 4 * cy + 2));
            }
        }
        rects
    }

    #[test]
    fn delta_build_is_field_identical_to_fresh_build() {
        use crate::rect::SceneDelta;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..30 {
            let rects = sparse_scene(&mut rng, 40);
            let obs = ObstacleSet::new(rects.clone());
            let old = ShootIndex::build(&obs);
            // random delta: remove a few, insert a few fresh disjoint cells
            let mut delta = SceneDelta::default();
            let mut removed = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(0..4) {
                let id = rng.gen_range(0..obs.len());
                if removed.insert(id) {
                    delta.remove.push(id);
                }
            }
            let taken: std::collections::HashSet<(Coord, Coord)> = rects.iter().map(|r| (r.xmin, r.ymin)).collect();
            for _ in 0..rng.gen_range(0..4) {
                let cx = rng.gen_range(-40i64..40);
                let cy = rng.gen_range(-40i64..40);
                let r = Rect::new(4 * cx, 4 * cy, 4 * cx + 2, 4 * cy + 2);
                if !taken.contains(&(r.xmin, r.ymin)) && !delta.insert.contains(&r) {
                    delta.insert.push(r);
                }
            }
            let applied = obs.apply_delta(&delta).unwrap();
            let fresh = ShootIndex::build(&applied.obstacles);
            let (built, reuse) =
                ShootIndex::build_delta(&applied.obstacles, &old, &applied.edited, &applied.old_to_new);
            assert_shoot_identical(&built, &fresh);
            if delta.is_empty() {
                assert_eq!(reuse.rebuilt, 0, "round {round}: empty delta must reuse everything");
            }
        }
    }

    #[test]
    fn far_away_edit_reuses_most_slab_columns() {
        use crate::rect::SceneDelta;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let rects = sparse_scene(&mut rng, 200);
        let obs = ObstacleSet::new(rects);
        let old = ShootIndex::build(&obs);
        // one small rect far outside the cluster
        let delta = SceneDelta::inserting(vec![Rect::new(900, 900, 902, 902)]);
        let applied = obs.apply_delta(&delta).unwrap();
        let (built, reuse) = ShootIndex::build_delta(&applied.obstacles, &old, &applied.edited, &applied.old_to_new);
        assert_shoot_identical(&built, &ShootIndex::build(&applied.obstacles));
        let total = reuse.reused + reuse.rebuilt;
        assert!(reuse.reused * 10 >= total * 9, "far-away insert should reuse >=90% of slab columns: {:?}", reuse);
    }
}
