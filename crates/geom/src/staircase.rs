//! The `MAX_NE / MAX_NW / MAX_SE / MAX_SW` staircases of a set of rectangles
//! (Fig. 1 of the paper), maximal points, and rectilinear convex hulls /
//! envelopes (Fig. 2).
//!
//! `MAX_NE(R')` is the lowest-leftmost decreasing unbounded staircase that is
//! above every rectangle of `R'`; it passes through the maximal elements of
//! the upper-right corners of `R'`.  The other three staircases are the
//! analogous constructions in the other quadrants.  Because the rest of the
//! workspace works inside a bounding window, the staircases returned here are
//! clamped to a caller-supplied window rectangle.

use crate::chain::Chain;
use crate::point::{Coord, Point};
use crate::rect::{ObstacleSet, Rect};
use crate::region::StairRegion;

/// The four diagonal quadrants used to name the staircases of Fig. 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quadrant {
    /// North-east (`+x`, `+y`).
    NE,
    /// North-west (`-x`, `+y`).
    NW,
    /// South-east (`+x`, `-y`).
    SE,
    /// South-west (`-x`, `-y`).
    SW,
}

impl Quadrant {
    /// All four quadrants.
    pub const ALL: [Quadrant; 4] = [Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW];

    /// Sign transform `(sx, sy)` mapping this quadrant's construction onto
    /// the canonical NE construction.
    fn signs(self) -> (i64, i64) {
        match self {
            Quadrant::NE => (1, 1),
            Quadrant::NW => (-1, 1),
            Quadrant::SE => (1, -1),
            Quadrant::SW => (-1, -1),
        }
    }
}

/// The maximal elements of a point set under NE dominance: points `p` such
/// that no other point has both a larger-or-equal x and a larger-or-equal y
/// (with at least one strict).  Returned sorted by increasing x (and hence
/// decreasing y).
pub fn maximal_points_ne(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| b.x.cmp(&a.x).then(b.y.cmp(&a.y)));
    let mut out: Vec<Point> = Vec::new();
    let mut best_y = Coord::MIN;
    for p in pts {
        if p.y > best_y {
            out.push(p);
            best_y = p.y;
        }
    }
    out.reverse();
    out
}

/// Maximal points of `points` in the given quadrant direction.
pub fn maximal_points(points: &[Point], quadrant: Quadrant) -> Vec<Point> {
    let (sx, sy) = quadrant.signs();
    let mapped: Vec<Point> = points.iter().map(|p| Point::new(p.x * sx, p.y * sy)).collect();
    let mut maxi = maximal_points_ne(&mapped);
    for p in &mut maxi {
        *p = Point::new(p.x * sx, p.y * sy);
    }
    maxi.sort_by_key(|p| p.x);
    maxi
}

/// `MAX_q(R')` clamped to `window`: the extremal staircase of the rectangle
/// set in quadrant `q` (Fig. 1).  Returns `None` for an empty set.
///
/// The chain is returned as a left-to-right walk.  For `NE`/`SW` it is a
/// decreasing staircase, for `NW`/`SE` an increasing one.
pub fn max_staircase(rects: &ObstacleSet, quadrant: Quadrant, window: Rect) -> Option<Chain> {
    if rects.is_empty() {
        return None;
    }
    let (sx, sy) = quadrant.signs();
    // Relevant corner of each rectangle under the sign transform is its
    // upper-right corner in transformed coordinates.
    let corners: Vec<Point> = rects
        .iter()
        .map(|r| {
            let xs = [r.xmin * sx, r.xmax * sx];
            let ys = [r.ymin * sy, r.ymax * sy];
            Point::new(*xs.iter().max().unwrap(), *ys.iter().max().unwrap())
        })
        .collect();
    let maxi = maximal_points_ne(&corners);
    let w = Rect {
        xmin: (window.xmin * sx).min(window.xmax * sx),
        xmax: (window.xmin * sx).max(window.xmax * sx),
        ymin: (window.ymin * sy).min(window.ymax * sy),
        ymax: (window.ymin * sy).max(window.ymax * sy),
    };
    // Build the canonical NE staircase in transformed coordinates:
    // y(x) = max { c.y : c.x >= x }, drawn from the window's left edge and
    // dropping to the window's bottom edge after the last maximal point.
    let mut pts: Vec<Point> = Vec::with_capacity(2 * maxi.len() + 2);
    let first = maxi[0];
    pts.push(Point::new(w.xmin, first.y.min(w.ymax)));
    for i in 0..maxi.len() {
        let m = maxi[i];
        pts.push(Point::new(m.x, m.y));
        let next_y = if i + 1 < maxi.len() { maxi[i + 1].y } else { w.ymin };
        pts.push(Point::new(m.x, next_y));
    }
    // Map back to original coordinates.
    let mapped: Vec<Point> = pts.iter().map(|p| Point::new(p.x * sx, p.y * sy)).collect();
    Some(Chain::new(mapped))
}

/// A step function over x described by breakpoints: value on `[x_i, x_{i+1})`
/// is `y_i`.  Helper for assembling rectilinear hulls.
struct StepFn {
    xs: Vec<Coord>,
    ys: Vec<Coord>,
}

impl StepFn {
    fn eval(&self, x: Coord) -> Coord {
        match self.xs.partition_point(|&b| b <= x) {
            0 => self.ys[0],
            k => self.ys[k - 1],
        }
    }
}

fn upper_profile(points: &[Point]) -> StepFn {
    // min over the NE and NW profiles: NE(x) = max{p.y : p.x >= x},
    // NW(x) = max{p.y : p.x <= x}.
    let mut xs: Vec<Coord> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    xs.dedup();
    let ys = xs
        .iter()
        .map(|&x| {
            let ne = points.iter().filter(|p| p.x >= x).map(|p| p.y).max().unwrap_or(Coord::MIN);
            let nw = points.iter().filter(|p| p.x <= x).map(|p| p.y).max().unwrap_or(Coord::MIN);
            ne.min(nw)
        })
        .collect();
    StepFn { xs, ys }
}

fn lower_profile(points: &[Point]) -> StepFn {
    let mut xs: Vec<Coord> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    xs.dedup();
    let ys = xs
        .iter()
        .map(|&x| {
            let se = points.iter().filter(|p| p.x >= x).map(|p| p.y).min().unwrap_or(Coord::MAX);
            let sw = points.iter().filter(|p| p.x <= x).map(|p| p.y).min().unwrap_or(Coord::MAX);
            se.max(sw)
        })
        .collect();
    StepFn { xs, ys }
}

/// The rectilinear convex hull of a point set, when it exists as a connected
/// region (the paper's `Env(R')` coincides with it in that case, Fig. 2(c)).
/// Returns `None` when the hull is degenerate (the four staircases do not
/// bound a two-dimensional connected region), which corresponds to the
/// paper's cases (i)/(ii) in which `Env(R')` needs the extra connecting
/// segment.
pub fn rectilinear_hull(points: &[Point]) -> Option<StairRegion> {
    if points.len() < 2 {
        return None;
    }
    let upper = upper_profile(points);
    let lower = lower_profile(points);
    let xs = &upper.xs;
    // The hull is connected and two-dimensional only if lower < upper on the
    // interior of the x-range (allowing equality at the two extreme columns).
    for (i, &x) in xs.iter().enumerate() {
        let lo = lower.eval(x);
        let hi = upper.eval(x);
        if lo > hi {
            return None;
        }
        if i > 0 && i + 1 < xs.len() && lo >= hi {
            return None;
        }
    }
    if xs.len() < 2 {
        return None;
    }
    // A genuine two-dimensional hull needs some column where lower < upper.
    if !xs.iter().any(|&x| lower.eval(x) < upper.eval(x)) {
        return None;
    }
    // Walk the lower profile left-to-right, then the upper profile
    // right-to-left, inserting the vertical jumps.
    let mut verts: Vec<Point> = Vec::new();
    for i in 0..xs.len() {
        let x = xs[i];
        let y = lower.eval(x);
        verts.push(Point::new(x, y));
        if i + 1 < xs.len() {
            let ynext = lower.eval(xs[i + 1]);
            if ynext != y {
                verts.push(Point::new(xs[i + 1], y));
            }
        }
    }
    for i in (0..xs.len()).rev() {
        let x = xs[i];
        let y = upper.eval(x);
        verts.push(Point::new(x, y));
        if i > 0 {
            let yprev = upper.eval(xs[i - 1]);
            if yprev != y {
                verts.push(Point::new(xs[i - 1], y));
            }
        }
    }
    Some(StairRegion::new(verts))
}

/// The envelope region of a set of rectangles: the rectilinear hull of their
/// corner points (when it exists as a connected region).
pub fn envelope(rects: &ObstacleSet, _window: Rect) -> Option<StairRegion> {
    let corners: Vec<Point> = rects.vertices();
    rectilinear_hull(&corners)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Side;
    use crate::point::pt;

    fn sample() -> ObstacleSet {
        ObstacleSet::new(vec![
            Rect::new(1, 6, 3, 8),
            Rect::new(5, 4, 7, 7),
            Rect::new(8, 1, 10, 3),
            Rect::new(2, 1, 4, 3),
        ])
    }

    #[test]
    fn maximal_points_basic() {
        let pts = vec![pt(1, 5), pt(2, 3), pt(4, 4), pt(5, 1), pt(3, 2)];
        let maxi = maximal_points_ne(&pts);
        assert_eq!(maxi, vec![pt(1, 5), pt(4, 4), pt(5, 1)]);
        let maxi_sw = maximal_points(&pts, Quadrant::SW);
        assert!(maxi_sw.contains(&pt(1, 5)) || maxi_sw.contains(&pt(2, 3)));
        assert!(maxi_sw.iter().all(|p| pts.contains(p)));
    }

    #[test]
    fn max_ne_staircase_is_above_all_rects() {
        let obs = sample();
        let window = obs.bbox().unwrap().expand(5);
        let chain = max_staircase(&obs, Quadrant::NE, window).unwrap();
        assert!(chain.is_staircase());
        // every rectangle's upper-right corner is on or below the chain
        for r in obs.iter() {
            let side = chain.side_of(r.ur());
            assert_ne!(side, Side::Above, "rect {:?} pokes above MAX_NE", r);
        }
        // the chain is decreasing
        assert!(chain.first().y >= chain.last().y);
    }

    #[test]
    fn max_sw_staircase_is_below_all_rects() {
        let obs = sample();
        let window = obs.bbox().unwrap().expand(5);
        let chain = max_staircase(&obs, Quadrant::SW, window).unwrap();
        assert!(chain.is_staircase());
        for r in obs.iter() {
            let side = chain.side_of(r.ll());
            assert_ne!(side, Side::Below, "rect {:?} pokes below MAX_SW", r);
        }
    }

    #[test]
    fn all_four_staircases_exist_and_are_monotone() {
        let obs = sample();
        let window = obs.bbox().unwrap().expand(5);
        for q in Quadrant::ALL {
            let chain = max_staircase(&obs, q, window).unwrap();
            assert!(chain.is_staircase(), "{:?} not a staircase", q);
            assert!(chain.num_segments() <= 2 * obs.len() + 2);
        }
        assert!(max_staircase(&ObstacleSet::empty(), Quadrant::NE, window).is_none());
    }

    #[test]
    fn hull_of_rectangle_corners_is_rectangle() {
        let pts = Rect::new(0, 0, 10, 6).corners().to_vec();
        let hull = rectilinear_hull(&pts).unwrap();
        assert_eq!(hull.signed_area2(), 2 * 10 * 6);
        assert_eq!(hull.num_vertices(), 4);
    }

    #[test]
    fn hull_contains_all_points() {
        let obs = sample();
        let hull = envelope(&obs, obs.bbox().unwrap().expand(5)).unwrap();
        for v in obs.vertices() {
            assert!(hull.contains(v), "{:?} outside hull", v);
        }
        assert!(hull.is_rectilinearly_convex());
    }

    #[test]
    fn degenerate_hull_returns_none() {
        // Two points on a line: no two-dimensional hull.
        assert!(rectilinear_hull(&[pt(0, 0), pt(5, 0)]).is_none());
        // Anti-diagonal points whose staircases cross: degenerate envelope
        // (paper Fig. 2(a)/(b)) — the connected 2-D hull does not exist.
        assert!(rectilinear_hull(&[pt(0, 10), pt(10, 0)]).is_none());
    }
}
