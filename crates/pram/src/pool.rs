//! Running a computation on a bounded number of workers.
//!
//! Experiment E9 measures wall-clock speedup of the construction algorithms
//! as a function of the number of processors `p` — the empirical counterpart
//! of Brent's theorem.  This module wraps rayon thread pools so a closure
//! (and every rayon `join`/parallel iterator it spawns) runs on exactly `p`
//! workers of a dedicated work-stealing pool.

/// Run `f` on a dedicated rayon pool with exactly `threads` workers and
/// return its result.
pub fn run_on_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(threads.max(1)).build().expect("failed to build thread pool");
    pool.install(f)
}

/// Measure the wall-clock time of `f` on pools of each size in `sizes`,
/// returning `(threads, seconds)` pairs.  The closure is run once per size.
pub fn scaling_curve<T: Send>(sizes: &[usize], mut f: impl FnMut() -> T + Send) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&p| {
            let start = std::time::Instant::now();
            let _ = run_on_pool(p, &mut f);
            (p, start.elapsed().as_secs_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_limits_thread_count() {
        let observed = run_on_pool(2, rayon::current_num_threads);
        assert_eq!(observed, 2);
        let observed = run_on_pool(1, rayon::current_num_threads);
        assert_eq!(observed, 1);
    }

    #[test]
    fn work_completes_on_small_pool() {
        let sum: u64 = run_on_pool(2, || (0..100_000u64).into_par_iter().sum());
        assert_eq!(sum, 100_000 * 99_999 / 2);
    }

    #[test]
    fn scaling_curve_reports_each_size() {
        let curve = scaling_curve(&[1, 2], || (0..10_000u64).into_par_iter().map(|x| x * x).sum::<u64>());
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 1);
        assert!(curve.iter().all(|&(_, secs)| secs >= 0.0));
    }
}
