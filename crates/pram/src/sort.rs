//! Parallel sorting — the paper's reference [10] (Cole's parallel merge
//! sort).  The paper only needs "sort `V_R` in `O(log n)` time with `O(n)`
//! processors" as a black box; we expose rayon's parallel merge/quick sort,
//! which has the same `O(n log n)` work and logarithmic critical path, plus a
//! by-key convenience wrapper.

use rayon::prelude::*;

/// Sort a vector in parallel.
pub fn parallel_sort<T: Ord + Send>(mut v: Vec<T>) -> Vec<T> {
    v.par_sort();
    v
}

/// Sort a vector in parallel by a key extraction function.
pub fn parallel_sort_by_key<T, K, F>(mut v: Vec<T>, key: F) -> Vec<T>
where
    T: Send,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    v.par_sort_by_key(|x| key(x));
    v
}

/// Sort and deduplicate (used for coordinate compression throughout the
/// workspace).
pub fn sorted_unique<T: Ord + Send>(v: Vec<T>) -> Vec<T> {
    let mut v = parallel_sort(v);
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn sorts_random_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let v: Vec<i64> = (0..50_000).map(|_| rng.gen_range(-10_000..10_000)).collect();
        let sorted = parallel_sort(v.clone());
        let mut expect = v;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sorts_by_key() {
        let v = vec![(3, 'a'), (1, 'b'), (2, 'c')];
        let sorted = parallel_sort_by_key(v, |&(k, _)| k);
        assert_eq!(sorted, vec![(1, 'b'), (2, 'c'), (3, 'a')]);
    }

    #[test]
    fn sorted_unique_dedups() {
        assert_eq!(sorted_unique(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(sorted_unique(Vec::<i32>::new()), Vec::<i32>::new());
    }
}
