//! Parallel prefix (scan) — the paper's references [18, 19].
//!
//! Blocked two-pass algorithm: split the input into `O(p)` blocks, reduce
//! each block in parallel, scan the block sums sequentially (there are few),
//! then expand each block in parallel.  Work `O(n)`, depth `O(n/p + p)`.

use rayon::prelude::*;

/// Exclusive prefix scan under an associative operation with identity.
/// `out[i] = id ⊕ a[0] ⊕ ... ⊕ a[i-1]`.
pub fn exclusive_scan<T, F>(input: &[T], identity: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = rayon::current_num_threads().max(1);
    let block = (n / (threads * 4)).max(1024).min(n);
    let blocks: Vec<&[T]> = input.chunks(block).collect();
    // Pass 1: reduce each block.
    let sums: Vec<T> =
        blocks.par_iter().map(|chunk| chunk.iter().fold(identity.clone(), |acc, x| op(&acc, x))).collect();
    // Scan the block sums sequentially (few of them).
    let mut offsets = Vec::with_capacity(sums.len());
    let mut acc = identity.clone();
    for s in &sums {
        offsets.push(acc.clone());
        acc = op(&acc, s);
    }
    // Pass 2: expand each block.
    let mut out: Vec<T> = vec![identity.clone(); n];
    out.par_chunks_mut(block).zip(blocks.par_iter()).zip(offsets.par_iter()).for_each(
        |((out_chunk, in_chunk), offset)| {
            let mut acc = offset.clone();
            for (o, x) in out_chunk.iter_mut().zip(in_chunk.iter()) {
                *o = acc.clone();
                acc = op(&acc, x);
            }
        },
    );
    out
}

/// Inclusive prefix scan: `out[i] = a[0] ⊕ ... ⊕ a[i]`.
pub fn inclusive_scan<T, F>(input: &[T], identity: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let mut out = exclusive_scan(input, identity, &op);
    for (o, x) in out.iter_mut().zip(input.iter()) {
        *o = op(o, x);
    }
    out
}

/// Exclusive prefix sums of `usize` values — the common case used for
/// compaction and processor allocation (Brent scheduling).
pub fn prefix_sums(input: &[usize]) -> Vec<usize> {
    exclusive_scan(input, 0usize, |a, b| a + b)
}

/// Parallel compaction: keep the elements selected by `keep`, preserving
/// order, using a prefix scan for output placement (the standard PRAM
/// array-packing idiom).
pub fn compact<T: Clone + Send + Sync>(input: &[T], keep: &[bool]) -> Vec<T> {
    assert_eq!(input.len(), keep.len());
    let flags: Vec<usize> = keep.iter().map(|&k| usize::from(k)).collect();
    let pos = prefix_sums(&flags);
    let total = pos.last().copied().unwrap_or(0) + flags.last().copied().unwrap_or(0);
    let mut out: Vec<Option<T>> = vec![None; total];
    let slots: Vec<(usize, usize)> = (0..input.len()).filter(|&i| keep[i]).map(|i| (pos[i], i)).collect();
    let filled: Vec<(usize, T)> = slots.into_par_iter().map(|(slot, i)| (slot, input[i].clone())).collect();
    for (slot, value) in filled {
        out[slot] = Some(value);
    }
    out.into_iter().map(|x| x.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_matches_sequential() {
        let input: Vec<i64> = (1..=1000).collect();
        let out = exclusive_scan(&input, 0i64, |a, b| a + b);
        let mut expect = Vec::new();
        let mut acc = 0;
        for x in &input {
            expect.push(acc);
            acc += x;
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn inclusive_scan_matches_sequential() {
        let input: Vec<i64> = (0..500).map(|i| (i * 7) % 13 - 6).collect();
        let out = inclusive_scan(&input, 0i64, |a, b| a + b);
        let mut acc = 0;
        let expect: Vec<i64> = input
            .iter()
            .map(|x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn scan_with_non_commutative_op() {
        // string concatenation is associative but not commutative
        let input: Vec<String> = ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect();
        let out = inclusive_scan(&input, String::new(), |a, b| format!("{a}{b}"));
        assert_eq!(out.last().unwrap(), "abcde");
        assert_eq!(out[2], "abc");
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i64> = vec![];
        assert!(exclusive_scan(&empty, 0i64, |a, b| a + b).is_empty());
        assert_eq!(exclusive_scan(&[42i64], 0, |a, b| a + b), vec![0]);
        assert_eq!(inclusive_scan(&[42i64], 0, |a, b| a + b), vec![42]);
    }

    #[test]
    fn prefix_sums_and_compact() {
        let values: Vec<u32> = (0..200).collect();
        let keep: Vec<bool> = values.iter().map(|v| v % 3 == 0).collect();
        let compacted = compact(&values, &keep);
        let expect: Vec<u32> = values.iter().copied().filter(|v| v % 3 == 0).collect();
        assert_eq!(compacted, expect);
        assert_eq!(prefix_sums(&[1, 2, 3, 4]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn large_input_stress() {
        let input: Vec<i64> = (0..100_000).map(|i| i % 17).collect();
        let out = inclusive_scan(&input, 0i64, |a, b| a + b);
        assert_eq!(*out.last().unwrap(), input.iter().sum::<i64>());
    }
}
