//! Euler-tour tree computations — the paper's reference [36]
//! (Tarjan–Vishkin).  The paper uses the Euler-tour technique to (a) extract
//! the root path of a node in the trapezoid forest (Path Tracing Lemma 6) and
//! (b) compute node depths in shortest-path trees (Section 8).
//!
//! We provide a rooted forest abstraction with parallel-friendly depth
//! computation (pointer jumping) and root-path extraction.

use rayon::prelude::*;

/// A rooted forest on nodes `0..n`, described by parent pointers
/// (`parent[v] == None` for roots).
#[derive(Clone, Debug)]
pub struct Forest {
    parent: Vec<Option<usize>>,
}

impl Forest {
    /// Build from parent pointers.  Panics if a cycle is detected.
    pub fn new(parent: Vec<Option<usize>>) -> Self {
        let forest = Forest { parent };
        assert!(forest.depths_checked().is_some(), "parent pointers contain a cycle");
        forest
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `v`.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Depths of every node (roots have depth 0), computed with pointer
    /// jumping: `O(n log n)` work, `O(log n)` rounds — the PRAM idiom used in
    /// place of list ranking.
    pub fn depths(&self) -> Vec<usize> {
        self.depths_checked().expect("cycle")
    }

    /// Pointer-doubling depth computation with explicit distance
    /// accumulation.  Returns `None` if a cycle is detected (the number of
    /// doubling rounds exceeds `log2(n) + 1`).
    fn depths_checked(&self) -> Option<Vec<usize>> {
        let n = self.parent.len();
        if n == 0 {
            return Some(Vec::new());
        }
        let mut jump: Vec<Option<usize>> = self.parent.clone();
        let mut dist: Vec<usize> = (0..n).map(|v| usize::from(jump[v].is_some())).collect();
        let max_rounds = (usize::BITS - n.leading_zeros()) as usize + 1;
        let mut rounds = 0usize;
        while jump.par_iter().any(|j| j.is_some()) {
            rounds += 1;
            if rounds > max_rounds {
                return None;
            }
            let next: Vec<(usize, Option<usize>)> = (0..n)
                .into_par_iter()
                .map(|v| match jump[v] {
                    None => (dist[v], None),
                    Some(p) => (dist[v] + dist[p], jump[p]),
                })
                .collect();
            for (v, (d, j)) in next.into_iter().enumerate() {
                dist[v] = d;
                jump[v] = j;
            }
        }
        Some(dist)
    }

    /// The path from `v` to the root of its tree, inclusive of both ends.
    pub fn root_path(&self, v: usize) -> Vec<usize> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
            assert!(path.len() <= self.parent.len(), "cycle in forest");
        }
        path
    }

    /// The root of the tree containing `v`.
    pub fn root_of(&self, v: usize) -> usize {
        *self.root_path(v).last().unwrap()
    }

    /// Children lists (useful for traversals in callers).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Forest {
        // tree 0: 0 <- 1 <- 2, 0 <- 3 ; tree 1: 4 <- 5
        Forest::new(vec![None, Some(0), Some(1), Some(0), None, Some(4)])
    }

    #[test]
    fn depths_are_correct() {
        let f = sample();
        assert_eq!(f.depths(), vec![0, 1, 2, 1, 0, 1]);
    }

    #[test]
    fn root_paths() {
        let f = sample();
        assert_eq!(f.root_path(2), vec![2, 1, 0]);
        assert_eq!(f.root_path(0), vec![0]);
        assert_eq!(f.root_of(5), 4);
        assert_eq!(f.root_of(3), 0);
    }

    #[test]
    fn children_lists() {
        let f = sample();
        let ch = f.children();
        assert_eq!(ch[0], vec![1, 3]);
        assert_eq!(ch[1], vec![2]);
        assert!(ch[2].is_empty());
    }

    #[test]
    fn long_chain_depths() {
        let n = 10_000;
        let parent: Vec<Option<usize>> = (0..n).map(|v| if v == 0 { None } else { Some(v - 1) }).collect();
        let f = Forest::new(parent);
        let d = f.depths();
        assert_eq!(d[0], 0);
        assert_eq!(d[n - 1], n - 1);
        assert_eq!(d[n / 2], n / 2);
    }

    #[test]
    #[should_panic]
    fn cycle_detection() {
        Forest::new(vec![Some(1), Some(0)]);
    }
}
