//! Level-ancestor queries — the paper's reference [5] (Berkman–Vishkin).
//!
//! Section 8 of the paper uses level-ancestor queries to cut a reported
//! shortest path (a root path in a shortest-path tree) into `⌈k / log n⌉`
//! pieces that are output in parallel.  Berkman–Vishkin achieve `O(1)` query
//! after linear-work preprocessing; we use the classic jump-pointer table
//! (`O(n log n)` preprocessing, `O(log n)` query), which changes none of the
//! experiment outcomes — the substitution is recorded in DESIGN.md §3.

use crate::euler::Forest;
use rayon::prelude::*;

/// Jump-pointer level-ancestor structure over a rooted forest.
pub struct LevelAncestor {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (or `v`'s root if shallower).
    up: Vec<Vec<usize>>,
    depth: Vec<usize>,
}

impl LevelAncestor {
    /// Preprocess a forest.  Work `O(n log n)`, fully parallel per level.
    pub fn build(forest: &Forest) -> Self {
        let n = forest.len();
        let depth = forest.depths();
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (usize::BITS - max_depth.leading_zeros()) as usize + 1;
        let mut up: Vec<Vec<usize>> = Vec::with_capacity(levels.max(1));
        let base: Vec<usize> = (0..n).map(|v| forest.parent(v).unwrap_or(v)).collect();
        up.push(base);
        for k in 1..levels.max(1) {
            let prev = &up[k - 1];
            let next: Vec<usize> = (0..n).into_par_iter().map(|v| prev[prev[v]]).collect();
            up.push(next);
        }
        LevelAncestor { up, depth }
    }

    /// Depth of node `v`.
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// The ancestor of `v` that is `steps` edges closer to the root.
    /// Saturates at the root.
    pub fn ancestor_at(&self, v: usize, steps: usize) -> usize {
        let mut steps = steps.min(self.depth[v]);
        let mut cur = v;
        let mut k = 0;
        while steps > 0 {
            if steps & 1 == 1 {
                cur = self.up[k][cur];
            }
            steps >>= 1;
            k += 1;
        }
        cur
    }

    /// The ancestor of `v` at absolute depth `d` (must satisfy
    /// `d <= depth(v)`).
    pub fn ancestor_at_depth(&self, v: usize, d: usize) -> usize {
        assert!(d <= self.depth[v]);
        self.ancestor_at(v, self.depth[v] - d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_forest(n: usize) -> Forest {
        Forest::new((0..n).map(|v| if v == 0 { None } else { Some(v - 1) }).collect())
    }

    #[test]
    fn ancestors_on_a_chain() {
        let f = chain_forest(100);
        let la = LevelAncestor::build(&f);
        assert_eq!(la.ancestor_at(99, 0), 99);
        assert_eq!(la.ancestor_at(99, 1), 98);
        assert_eq!(la.ancestor_at(99, 63), 36);
        assert_eq!(la.ancestor_at(99, 99), 0);
        assert_eq!(la.ancestor_at(99, 1000), 0); // saturates
        assert_eq!(la.ancestor_at_depth(99, 40), 40);
        assert_eq!(la.depth(57), 57);
    }

    #[test]
    fn ancestors_in_branching_tree() {
        //        0
        //      /   \
        //     1     2
        //    / \     \
        //   3   4     5
        //  /
        // 6
        let f = Forest::new(vec![None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(3)]);
        let la = LevelAncestor::build(&f);
        assert_eq!(la.ancestor_at(6, 1), 3);
        assert_eq!(la.ancestor_at(6, 2), 1);
        assert_eq!(la.ancestor_at(6, 3), 0);
        assert_eq!(la.ancestor_at(5, 1), 2);
        assert_eq!(la.ancestor_at_depth(6, 0), 0);
        assert_eq!(la.ancestor_at_depth(4, 1), 1);
    }

    #[test]
    fn consistent_with_naive_walk() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 500;
        let parent: Vec<Option<usize>> =
            (0..n).map(|v| if v == 0 { None } else { Some(rng.gen_range(0..v)) }).collect();
        let f = Forest::new(parent);
        let la = LevelAncestor::build(&f);
        for _ in 0..500 {
            let v = rng.gen_range(0..n);
            let steps = rng.gen_range(0..20);
            // naive walk
            let mut cur = v;
            for _ in 0..steps {
                if let Some(p) = f.parent(cur) {
                    cur = p;
                }
            }
            assert_eq!(la.ancestor_at(v, steps), cur);
        }
    }
}
