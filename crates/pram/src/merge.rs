//! Parallel merging of two sorted sequences — the paper's reference [35]
//! (Shiloach–Vishkin).  Divide-and-conquer dual binary search: split the
//! longer sequence at its midpoint, binary-search the split value in the
//! other sequence, and recurse on both halves in parallel.  Work `O(n + m)`,
//! depth `O(log(n + m))`.

/// Merge two sorted slices into a sorted vector.
pub fn parallel_merge<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = vec![None; a.len() + b.len()];
    merge_into(a, b, &mut out);
    out.into_iter().map(|x| x.unwrap()).collect()
}

fn merge_into<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T], out: &mut [Option<T>]) {
    const SEQ_CUTOFF: usize = 4096;
    if a.len() + b.len() <= SEQ_CUTOFF {
        let mut i = 0;
        let mut j = 0;
        for slot in out.iter_mut() {
            if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
                *slot = Some(a[i].clone());
                i += 1;
            } else {
                *slot = Some(b[j].clone());
                j += 1;
            }
        }
        return;
    }
    // Split the longer sequence at its midpoint.
    let (long, short, long_is_a) = if a.len() >= b.len() { (a, b, true) } else { (b, a, false) };
    let mid = long.len() / 2;
    let pivot = &long[mid];
    let cut = short.partition_point(|x| x < pivot);
    let (long_lo, long_hi) = long.split_at(mid);
    let (short_lo, short_hi) = short.split_at(cut);
    let (out_lo, out_hi) = out.split_at_mut(mid + cut);
    rayon::join(
        || {
            if long_is_a {
                merge_into(long_lo, short_lo, out_lo)
            } else {
                merge_into(short_lo, long_lo, out_lo)
            }
        },
        || {
            if long_is_a {
                merge_into(long_hi, short_hi, out_hi)
            } else {
                merge_into(short_hi, long_hi, out_hi)
            }
        },
    );
}

/// Merge two sorted slices and drop duplicates (used when combining
/// coordinate sets).
pub fn merge_dedup<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    let mut merged = parallel_merge(a, b);
    merged.dedup();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn merges_small() {
        assert_eq!(parallel_merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(parallel_merge::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(parallel_merge(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(parallel_merge(&[], &[7]), vec![7]);
    }

    #[test]
    fn merge_is_stable_for_duplicates() {
        let a = vec![1, 1, 2, 2, 3];
        let b = vec![1, 2, 2, 4];
        let m = parallel_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort();
        assert_eq!(m, expect);
    }

    #[test]
    fn merges_large_random() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let mut a: Vec<i64> = (0..20_000).map(|_| rng.gen_range(-1000..1000)).collect();
            let mut b: Vec<i64> = (0..35_000).map(|_| rng.gen_range(-1000..1000)).collect();
            a.sort();
            b.sort();
            let m = parallel_merge(&a, &b);
            let mut expect = [a, b].concat();
            expect.sort();
            assert_eq!(m, expect);
        }
    }

    #[test]
    fn merge_dedup_works() {
        assert_eq!(merge_dedup(&[1, 2, 4], &[2, 3, 4]), vec![1, 2, 3, 4]);
    }
}
