//! Work/depth accounting for the PRAM cost model.
//!
//! The paper states its results as (time, processors) pairs on a CREW PRAM.
//! On a multicore we can only measure wall-clock time, so the algorithms in
//! `rsp-core` additionally *count* the abstract operations they perform
//! (work `W`) and the length of their critical path (depth `T`).  The
//! benchmark harness prints both next to wall-clock time so that the paper's
//! claimed bounds (e.g. `W = O(n^2)`, `T = O(log^2 n)` for Section 5) can be
//! checked directly against the counters.

use crossbeam::atomic::AtomicCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe work/depth counter.
#[derive(Clone, Default)]
pub struct CostCounter {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    work: AtomicU64,
    depth: AtomicCell<u64>,
}

impl CostCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `amount` units of work (operations performed, regardless of
    /// which processor performs them).
    pub fn add_work(&self, amount: u64) {
        self.inner.work.fetch_add(amount, Ordering::Relaxed);
    }

    /// Record that a (parallel) phase of critical-path length `amount`
    /// completed.  Depths of sequentially composed phases add up; the caller
    /// is responsible for adding only once per parallel phase (i.e. the
    /// maximum over the branches, not the sum).
    pub fn add_depth(&self, amount: u64) {
        loop {
            let cur = self.inner.depth.load();
            if self.inner.depth.compare_exchange(cur, cur + amount).is_ok() {
                break;
            }
        }
    }

    /// Total recorded work.
    pub fn work(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Total recorded depth.
    pub fn depth(&self) -> u64 {
        self.inner.depth.load()
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.inner.work.store(0, Ordering::Relaxed);
        self.inner.depth.store(0);
    }

    /// Brent's theorem bound: the predicted time on `p` processors,
    /// `W/p + T`, in abstract operation units.
    pub fn brent_bound(&self, processors: u64) -> u64 {
        self.work() / processors.max(1) + self.depth()
    }
}

/// RAII guard that records one unit of depth (a phase) and `work` units of
/// work when dropped.  Convenient for instrumenting scoped phases.
pub struct CostGuard<'a> {
    counter: &'a CostCounter,
    work: u64,
}

impl<'a> CostGuard<'a> {
    pub fn phase(counter: &'a CostCounter, work: u64) -> Self {
        CostGuard { counter, work }
    }
}

impl Drop for CostGuard<'_> {
    fn drop(&mut self) {
        self.counter.add_work(self.work);
        self.counter.add_depth(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counters_accumulate() {
        let c = CostCounter::new();
        c.add_work(10);
        c.add_work(5);
        c.add_depth(3);
        assert_eq!(c.work(), 15);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.brent_bound(5), 3 + 3);
        assert_eq!(c.brent_bound(0), 15 + 3);
        c.reset();
        assert_eq!(c.work(), 0);
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn concurrent_work_updates_are_not_lost() {
        let c = CostCounter::new();
        (0..1000).into_par_iter().for_each(|_| c.add_work(1));
        assert_eq!(c.work(), 1000);
    }

    #[test]
    fn guard_records_on_drop() {
        let c = CostCounter::new();
        {
            let _g = CostGuard::phase(&c, 42);
        }
        {
            let _g = CostGuard::phase(&c, 8);
        }
        assert_eq!(c.work(), 50);
        assert_eq!(c.depth(), 2);
    }
}
