//! # rsp-pram — CREW-PRAM-style parallel primitives
//!
//! The paper's machine model is the CREW PRAM.  Real hardware is a
//! shared-memory multicore, and Brent's theorem (Theorem 1 of the paper) is
//! exactly the statement that any algorithm doing `W` operations in depth `T`
//! can be run by `p` processors in `O(W/p + T)` time — which is what a
//! work-stealing scheduler such as rayon delivers.  This crate provides the
//! PRAM building blocks the paper cites, implemented on top of rayon:
//!
//! * [`scan`] — parallel prefix (Kruskal/Ladner–Fischer, refs [18, 19]);
//! * [`merge`] — parallel merging of sorted sequences (Shiloach–Vishkin,
//!   ref [35]);
//! * [`sort`] — parallel sorting (Cole's merge sort, ref [10], realised with
//!   rayon's parallel sort — same `O(n log n)` work, `O(log n)`-ish depth);
//! * [`euler`] — Euler-tour tree computations (Tarjan–Vishkin, ref [36]):
//!   depths and root paths in rooted forests;
//! * [`level_ancestor`] — level-ancestor queries (Berkman–Vishkin, ref [5]),
//!   realised with jump pointers (`O(n log n)` preprocessing, `O(log n)`
//!   query; the substitution is documented in DESIGN.md §3);
//! * [`cost`] — work/depth accounting so benchmarks can report PRAM-model
//!   quantities next to wall-clock times;
//! * [`pool`] — helpers to run a closure on a pool of exactly `p` workers
//!   (used by the speedup experiments, E9).

pub mod cost;
pub mod euler;
pub mod level_ancestor;
pub mod merge;
pub mod pool;
pub mod scan;
pub mod sort;

pub use cost::{CostCounter, CostGuard};
pub use euler::Forest;
pub use level_ancestor::LevelAncestor;
