//! # rsp-workload — instance and query generators for the evaluation harness
//!
//! The paper contains no empirical evaluation, so the experiment suite
//! (DESIGN.md §5) defines its own workloads.  This crate generates them
//! reproducibly (seeded) and serialises them with serde so every benchmark
//! run can be replayed:
//!
//! * [`uniform_disjoint`] — `n` disjoint rectangles placed in random cells of
//!   a coarse grid with jittered size/position (the default workload, used by
//!   E1, E3, E4, E8, E9);
//! * [`clustered`] — obstacles concentrated in a few dense clusters
//!   (stress-tests the separator balance, E1);
//! * [`corridors`] — long thin walls with narrow gaps (stress-tests path
//!   detours and path-length `k`, E6);
//! * [`aspect_stress`] — extreme aspect-ratio rectangles;
//! * [`query_pairs`] — random query point pairs, optionally snapped to
//!   obstacle vertices (E5);
//! * [`edit_stream`] — seeded incremental-edit traces (insert / remove /
//!   move) that stay disjoint step by step, driving the scene-editing
//!   experiments (E15) and the `apply_delta` certification tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_geom::{ObstacleSet, Point, Rect, SceneDelta};
use serde::{Deserialize, Serialize};

/// A generated workload with its provenance, serialisable for replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Workload {
    pub name: String,
    pub seed: u64,
    pub obstacles: ObstacleSet,
}

impl Workload {
    pub fn n(&self) -> usize {
        self.obstacles.len()
    }
}

/// `n` pairwise-disjoint rectangles: random cells of a `side x side` grid
/// (side ≈ sqrt(2n)) each receive at most one rectangle, jittered inside the
/// cell.  Disjointness holds by construction.
pub fn uniform_disjoint(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = ((2 * n.max(1)) as f64).sqrt().ceil() as i64 + 1;
    let cell = 32i64;
    let mut cells: Vec<(i64, i64)> = (0..side).flat_map(|i| (0..side).map(move |j| (i, j))).collect();
    shuffle(&mut cells, &mut rng);
    let rects: Vec<Rect> = cells
        .iter()
        .take(n)
        .map(|&(ci, cj)| {
            let x0 = ci * cell + rng.gen_range(1i64..8);
            let y0 = cj * cell + rng.gen_range(1i64..8);
            let w = rng.gen_range(3..=cell - 10);
            let h = rng.gen_range(3..=cell - 10);
            Rect::new(x0, y0, x0 + w, y0 + h)
        })
        .collect();
    let obstacles = ObstacleSet::new(rects);
    debug_assert!(obstacles.validate_disjoint().is_ok());
    Workload { name: format!("uniform_disjoint(n={n})"), seed, obstacles }
}

/// Obstacles concentrated into `clusters` dense groups.
pub fn clustered(n: usize, clusters: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    let per = n.div_ceil(clusters);
    let side = ((2 * per.max(1)) as f64).sqrt().ceil() as i64 + 1;
    let cell = 20i64;
    let cluster_pitch = side * cell * 4;
    let mut rects = Vec::with_capacity(n);
    'outer: for c in 0..clusters {
        let ox = (c as i64 % 4) * cluster_pitch;
        let oy = (c as i64 / 4) * cluster_pitch;
        let mut cells: Vec<(i64, i64)> = (0..side).flat_map(|i| (0..side).map(move |j| (i, j))).collect();
        shuffle(&mut cells, &mut rng);
        for &(ci, cj) in cells.iter().take(per) {
            if rects.len() == n {
                break 'outer;
            }
            let x0 = ox + ci * cell + rng.gen_range(1i64..5);
            let y0 = oy + cj * cell + rng.gen_range(1i64..5);
            rects.push(Rect::new(x0, y0, x0 + rng.gen_range(2..=cell - 8), y0 + rng.gen_range(2..=cell - 8)));
        }
    }
    let obstacles = ObstacleSet::new(rects);
    debug_assert!(obstacles.validate_disjoint().is_ok());
    Workload { name: format!("clustered(n={n},k={clusters})"), seed, obstacles }
}

/// Long horizontal walls with one randomly placed gap each: forces long
/// detours and large segment counts `k` for reported paths.
pub fn corridors(walls: usize, width: i64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = width.max(20);
    let mut rects = Vec::new();
    for i in 0..walls {
        let y0 = (i as i64) * 10 + 5;
        let gap_at = rng.gen_range(1..width - 6);
        let gap_w = rng.gen_range(2i64..5);
        if gap_at > 0 {
            rects.push(Rect::new(0, y0, gap_at, y0 + 4));
        }
        if gap_at + gap_w < width {
            rects.push(Rect::new(gap_at + gap_w, y0, width, y0 + 4));
        }
    }
    let obstacles = ObstacleSet::new(rects);
    debug_assert!(obstacles.validate_disjoint().is_ok());
    Workload { name: format!("corridors(walls={walls})"), seed, obstacles }
}

/// Rectangles with extreme aspect ratios (very wide or very tall), laid out
/// on a coarse grid.
pub fn aspect_stress(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = ((2 * n.max(1)) as f64).sqrt().ceil() as i64 + 1;
    let cell = 40i64;
    let mut cells: Vec<(i64, i64)> = (0..side).flat_map(|i| (0..side).map(move |j| (i, j))).collect();
    shuffle(&mut cells, &mut rng);
    let rects: Vec<Rect> = cells
        .iter()
        .take(n)
        .map(|&(ci, cj)| {
            let x0 = ci * cell + 2;
            let y0 = cj * cell + 2;
            if rng.gen_bool(0.5) {
                Rect::new(x0, y0, x0 + cell - 6, y0 + rng.gen_range(1i64..4))
            } else {
                Rect::new(x0, y0, x0 + rng.gen_range(1i64..4), y0 + cell - 6)
            }
        })
        .collect();
    let obstacles = ObstacleSet::new(rects);
    debug_assert!(obstacles.validate_disjoint().is_ok());
    Workload { name: format!("aspect_stress(n={n})"), seed, obstacles }
}

/// Random query pairs inside the bounding box of the obstacles (expanded a
/// little), avoiding obstacle interiors.  If `snap_to_vertices` is set the
/// points are obstacle vertices instead.
pub fn query_pairs(obstacles: &ObstacleSet, count: usize, snap_to_vertices: bool, seed: u64) -> Vec<(Point, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 10, 10)).expand(5);
    let vertices = obstacles.vertices();
    let sample_point = |rng: &mut StdRng| -> Point {
        if snap_to_vertices && !vertices.is_empty() {
            vertices[rng.gen_range(0..vertices.len())]
        } else {
            loop {
                let p = Point::new(rng.gen_range(bbox.xmin..=bbox.xmax), rng.gen_range(bbox.ymin..=bbox.ymax));
                if obstacles.containing_obstacle(p).is_none() {
                    return p;
                }
            }
        }
    };
    (0..count).map(|_| (sample_point(&mut rng), sample_point(&mut rng))).collect()
}

/// A seeded trace of incremental scene edits (ECO-style: engineering change
/// orders over a fixed floorplan).  Each [`SceneDelta`] is expressed against
/// the scene produced by applying all the deltas before it — the same
/// convention as chaining
/// [`Router::apply_delta`](../rsp_core/router/struct.Router.html#method.apply_delta)
/// session to session — and every step keeps the scene pairwise-disjoint, so
/// the whole trace replays without validation errors on any base produced by
/// [`uniform_disjoint`], [`clustered`] or [`corridors`].
///
/// The mix is roughly 40% inserts, 30% removals and 30% moves (a removal
/// plus a re-insertion of the same rectangle translated by a small jitter,
/// in *one* delta).  Insert placements rejection-sample inside the slightly
/// expanded bounding box; a placement that cannot find free space after a
/// bounded number of tries falls outside the box to the east, so the stream
/// always has exactly `edits` steps.
pub fn edit_stream(base: &ObstacleSet, edits: usize, seed: u64) -> Vec<SceneDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = base.clone();
    let mut overflow = 0i64; // next free slot east of the bbox
    let mut stream = Vec::with_capacity(edits);
    for _ in 0..edits {
        let bbox = current.bbox().unwrap_or(Rect::new(0, 0, 64, 64)).expand(16);
        let disjoint_from_all = |scene: &ObstacleSet, cand: &Rect, skip: Option<usize>| {
            scene.iter().enumerate().all(|(i, r)| Some(i) == skip || !r.interiors_intersect(cand))
        };
        let mut place = |rng: &mut StdRng, current: &ObstacleSet, near: Option<Rect>, skip: Option<usize>| -> Rect {
            for _ in 0..64 {
                let w = rng.gen_range(2i64..=8);
                let h = rng.gen_range(2i64..=8);
                let (x0, y0) = match near {
                    // A move jitters within a small window around the old
                    // geometry; a plain insert samples the whole box.
                    Some(r) => (r.xmin + rng.gen_range(-24i64..=24), r.ymin + rng.gen_range(-24i64..=24)),
                    None => (rng.gen_range(bbox.xmin..bbox.xmax - w), rng.gen_range(bbox.ymin..bbox.ymax - h)),
                };
                let cand = Rect::new(x0, y0, x0 + w, y0 + h);
                if disjoint_from_all(current, &cand, skip) {
                    return cand;
                }
            }
            // Crowded scene: fall out of the bbox where space is guaranteed.
            overflow += 12;
            Rect::new(bbox.xmax + overflow, bbox.ymin, bbox.xmax + overflow + 4, bbox.ymin + 4)
        };
        let roll = rng.gen_range(0u32..10);
        let delta = if current.is_empty() || roll < 4 {
            SceneDelta::inserting(vec![place(&mut rng, &current, None, None)])
        } else if roll < 7 {
            SceneDelta::removing(vec![rng.gen_range(0..current.len())])
        } else {
            let id = rng.gen_range(0..current.len());
            let old = current.rects()[id];
            SceneDelta { insert: vec![place(&mut rng, &current, Some(old), Some(id))], remove: vec![id] }
        };
        current = current.apply_delta(&delta).expect("edit_stream keeps the scene valid").obstacles;
        stream.push(delta);
    }
    stream
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_disjoint_and_sized() {
        for n in [1, 5, 40, 150] {
            let w = uniform_disjoint(n, 7);
            assert_eq!(w.n(), n);
            assert!(w.obstacles.validate_disjoint().is_ok());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_disjoint(30, 42);
        let b = uniform_disjoint(30, 42);
        assert_eq!(a.obstacles.rects(), b.obstacles.rects());
        let c = uniform_disjoint(30, 43);
        assert_ne!(a.obstacles.rects(), c.obstacles.rects());
    }

    #[test]
    fn clustered_and_aspect_and_corridors_are_disjoint() {
        assert!(clustered(60, 4, 1).obstacles.validate_disjoint().is_ok());
        assert!(aspect_stress(50, 2).obstacles.validate_disjoint().is_ok());
        let w = corridors(10, 100, 3);
        assert!(w.obstacles.validate_disjoint().is_ok());
        assert!(w.n() >= 10);
    }

    #[test]
    fn query_pairs_avoid_interiors() {
        let w = uniform_disjoint(25, 9);
        let qs = query_pairs(&w.obstacles, 50, false, 11);
        assert_eq!(qs.len(), 50);
        for (a, b) in qs {
            assert!(w.obstacles.containing_obstacle(a).is_none());
            assert!(w.obstacles.containing_obstacle(b).is_none());
        }
        let vs = query_pairs(&w.obstacles, 20, true, 12);
        let vertices = w.obstacles.vertices();
        for (a, b) in vs {
            assert!(vertices.contains(&a) && vertices.contains(&b));
        }
    }

    #[test]
    fn edit_streams_replay_validly_on_every_base_family() {
        for base in [uniform_disjoint(20, 3).obstacles, clustered(24, 3, 4).obstacles, corridors(6, 60, 5).obstacles] {
            let stream = edit_stream(&base, 40, 11);
            assert_eq!(stream.len(), 40);
            let mut scene = base.clone();
            for delta in &stream {
                scene = scene.apply_delta(delta).expect("every step applies cleanly").obstacles;
                assert!(scene.validate_disjoint().is_ok());
            }
        }
    }

    #[test]
    fn edit_streams_are_deterministic_and_mixed() {
        let base = uniform_disjoint(16, 7).obstacles;
        assert_eq!(edit_stream(&base, 30, 9), edit_stream(&base, 30, 9));
        assert_ne!(edit_stream(&base, 30, 9), edit_stream(&base, 30, 10));
        let stream = edit_stream(&base, 60, 9);
        // All three edit kinds occur: pure inserts, pure removals, and moves
        // (remove + insert in one delta).
        assert!(stream.iter().any(|d| !d.insert.is_empty() && d.remove.is_empty()));
        assert!(stream.iter().any(|d| d.insert.is_empty() && !d.remove.is_empty()));
        assert!(stream.iter().any(|d| !d.insert.is_empty() && !d.remove.is_empty()));
        // Deltas serialise (they travel over the rsp-server wire).
        let json = serde_json::to_string(&stream).unwrap();
        let back: Vec<SceneDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn workload_serialises() {
        let w = uniform_disjoint(10, 5);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n(), 10);
        assert_eq!(back.obstacles.rects(), w.obstacles.rects());
    }
}
