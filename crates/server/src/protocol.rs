//! The versioned wire protocol: typed request/response enums, the
//! [`ServerError`] mirror of [`RspError`], and length-prefixed framing.
//!
//! Every message is one *frame*: a 1-byte protocol version, a big-endian
//! `u32` payload length, then the payload — the serde-JSON encoding of a
//! [`Request`] or [`Response`] (externally tagged enums, the upstream serde
//! default).  The frame layer is transport-agnostic (`std::io::Read`/
//! `Write`), so the same codec serves `TcpStream`s and in-memory buffers.
//! A version byte other than [`PROTOCOL_VERSION`] or a frame longer than
//! [`MAX_FRAME_LEN`] is rejected before any payload is read, so a confused
//! peer cannot make the server allocate unboundedly.
//!
//! The message-enum idiom follows GladiusSlicer's `gladius_shared`
//! `messages.rs`/`error.rs` split: one closed enum per direction, and a
//! dedicated error enum whose variants carry the full evidence (offending
//! points, rectangle pairs, scene ids) rather than stringified summaries.

use rsp_core::RspError;
use rsp_geom::{DeltaError, DisjointnessViolation, Dist, ObstacleSet, Point, RectId, RectiPath, SceneDelta};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Version byte prefixed to every frame.  Bump on any wire-visible change.
/// (v2: [`CacheStats`] gained the `resident_bytes` distance-store field.
/// v3: [`ShardStats`] gained `stores`, the per-session distance-store
/// breakdown of [`SessionStoreStats`].  v4: [`Request::UpdateScene`] /
/// [`Response::SceneUpdated`] incremental scene editing, the
/// [`ServerError::InvalidDelta`] mirror, and [`SessionStoreStats`] gained
/// `epoch` plus the delta-reuse counters.)
pub const PROTOCOL_VERSION: u8 = 4;

/// Upper bound on a frame's payload length in bytes (16 MiB).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Identifier of a loaded scene: the order-independent
/// [`ObstacleSet::scene_hash`] of its geometry.  Stable across processes,
/// so a client can predict the id of a scene it is about to load.
pub type SceneId = u64;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Load (or touch) a scene: validates the obstacles, builds the
    /// [`Router`](rsp_core::router::Router) session at most once per scene,
    /// and returns its [`SceneId`].
    LoadScene {
        /// The scene geometry.
        obstacles: ObstacleSet,
    },
    /// One point-to-point length query, eligible for admission coalescing.
    Distance {
        /// Scene to query (from a prior [`Request::LoadScene`]).
        scene: SceneId,
        /// First endpoint.
        a: Point,
        /// Second endpoint.
        b: Point,
    },
    /// Report an actual shortest path between two obstacle vertices.
    Path {
        /// Scene to query.
        scene: SceneId,
        /// Source obstacle vertex.
        source: Point,
        /// Target obstacle vertex.
        target: Point,
    },
    /// A pre-batched set of length queries, served by one
    /// [`Router::distances`](rsp_core::router::Router::distances) call.
    BatchDistances {
        /// Scene to query.
        scene: SceneId,
        /// Query pairs; the response is index-aligned.
        pairs: Vec<(Point, Point)>,
    },
    /// A pre-batched set of vertex-pair path reports.
    BatchPaths {
        /// Scene to query.
        scene: SceneId,
        /// Vertex pairs; the response is index-aligned.
        pairs: Vec<(Point, Point)>,
    },
    /// Edit a resident scene: apply a [`SceneDelta`] to the session loaded
    /// for `base`, producing a **new** scene (addressable by its own
    /// [`SceneId`]) whose session is built by
    /// [`Router::apply_delta`](rsp_core::router::Router::apply_delta) — an
    /// epoch-versioned delta rebuild that reuses every substructure the edit
    /// provably cannot affect.  The base scene stays resident and queryable;
    /// in-flight queries on it are unaffected.  Editing the same base twice
    /// with the same delta is idempotent (the result hashes to the same id).
    UpdateScene {
        /// Scene to edit (from a prior `LoadScene` or `UpdateScene`).
        base: SceneId,
        /// The edit to apply.
        delta: SceneDelta,
    },
    /// Snapshot the server's session-cache and admission-queue statistics.
    Stats,
    /// Drop a scene's cached session, freeing its substructures.
    Evict {
        /// Scene to evict.
        scene: SceneId,
    },
}

/// A server-to-client message.  Every [`Request`] gets exactly one response;
/// failures of any kind arrive as [`Response::Error`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The scene is resident (loaded now or already cached).
    SceneLoaded {
        /// Cache key for subsequent queries.
        scene: SceneId,
        /// Number of obstacles in the scene.
        obstacles: usize,
    },
    /// Answer to [`Request::Distance`].
    Distance {
        /// Shortest obstacle-avoiding rectilinear path length.
        length: Dist,
    },
    /// Answer to [`Request::Path`].
    Path {
        /// A shortest path, as its turning points.
        path: RectiPath,
    },
    /// Answer to [`Request::BatchDistances`], index-aligned with the request.
    Distances {
        /// Shortest-path lengths.
        lengths: Vec<Dist>,
    },
    /// Answer to [`Request::BatchPaths`], index-aligned with the request.
    Paths {
        /// Shortest paths.
        paths: Vec<RectiPath>,
    },
    /// Answer to [`Request::UpdateScene`]: the edited scene is resident.
    SceneUpdated {
        /// Cache key of the *edited* scene for subsequent queries.
        scene: SceneId,
        /// Number of obstacles in the edited scene.
        obstacles: usize,
        /// The edited session's epoch (base epoch + 1; 0 would mean a scene
        /// built from scratch).
        epoch: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Per-shard serving statistics.
        stats: ServerStats,
    },
    /// Answer to [`Request::Evict`].
    Evicted {
        /// Whether the scene was resident before the eviction.
        existed: bool,
    },
    /// The request failed; carries the typed evidence.
    Error {
        /// What went wrong.
        error: ServerError,
    },
}

/// The wire-level error enum: every [`RspError`] variant has a mirror that
/// preserves its evidence verbatim, plus the failure modes only a server
/// has (unknown scene, shutdown, transport).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerError {
    /// Mirror of [`RspError::OverlappingObstacles`].
    OverlappingObstacles {
        /// The offending pair, ids and rectangles intact.
        violation: DisjointnessViolation,
    },
    /// Mirror of [`RspError::ObstacleOutsideContainer`].
    ObstacleOutsideContainer {
        /// Id of the obstacle outside the container.
        obstacle: RectId,
    },
    /// Mirror of [`RspError::ContainerNotConvex`].
    ContainerNotConvex,
    /// Mirror of [`RspError::NotAVertex`].
    NotAVertex {
        /// The point that is not an obstacle vertex.
        point: Point,
    },
    /// Mirror of [`RspError::PointOutsideContainer`].
    PointOutsideContainer {
        /// The point outside the instance container.
        point: Point,
    },
    /// Mirror of [`RspError::PointInsideObstacle`].
    PointInsideObstacle {
        /// The offending query point.
        point: Point,
        /// Id of the obstacle containing it.
        obstacle: RectId,
    },
    /// Mirror of [`RspError::ThreadPool`].
    ThreadPool {
        /// The underlying pool-construction failure.
        message: String,
    },
    /// Mirror of [`RspError::InvalidDelta`].
    InvalidDelta {
        /// Why the delta is malformed.
        error: DeltaError,
    },
    /// A query referenced a scene that is not resident (never loaded, or
    /// evicted by the LRU bound); the client should re-send `LoadScene`.
    UnknownScene {
        /// The unresolved scene id.
        scene: SceneId,
    },
    /// The server is shutting down and will not answer.
    ShuttingDown,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownScene { scene } => {
                write!(f, "scene {scene:#018x} is not resident (load it first)")
            }
            ServerError::ShuttingDown => write!(f, "the server is shutting down"),
            other => match other.clone().into_rsp() {
                Some(e) => write!(f, "{e}"),
                None => unreachable!("every non-server-side variant mirrors an RspError"),
            },
        }
    }
}

impl std::error::Error for ServerError {}

impl From<RspError> for ServerError {
    fn from(e: RspError) -> Self {
        match e {
            RspError::OverlappingObstacles(violation) => ServerError::OverlappingObstacles { violation },
            RspError::ObstacleOutsideContainer(obstacle) => ServerError::ObstacleOutsideContainer { obstacle },
            RspError::ContainerNotConvex => ServerError::ContainerNotConvex,
            RspError::NotAVertex(point) => ServerError::NotAVertex { point },
            RspError::PointOutsideContainer(point) => ServerError::PointOutsideContainer { point },
            RspError::PointInsideObstacle { point, obstacle } => ServerError::PointInsideObstacle { point, obstacle },
            RspError::ThreadPool(message) => ServerError::ThreadPool { message },
            RspError::InvalidDelta(error) => ServerError::InvalidDelta { error },
        }
    }
}

impl ServerError {
    /// Map back to the [`RspError`] this variant mirrors, or `None` for the
    /// server-side variants that have no core equivalent.  Together with
    /// `From<RspError>` this makes the mirroring round-trip testable.
    pub fn into_rsp(self) -> Option<RspError> {
        match self {
            ServerError::OverlappingObstacles { violation } => Some(RspError::OverlappingObstacles(violation)),
            ServerError::ObstacleOutsideContainer { obstacle } => Some(RspError::ObstacleOutsideContainer(obstacle)),
            ServerError::ContainerNotConvex => Some(RspError::ContainerNotConvex),
            ServerError::NotAVertex { point } => Some(RspError::NotAVertex(point)),
            ServerError::PointOutsideContainer { point } => Some(RspError::PointOutsideContainer(point)),
            ServerError::PointInsideObstacle { point, obstacle } => {
                Some(RspError::PointInsideObstacle { point, obstacle })
            }
            ServerError::ThreadPool { message } => Some(RspError::ThreadPool(message)),
            ServerError::InvalidDelta { error } => Some(RspError::InvalidDelta(error)),
            ServerError::UnknownScene { .. } | ServerError::ShuttingDown => None,
        }
    }
}

/// Session-cache statistics of one shard (see
/// [`SessionCache`](crate::session::SessionCache)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Scene resolutions served from a resident session (loads and queries).
    pub hits: u64,
    /// Scene loads that had to build a new session.  A session is built at
    /// most once while resident, so this equals the number of `Router`
    /// constructions the shard has performed.
    pub misses: u64,
    /// Sessions dropped by the LRU bounds (count cap or byte budget).
    pub evictions: u64,
    /// Sessions currently resident.
    pub resident: u64,
    /// Bytes the resident sessions' distance stores currently hold (the sum
    /// of each built router's
    /// [`memory_stats().resident_bytes`](rsp_core::router::Router::memory_stats)).
    pub resident_bytes: u64,
}

/// Admission-queue statistics of one shard (see
/// [`Coalescer`](crate::admission::Coalescer)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Point queries admitted to the queue.
    pub queries: u64,
    /// Batches dispatched to `Router::distances`.
    pub batches: u64,
    /// Largest single dispatched batch.
    pub largest_batch: u64,
}

/// Distance-store memory accounting of one resident session, as reported by
/// [`Router::memory_stats`](rsp_core::router::Router::memory_stats) — so an
/// operator can see resident/hit/miss (and batch-pinning) behaviour per
/// scene over the wire instead of only the shard-wide byte total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStoreStats {
    /// The scene this session serves.
    pub scene: SceneId,
    /// Bytes the session's distance store holds resident.
    pub resident_bytes: u64,
    /// Bytes currently pinned by in-flight batch plans.
    pub pinned_bytes: u64,
    /// The store's configured byte budget.
    pub budget_bytes: u64,
    /// What a dense matrix for this scene would cost.
    pub dense_bytes: u64,
    /// Distance-row requests served from a resident row.
    pub row_hits: u64,
    /// Distance-row requests that ran a single-source sweep.
    pub row_misses: u64,
    /// Distance rows evicted to respect the byte budget.
    pub row_evictions: u64,
    /// The session's epoch: 0 for a scene built from scratch, parent + 1 for
    /// a session produced by [`Request::UpdateScene`].
    pub epoch: u64,
    /// Distance rows the delta build carried over from the base epoch
    /// ([`BuildCounts::rows_reused`](rsp_core::router::BuildCounts)).
    pub rows_reused: u64,
    /// Distance rows the delta build dropped or re-swept.
    pub rows_rebuilt: u64,
    /// Escape staircases carried over from the base epoch.
    pub chains_reused: u64,
    /// Escape staircases re-traced after the edit.
    pub chains_rebuilt: u64,
}

/// One shard's statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Session-cache counters.
    pub sessions: CacheStats,
    /// Admission-queue counters.
    pub queue: QueueStats,
    /// Per-session distance-store breakdown (built sessions only), ordered
    /// by scene id for a stable wire representation.
    pub stores: Vec<SessionStoreStats>,
}

/// Whole-server statistics: one entry per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    /// Total sessions built across all shards (the sum of cache misses).
    pub fn total_builds(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions.misses).sum()
    }

    /// Total sessions currently resident across all shards.
    pub fn total_resident(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions.resident).sum()
    }

    /// Total sessions dropped by LRU bounds across all shards.
    pub fn total_evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions.evictions).sum()
    }

    /// Total distance-store bytes resident across all shards' sessions.
    pub fn total_resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions.resident_bytes).sum()
    }
}

/// Why a frame could not be read or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An I/O failure mid-frame (carries `ErrorKind` and message text).
    Io(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version byte received.
        got: u8,
        /// Version this build speaks ([`PROTOCOL_VERSION`]).
        expected: u8,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Declared length.
        len: u32,
    },
    /// The payload was not valid JSON for the expected message type.
    Codec(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(msg) => write!(f, "i/o error: {msg}"),
            WireError::VersionMismatch { got, expected } => {
                write!(f, "protocol version mismatch: peer sent {got}, expected {expected}")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            WireError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(format!("{:?}: {e}", e.kind()))
    }
}

/// Write one framed message: version byte, big-endian length, JSON payload.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), WireError> {
    let text = serde_json::to_string(msg).map_err(|e| WireError::Codec(e.to_string()))?;
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME_LEN as usize {
        return Err(WireError::FrameTooLarge { len: bytes.len() as u32 });
    }
    w.write_all(&[PROTOCOL_VERSION])?;
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message.  A clean end-of-stream at a frame boundary is
/// [`WireError::Closed`]; EOF mid-frame is an I/O error.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<T, WireError> {
    let mut version = [0u8; 1];
    if let Err(e) = r.read_exact(&mut version) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof { WireError::Closed } else { e.into() });
    }
    if version[0] != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch { got: version[0], expected: PROTOCOL_VERSION });
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload).map_err(|e| WireError::Codec(e.to_string()))?;
    serde_json::from_str(&text).map_err(|e| WireError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::Rect;
    use std::io::Cursor;

    fn scene() -> ObstacleSet {
        ObstacleSet::new(vec![Rect::new(0, 0, 2, 2), Rect::new(4, 4, 6, 8)])
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        let mut cursor = Cursor::new(buf);
        let back: T = read_message(&mut cursor).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        let pairs = vec![(Point::new(0, 0), Point::new(5, 5)), (Point::new(2, 2), Point::new(4, 8))];
        roundtrip(&Request::LoadScene { obstacles: scene() });
        roundtrip(&Request::Distance { scene: 42, a: Point::new(-1, 3), b: Point::new(9, 0) });
        roundtrip(&Request::Path { scene: 7, source: Point::new(0, 0), target: Point::new(2, 2) });
        roundtrip(&Request::BatchDistances { scene: u64::MAX, pairs: pairs.clone() });
        roundtrip(&Request::BatchPaths { scene: 1, pairs });
        roundtrip(&Request::UpdateScene {
            base: 42,
            delta: SceneDelta { insert: vec![Rect::new(10, 10, 12, 12)], remove: vec![0] },
        });
        roundtrip(&Request::Stats);
        roundtrip(&Request::Evict { scene: 3 });
    }

    #[test]
    fn every_response_variant_roundtrips() {
        roundtrip(&Response::SceneLoaded { scene: 11, obstacles: 2 });
        roundtrip(&Response::SceneUpdated { scene: 12, obstacles: 3, epoch: 2 });
        roundtrip(&Response::Distance { length: -7 });
        roundtrip(&Response::Path { path: RectiPath::new(vec![Point::new(0, 0), Point::new(0, 4), Point::new(3, 4)]) });
        roundtrip(&Response::Distances { lengths: vec![1, 2, 3] });
        roundtrip(&Response::Paths { paths: vec![RectiPath::new(vec![Point::new(1, 1), Point::new(1, 9)])] });
        let stats = ServerStats {
            shards: vec![ShardStats {
                sessions: CacheStats { hits: 1, misses: 2, evictions: 3, resident: 4, resident_bytes: 512 },
                queue: QueueStats { queries: 5, batches: 6, largest_batch: 7 },
                stores: vec![SessionStoreStats {
                    scene: 11,
                    resident_bytes: 128,
                    pinned_bytes: 64,
                    budget_bytes: 256,
                    dense_bytes: 4096,
                    row_hits: 8,
                    row_misses: 9,
                    row_evictions: 10,
                    epoch: 2,
                    rows_reused: 30,
                    rows_rebuilt: 2,
                    chains_reused: 120,
                    chains_rebuilt: 8,
                }],
            }],
        };
        roundtrip(&Response::Stats { stats });
        roundtrip(&Response::Evicted { existed: true });
        roundtrip(&Response::Error { error: ServerError::UnknownScene { scene: 99 } });
        roundtrip(&Response::Error {
            error: ServerError::InvalidDelta { error: DeltaError::DuplicateRemove { id: 4 } },
        });
    }

    #[test]
    fn frames_reject_bad_versions_and_oversized_lengths() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Stats).unwrap();
        buf[0] ^= 0xff;
        let got = read_message::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(got, WireError::VersionMismatch { .. }), "{got:?}");

        let mut huge = vec![PROTOCOL_VERSION];
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let got = read_message::<_, Request>(&mut Cursor::new(huge)).unwrap_err();
        assert_eq!(got, WireError::FrameTooLarge { len: MAX_FRAME_LEN + 1 });

        // Clean EOF at a frame boundary is Closed, mid-frame is Io.
        let got = read_message::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(got, WireError::Closed);
        let got = read_message::<_, Request>(&mut Cursor::new(vec![PROTOCOL_VERSION, 0, 0])).unwrap_err();
        assert!(matches!(got, WireError::Io(_)), "{got:?}");
    }

    #[test]
    fn consecutive_frames_stream() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Stats).unwrap();
        write_message(&mut buf, &Request::Evict { scene: 5 }).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_message::<_, Request>(&mut cursor).unwrap(), Request::Stats);
        assert_eq!(read_message::<_, Request>(&mut cursor).unwrap(), Request::Evict { scene: 5 });
        assert_eq!(read_message::<_, Request>(&mut cursor).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn server_error_display_preserves_evidence() {
        let err = ServerError::PointInsideObstacle { point: Point::new(3, 5), obstacle: 2 };
        let msg = err.to_string();
        assert!(msg.contains("(3, 5)"), "{msg}");
        assert!(msg.contains("obstacle 2"), "{msg}");
        assert!(ServerError::UnknownScene { scene: 0xabcd }.to_string().contains("0x000000000000abcd"));
    }
}
