//! # rsp-server — a sharded, batching query-serving subsystem
//!
//! Turns the [`Router`](rsp_core::router::Router) session API into a
//! service: the paper's `O(1)`/`O(log n)` query guarantees, wrapped in the
//! serving stack heavy multi-tenant traffic needs.  Five layers, bottom-up:
//!
//! | layer | module | what it adds |
//! |---|---|---|
//! | wire protocol | [`protocol`] | versioned [`Request`]/[`Response`] enums, typed [`ServerError`] with evidence, length-prefixed framing |
//! | session cache | [`session`] | `Arc<Router>` per scene hash, build-once under concurrency, bounded LRU |
//! | admission | [`admission`] | coalesces point queries into one `Router::distances` batch per window/size budget |
//! | shards | [`shard`] | hash-partitions scenes across N independent cache+queue pairs |
//! | front ends | [`service`], [`server`], [`client`] | in-process engine, `std::net` TCP server, blocking typed client |
//!
//! The environment is offline and has no async runtime, so the transport is
//! deliberately `std::net` + threads; every layer below the socket is
//! transport-agnostic and would sit unchanged under an async front end.
//!
//! ## Quickstart
//!
//! ```
//! use rsp_server::{Client, RspService, Server, ServiceConfig};
//! use rsp_geom::{ObstacleSet, Point, Rect};
//!
//! let service = RspService::new(ServiceConfig { shards: 2, ..ServiceConfig::default() });
//! let mut server = Server::bind("127.0.0.1:0", service)?;
//! let mut client = Client::connect(server.addr())?;
//!
//! let scene = client.load_scene(&ObstacleSet::new(vec![Rect::new(2, 2, 6, 10)]))?;
//! let d = client.distance(scene, Point::new(0, 0), Point::new(8, 12))?;
//! assert!(d >= 20);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;
pub mod session;
pub mod shard;

pub use admission::Coalescer;
pub use client::{Client, ClientError};
pub use protocol::{
    CacheStats, QueueStats, Request, Response, SceneId, ServerError, ServerStats, SessionStoreStats, ShardStats,
    WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::Server;
pub use service::{RspService, ServiceConfig};
pub use session::SessionCache;
pub use shard::{Shard, ShardSet};
