//! The session cache: `Arc<Router>` sessions keyed by scene hash, bounded
//! LRU, build-once under concurrency.
//!
//! A *session* is a fully validated [`Router`] — the expensive part of
//! serving (the `O(n^2)`-work oracle and friends hide behind it, built
//! lazily).  The cache guarantees:
//!
//! * **Build-once:** two clients loading the same scene concurrently get the
//!   same `Arc<Router>`, and the `Router` is constructed exactly once — the
//!   map entry (an `Arc<OnceLock>`) is published under the map mutex, but
//!   the construction itself runs *outside* that mutex inside
//!   [`OnceLock::get_or_init`], so concurrent loads of *different* scenes
//!   never serialise on each other.
//! * **Bounded residency:** the primary bound is a *byte budget* over the
//!   resident sessions' distance stores (the sum of each built router's
//!   [`Router::memory_stats`] residency, re-checked on every resolution
//!   because implicit stores grow as queries materialise rows); the count
//!   cap `capacity` is the secondary bound.  Crossing either evicts
//!   least-recently-used entries — never the session just resolved — and
//!   counts them in [`CacheStats::evictions`].
//! * **Error caching:** a scene that fails validation (overlapping
//!   obstacles) caches its typed error.  This is sound because the cache key
//!   is the geometry hash — a *fixed* scene hashes differently and loads
//!   fresh.

use crate::protocol::{CacheStats, SceneId, ServerError, SessionStoreStats};
use rsp_core::router::{Engine, Router};
use rsp_core::store::StoreKind;
use rsp_geom::ObstacleSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type SessionCell = Arc<OnceLock<Result<Arc<Router>, ServerError>>>;

struct Entry {
    cell: SessionCell,
    /// The geometry, kept so *any* resolver (a `load` racing another `load`,
    /// or a `lookup` racing the initial build) can run the same build
    /// closure inside `get_or_init` — whoever wins builds the identical
    /// router, and the losers block until it is ready.  Without this, a
    /// lookup racing the first load would need a fallback closure that could
    /// win the init race and poison the cell with an error.
    obstacles: Arc<ObstacleSet>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<SceneId, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, LRU-evicting cache of [`Router`] sessions keyed by
/// [`ObstacleSet::scene_hash`].  One per shard.
pub struct SessionCache {
    inner: Mutex<Inner>,
    capacity: usize,
    budget_bytes: usize,
    engine: Engine,
    store: StoreKind,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions (at least 1), building
    /// routers with the given engine, no byte budget ([`usize::MAX`]) and
    /// the [`StoreKind::Auto`] distance store.
    pub fn new(capacity: usize, engine: Engine) -> Self {
        Self::with_limits(capacity, usize::MAX, engine, StoreKind::Auto)
    }

    /// A cache bounded by both a session count and a distance-store byte
    /// budget, building routers with the given engine and store kind.  The
    /// byte budget is enforced on every resolution (loads *and* lookups):
    /// implicit stores grow as queries materialise rows, so residency is
    /// re-summed each time rather than only at insertion.
    pub fn with_limits(capacity: usize, budget_bytes: usize, engine: Engine, store: StoreKind) -> Self {
        SessionCache {
            inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0, stats: CacheStats::default() }),
            capacity: capacity.max(1),
            budget_bytes,
            engine,
            store,
        }
    }

    /// Resolve (building if necessary) the session for `obstacles`.
    /// Returns the scene id alongside the session so callers can key
    /// follow-up queries.
    pub fn load(&self, obstacles: &ObstacleSet) -> (SceneId, Result<Arc<Router>, ServerError>) {
        let scene = obstacles.scene_hash();
        let (cell, stored) = {
            let mut inner = self.inner.lock().expect("session cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(&scene) {
                Some(entry) => {
                    entry.last_used = tick;
                    let hit = (Arc::clone(&entry.cell), Arc::clone(&entry.obstacles));
                    inner.stats.hits += 1;
                    hit
                }
                None => {
                    inner.stats.misses += 1;
                    if inner.entries.len() >= self.capacity {
                        if let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) {
                            inner.entries.remove(&victim);
                            inner.stats.evictions += 1;
                        }
                    }
                    let cell: SessionCell = Arc::new(OnceLock::new());
                    let stored = Arc::new(obstacles.clone());
                    inner.entries.insert(
                        scene,
                        Entry { cell: Arc::clone(&cell), obstacles: Arc::clone(&stored), last_used: tick },
                    );
                    inner.stats.resident = inner.entries.len() as u64;
                    (cell, stored)
                }
            }
        };
        let result = self.resolve(&cell, &stored);
        self.enforce_budget(scene);
        (scene, result)
    }

    /// Resolve an already-loaded scene.  [`ServerError::UnknownScene`] when
    /// the scene was never loaded or has been evicted.
    pub fn lookup(&self, scene: SceneId) -> Result<Arc<Router>, ServerError> {
        let (cell, stored) = {
            let mut inner = self.inner.lock().expect("session cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(&scene) {
                Some(entry) => {
                    entry.last_used = tick;
                    let hit = (Arc::clone(&entry.cell), Arc::clone(&entry.obstacles));
                    inner.stats.hits += 1;
                    hit
                }
                None => return Err(ServerError::UnknownScene { scene }),
            }
        };
        let result = self.resolve(&cell, &stored);
        self.enforce_budget(scene);
        result
    }

    /// Build (or wait for the concurrent builder of) a session, outside the
    /// map lock.  Every resolver passes the same build closure, so whichever
    /// thread wins `get_or_init` constructs the identical router exactly
    /// once per residency; the losers block until it is ready.
    fn resolve(&self, cell: &SessionCell, obstacles: &Arc<ObstacleSet>) -> Result<Arc<Router>, ServerError> {
        cell.get_or_init(|| {
            Router::builder((**obstacles).clone())
                .engine(self.engine)
                .store(self.store)
                .build()
                .map(Arc::new)
                .map_err(ServerError::from)
        })
        .clone()
    }

    /// Distance-store bytes a resident entry holds: only sessions that
    /// finished building a router occupy anything (cells mid-build or
    /// holding a cached error cost 0).
    fn session_bytes(entry: &Entry) -> usize {
        match entry.cell.get() {
            Some(Ok(router)) => router.memory_stats().resident_bytes,
            _ => 0,
        }
    }

    /// Evict least-recently-used sessions until the summed distance-store
    /// residency fits the byte budget, never evicting `protect` (the session
    /// the caller just resolved — evicting it would free nothing for the
    /// caller, who still holds its `Arc`).
    fn enforce_budget(&self, protect: SceneId) {
        if self.budget_bytes == usize::MAX {
            return;
        }
        let mut inner = self.inner.lock().expect("session cache poisoned");
        while inner.entries.len() > 1 {
            let total: usize = inner.entries.values().map(Self::session_bytes).sum();
            if total <= self.budget_bytes {
                break;
            }
            let victim =
                inner.entries.iter().filter(|&(&k, _)| k != protect).min_by_key(|(_, e)| e.last_used).map(|(&k, _)| k);
            match victim {
                Some(v) => {
                    inner.entries.remove(&v);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
        inner.stats.resident = inner.entries.len() as u64;
    }

    /// Insert an *already-built* session under `scene` — the delta-rebuild
    /// path of `UpdateScene`, where the router came out of
    /// [`Router::apply_delta`] on a base session (possibly resident on a
    /// different shard) rather than out of this cache's own build closure.
    /// Counts as a miss (a session construction).  If the scene is already
    /// resident, the existing session wins and is returned instead — edits
    /// are content-addressed, so two routes to the same geometry must keep
    /// resolving to one session.
    pub fn adopt(
        &self,
        scene: SceneId,
        obstacles: Arc<ObstacleSet>,
        router: Arc<Router>,
    ) -> Result<Arc<Router>, ServerError> {
        let (cell, stored) = {
            let mut inner = self.inner.lock().expect("session cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(&scene) {
                Some(entry) => {
                    entry.last_used = tick;
                    let hit = (Arc::clone(&entry.cell), Arc::clone(&entry.obstacles));
                    inner.stats.hits += 1;
                    hit
                }
                None => {
                    inner.stats.misses += 1;
                    if inner.entries.len() >= self.capacity {
                        if let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) {
                            inner.entries.remove(&victim);
                            inner.stats.evictions += 1;
                        }
                    }
                    let cell: SessionCell = Arc::new(OnceLock::new());
                    let _ = cell.set(Ok(Arc::clone(&router)));
                    inner.entries.insert(
                        scene,
                        Entry { cell: Arc::clone(&cell), obstacles: Arc::clone(&obstacles), last_used: tick },
                    );
                    inner.stats.resident = inner.entries.len() as u64;
                    (cell, obstacles)
                }
            }
        };
        // An existing entry may still be mid-build; resolve like any other
        // resolution so we return whatever session the scene settles on.
        let result = self.resolve(&cell, &stored);
        self.enforce_budget(scene);
        result
    }

    /// Drop a scene's session.  Returns whether it was resident.  In-flight
    /// queries holding the `Arc<Router>` keep it alive until they finish.
    pub fn evict(&self, scene: SceneId) -> bool {
        let mut inner = self.inner.lock().expect("session cache poisoned");
        let existed = inner.entries.remove(&scene).is_some();
        inner.stats.resident = inner.entries.len() as u64;
        existed
    }

    /// Counter snapshot, including the summed distance-store residency of
    /// the built sessions.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("session cache poisoned");
        let mut stats = inner.stats;
        stats.resident = inner.entries.len() as u64;
        stats.resident_bytes = inner.entries.values().map(Self::session_bytes).sum::<usize>() as u64;
        stats
    }

    /// Per-session distance-store breakdown of every resident session whose
    /// router finished building, ordered by scene id so the wire form is
    /// stable.  Sessions mid-build or holding a cached error are omitted —
    /// they have no store to report.
    pub fn store_stats(&self) -> Vec<SessionStoreStats> {
        let inner = self.inner.lock().expect("session cache poisoned");
        let mut out: Vec<SessionStoreStats> = inner
            .entries
            .iter()
            .filter_map(|(&scene, entry)| match entry.cell.get() {
                Some(Ok(router)) => {
                    let s = router.memory_stats();
                    let counts = router.build_counts();
                    Some(SessionStoreStats {
                        scene,
                        resident_bytes: s.resident_bytes as u64,
                        pinned_bytes: s.pinned_bytes as u64,
                        budget_bytes: s.budget_bytes as u64,
                        dense_bytes: s.dense_bytes as u64,
                        row_hits: s.row_hits,
                        row_misses: s.row_misses,
                        row_evictions: s.row_evictions,
                        epoch: router.epoch(),
                        rows_reused: counts.rows_reused as u64,
                        rows_rebuilt: counts.rows_rebuilt as u64,
                        chains_reused: counts.chains_reused as u64,
                        chains_rebuilt: counts.chains_rebuilt as u64,
                    })
                }
                _ => None,
            })
            .collect();
        out.sort_unstable_by_key(|s| s.scene);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::Rect;
    use std::thread;

    fn scene(offset: i64) -> ObstacleSet {
        ObstacleSet::new(vec![Rect::new(offset, 0, offset + 2, 4), Rect::new(offset + 4, 1, offset + 7, 5)])
    }

    #[test]
    fn concurrent_loads_share_one_build() {
        let cache = Arc::new(SessionCache::new(4, Engine::Auto));
        let obstacles = scene(0);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let obstacles = obstacles.clone();
            handles.push(thread::spawn(move || cache.load(&obstacles).1.unwrap()));
        }
        let routers: Vec<Arc<Router>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &routers[1..] {
            assert!(Arc::ptr_eq(&routers[0], r), "all loads share one session");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one build for four concurrent loads");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.resident, 1);
        // The router itself also certifies build-once.
        let _ = routers[0].distance(rsp_geom::Point::new(-5, -5), rsp_geom::Point::new(20, 20)).unwrap();
        assert_eq!(routers[0].build_counts().oracle_builds, 1);
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let cache = SessionCache::new(2, Engine::Auto);
        let (id0, r0) = cache.load(&scene(0));
        assert!(r0.is_ok());
        let (id1, _) = cache.load(&scene(100));
        // Touch scene 0 so scene 100 is the LRU victim.
        assert!(cache.lookup(id0).is_ok());
        let (id2, r2) = cache.load(&scene(200));
        assert!(r2.is_ok());
        let stats = cache.stats();
        assert_eq!(stats.resident, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(id0).is_ok());
        assert!(cache.lookup(id2).is_ok());
        assert_eq!(cache.lookup(id1).err(), Some(ServerError::UnknownScene { scene: id1 }));
        // Re-loading the evicted scene is a fresh build.
        assert!(cache.load(&scene(100)).1.is_ok());
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn byte_budget_evicts_by_resident_store_bytes() {
        // Each dense 2-obstacle session holds an 8x8 matrix = 512 bytes once
        // its oracle is built.  A 1000-byte budget fits one built session
        // but not two.
        let cache = SessionCache::with_limits(16, 1000, Engine::Auto, StoreKind::Dense);
        let (id0, r0) = cache.load(&scene(0));
        let r0 = r0.unwrap();
        // Force the oracle (and thus the matrix) into residency.
        let _ = r0.distance(rsp_geom::Point::new(-3, -3), rsp_geom::Point::new(12, 9)).unwrap();
        assert_eq!(cache.stats().resident_bytes, 512);
        assert_eq!(cache.stats().evictions, 0);
        let (id1, r1) = cache.load(&scene(100));
        let r1 = r1.unwrap();
        let _ = r1.distance(rsp_geom::Point::new(97, -3), rsp_geom::Point::new(112, 9)).unwrap();
        // Both builds were under budget at resolution time (stores fill at
        // query time); the next resolution observes 1024 > 1000 and evicts
        // the LRU session — not the one just resolved.
        assert!(cache.lookup(id1).is_ok());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 1);
        assert!(stats.resident_bytes <= 1000);
        assert_eq!(cache.lookup(id0).err(), Some(ServerError::UnknownScene { scene: id0 }));
        assert!(cache.lookup(id1).is_ok());
    }

    #[test]
    fn budget_never_evicts_the_protected_session() {
        // A budget no single built session fits under: the cache must keep
        // exactly the session just resolved (count 1) and evict the rest,
        // not thrash the protected one.
        let cache = SessionCache::with_limits(8, 100, Engine::Auto, StoreKind::Dense);
        let (id0, r0) = cache.load(&scene(0));
        let _ = r0.unwrap().distance(rsp_geom::Point::new(-3, -3), rsp_geom::Point::new(12, 9)).unwrap();
        let (id1, _) = cache.load(&scene(100));
        assert!(cache.lookup(id1).is_ok(), "resolved session survives its own budget pass");
        assert_eq!(cache.lookup(id0).err(), Some(ServerError::UnknownScene { scene: id0 }));
        assert_eq!(cache.stats().resident, 1);
    }

    #[test]
    fn implicit_store_sessions_account_row_cache_bytes() {
        let cache =
            SessionCache::with_limits(4, usize::MAX, Engine::Auto, StoreKind::Implicit { budget_bytes: 1 << 20 });
        let (_, r) = cache.load(&scene(0));
        let r = r.unwrap();
        assert_eq!(cache.stats().resident_bytes, 0, "nothing resident before the first query");
        let verts = scene(0).vertices();
        let _ = r.vertex_distance(verts[0], verts[5]).unwrap();
        let stats = cache.stats();
        assert!(stats.resident_bytes > 0, "materialised rows are accounted");
        assert_eq!(stats.resident_bytes as usize, r.memory_stats().resident_bytes);
        assert!(stats.resident_bytes < 512, "one row, not the whole 8x8 matrix");
    }

    #[test]
    fn invalid_scenes_cache_their_typed_error() {
        let cache = SessionCache::new(4, Engine::Auto);
        let bad = ObstacleSet::new(vec![Rect::new(0, 0, 4, 4), Rect::new(2, 2, 6, 6)]);
        let (id, first) = cache.load(&bad);
        let err = first.err().unwrap();
        assert!(matches!(err, ServerError::OverlappingObstacles { violation } if violation.first == 0));
        // The second load hits the cached error without revalidating.
        let (_, second) = cache.load(&bad);
        assert_eq!(second.err(), cache.lookup(id).err());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn evict_and_unknown_lookup() {
        let cache = SessionCache::new(4, Engine::Auto);
        let (id, _) = cache.load(&scene(0));
        assert!(cache.evict(id));
        assert!(!cache.evict(id));
        assert_eq!(cache.lookup(id).err(), Some(ServerError::UnknownScene { scene: id }));
        assert_eq!(cache.stats().resident, 0);
    }
}
