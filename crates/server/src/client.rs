//! A blocking TCP client for the rsp-server wire protocol.
//!
//! One [`Client`] owns one connection and drives the strict
//! request/response cycle; typed wrapper methods hide the enum plumbing so
//! calling the server reads like calling a local [`Router`]
//! (`rsp_core::router::Router`).  Server-side failures surface as
//! [`ClientError::Server`] with the full typed evidence; transport and
//! codec failures as [`ClientError::Wire`]; a response of the wrong shape
//! (a server bug) as [`ClientError::UnexpectedResponse`].

use crate::protocol::{read_message, write_message, Request, Response, SceneId, ServerError, ServerStats, WireError};
use rsp_geom::{Dist, ObstacleSet, Point, RectiPath};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// The server answered with a typed error.
    Server(ServerError),
    /// The transport or codec failed.
    Wire(WireError),
    /// The server answered, but with a response variant that does not match
    /// the request (a protocol bug, not a user error).
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::UnexpectedResponse(got) => write!(f, "unexpected response: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (e.g. the address from
    /// [`Server::addr`](crate::server::Server::addr)).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and read its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_message(&mut self.stream, request)?;
        let response: Response = read_message(&mut self.stream)?;
        if let Response::Error { error } = response {
            return Err(ClientError::Server(error));
        }
        Ok(response)
    }

    /// Load (or touch) a scene; returns its id for subsequent queries.
    pub fn load_scene(&mut self, obstacles: &ObstacleSet) -> Result<SceneId, ClientError> {
        match self.call(&Request::LoadScene { obstacles: obstacles.clone() })? {
            Response::SceneLoaded { scene, .. } => Ok(scene),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// One point-to-point length query (coalesced server-side).
    pub fn distance(&mut self, scene: SceneId, a: Point, b: Point) -> Result<Dist, ClientError> {
        match self.call(&Request::Distance { scene, a, b })? {
            Response::Distance { length } => Ok(length),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// A pre-batched distance query; the result is index-aligned.
    pub fn batch_distances(&mut self, scene: SceneId, pairs: &[(Point, Point)]) -> Result<Vec<Dist>, ClientError> {
        match self.call(&Request::BatchDistances { scene, pairs: pairs.to_vec() })? {
            Response::Distances { lengths } => Ok(lengths),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// One vertex-pair path report.
    pub fn path(&mut self, scene: SceneId, source: Point, target: Point) -> Result<RectiPath, ClientError> {
        match self.call(&Request::Path { scene, source, target })? {
            Response::Path { path } => Ok(path),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// A pre-batched set of vertex-pair path reports.
    pub fn batch_paths(&mut self, scene: SceneId, pairs: &[(Point, Point)]) -> Result<Vec<RectiPath>, ClientError> {
        match self.call(&Request::BatchPaths { scene, pairs: pairs.to_vec() })? {
            Response::Paths { paths } => Ok(paths),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Drop a scene's session server-side.
    pub fn evict(&mut self, scene: SceneId) -> Result<bool, ClientError> {
        match self.call(&Request::Evict { scene })? {
            Response::Evicted { existed } => Ok(existed),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}
