//! The TCP front end: a `std::net` accept loop framing [`RspService`].
//!
//! Deliberately boring: one OS thread per connection reading framed
//! [`Request`]s and writing framed [`Response`]s (the environment has no
//! async runtime — see the vendoring note in DESIGN.md §7).  All serving
//! intelligence lives behind [`RspService::handle`]; this module only owns
//! sockets and thread lifecycles.  [`Server::shutdown`] (also run on drop)
//! closes the listener and every open connection, then joins all threads.

use crate::protocol::{read_message, write_message, Request, WireError};
use crate::service::RspService;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct ServerShared {
    service: RspService,
    shutdown: AtomicBool,
    /// Clones of every live connection's stream, so shutdown can unblock
    /// reader threads by closing their sockets.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running TCP server.  Dropping it shuts the server down.
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections for `service`.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: RspService) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared =
            Arc::new(ServerShared { service, shutdown: AtomicBool::new(false), conns: Mutex::new(Vec::new()) });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conn_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("rsp-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_conn_threads))?;
        Ok(Server { shared, addr, accept_thread: Some(accept_thread), conn_threads })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this server (introspection for tests and stats).
    pub fn service(&self) -> &RspService {
        &self.shared.service
    }

    /// Stop accepting, close every open connection, and join all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Unblock connection readers by closing their sockets.
        for stream in self.shared.conns.lock().expect("server conns poisoned").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> =
            self.conn_threads.lock().expect("server threads poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>, threads: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("server conns poisoned").push(clone);
        }
        let conn_shared = Arc::clone(shared);
        let spawned =
            std::thread::Builder::new().name("rsp-conn".into()).spawn(move || serve_conn(stream, &conn_shared));
        if let Ok(handle) = spawned {
            threads.lock().expect("server threads poisoned").push(handle);
        }
    }
}

/// One connection: a strict request/response loop.  Returns (closing the
/// connection) on peer disconnect, any framing error, or server shutdown.
fn serve_conn(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request: Request = match read_message(&mut stream) {
            Ok(request) => request,
            // A peer speaking garbage gets no reply we could frame reliably;
            // closing the connection is the protocol's error signal.
            Err(WireError::Closed) | Err(_) => return,
        };
        let response = shared.service.handle(request);
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}
