//! The in-process serving engine: configuration, typed entry points, and
//! the [`Request`] → [`Response`] dispatcher shared by every front end.
//!
//! [`RspService`] is the whole subsystem minus transport: shards, session
//! caches and admission queues, driven either directly (the in-process
//! client — also what the `e12_server_load` bench measures) or through the
//! TCP front end in [`server`](crate::server), which is a thin framing loop
//! around [`RspService::handle`].

use crate::protocol::{Request, Response, SceneId, ServerError, ServerStats};
use crate::shard::ShardSet;
use rsp_core::router::{Engine, Router};
use rsp_core::store::StoreKind;
use rsp_geom::{Dist, ObstacleSet, Point, RectiPath, SceneDelta};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for an [`RspService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of independent shards (default 1).
    pub shards: usize,
    /// Resident-session bound *per shard* (default 16).
    pub session_capacity: usize,
    /// Distance-store byte budget *per shard* (default 1 GiB): the summed
    /// residency of the shard's built routers; crossing it LRU-evicts whole
    /// sessions (the count cap above is the secondary bound).
    pub session_budget_bytes: usize,
    /// Admission window: how long a batch stays open after its first query
    /// (default 200 µs; zero dispatches eagerly).
    pub batch_window: Duration,
    /// Admission size budget: a batch dispatches as soon as it holds this
    /// many queries (default 256).
    pub batch_max: usize,
    /// Engine for session construction (default [`Engine::Auto`]).
    pub engine: Engine,
    /// Distance store for session construction (default [`StoreKind::Auto`]:
    /// dense for small scenes, byte-budgeted implicit rows for large ones).
    pub store: StoreKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            session_capacity: 16,
            session_budget_bytes: 1 << 30,
            batch_window: Duration::from_micros(200),
            batch_max: 256,
            engine: Engine::Auto,
            store: StoreKind::Auto,
        }
    }
}

/// The sharded, batching query-serving engine over [`Router`] sessions.
pub struct RspService {
    shards: ShardSet,
}

impl RspService {
    /// Assemble a service (shards, caches and queue workers spin up now).
    pub fn new(config: ServiceConfig) -> Self {
        RspService { shards: ShardSet::new(&config) }
    }

    /// Load (or touch) a scene on its shard; returns its wire id.
    pub fn load_scene(&self, obstacles: &ObstacleSet) -> Result<SceneId, ServerError> {
        let (scene, session) = self.shards.shard_for(obstacles.scene_hash()).sessions.load(obstacles);
        session.map(|_| scene)
    }

    /// The cached session for a scene (introspection: tests use this to
    /// certify that concurrent clients share one `Arc<Router>`).
    pub fn session(&self, scene: SceneId) -> Result<Arc<Router>, ServerError> {
        self.shards.shard_for(scene).sessions.lookup(scene)
    }

    /// Edit a resident scene: resolve the session for `base`, derive the new
    /// epoch's session with [`Router::apply_delta`] (substructure-reusing,
    /// bitwise-faithful), and adopt it into the cache under the edited
    /// geometry's own scene hash — which may live on a *different* shard
    /// than the base, since shards are keyed by content hash.  Returns the
    /// new scene id, its obstacle count and the adopted session's epoch.
    /// The base session stays resident and queryable throughout.
    pub fn update_scene(&self, base: SceneId, delta: &SceneDelta) -> Result<(SceneId, usize, u64), ServerError> {
        let base_router = self.shards.shard_for(base).sessions.lookup(base)?;
        let edited = Arc::new(base_router.apply_delta(delta).map_err(ServerError::from)?);
        let obstacles = edited.instance().obstacles_arc();
        let scene = obstacles.scene_hash();
        let session = self.shards.shard_for(scene).sessions.adopt(scene, obstacles, edited)?;
        Ok((scene, session.instance().obstacles().len(), session.epoch()))
    }

    /// One point-to-point length query, coalesced with concurrent queries on
    /// the same shard into a single `Router` batch.
    pub fn distance(&self, scene: SceneId, a: Point, b: Point) -> Result<Dist, ServerError> {
        let shard = self.shards.shard_for(scene);
        let router = shard.sessions.lookup(scene)?;
        let rx = shard.queue.submit(router, a, b);
        rx.recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// A pre-batched distance query, served by one
    /// [`Router::distances`] call (no admission delay).
    pub fn batch_distances(&self, scene: SceneId, pairs: &[(Point, Point)]) -> Result<Vec<Dist>, ServerError> {
        let router = self.shards.shard_for(scene).sessions.lookup(scene)?;
        router.distances(pairs).map_err(ServerError::from)
    }

    /// One vertex-pair path report.
    pub fn path(&self, scene: SceneId, source: Point, target: Point) -> Result<RectiPath, ServerError> {
        let router = self.shards.shard_for(scene).sessions.lookup(scene)?;
        router.path(source, target).map_err(ServerError::from)
    }

    /// A pre-batched set of vertex-pair path reports.
    pub fn batch_paths(&self, scene: SceneId, pairs: &[(Point, Point)]) -> Result<Vec<RectiPath>, ServerError> {
        let router = self.shards.shard_for(scene).sessions.lookup(scene)?;
        router.paths(pairs).map_err(ServerError::from)
    }

    /// Per-shard counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats { shards: self.shards.shards().iter().map(|s| s.stats()).collect() }
    }

    /// Drop a scene's session; returns whether it was resident.
    pub fn evict(&self, scene: SceneId) -> bool {
        self.shards.shard_for(scene).sessions.evict(scene)
    }

    /// Serve one wire request.  This is the single dispatch point every
    /// transport shares; it never panics on client input — all failures
    /// come back as [`Response::Error`].
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::LoadScene { obstacles } => match self.load_scene(&obstacles) {
                Ok(scene) => Response::SceneLoaded { scene, obstacles: obstacles.len() },
                Err(error) => Response::Error { error },
            },
            Request::Distance { scene, a, b } => match self.distance(scene, a, b) {
                Ok(length) => Response::Distance { length },
                Err(error) => Response::Error { error },
            },
            Request::Path { scene, source, target } => match self.path(scene, source, target) {
                Ok(path) => Response::Path { path },
                Err(error) => Response::Error { error },
            },
            Request::BatchDistances { scene, pairs } => match self.batch_distances(scene, &pairs) {
                Ok(lengths) => Response::Distances { lengths },
                Err(error) => Response::Error { error },
            },
            Request::BatchPaths { scene, pairs } => match self.batch_paths(scene, &pairs) {
                Ok(paths) => Response::Paths { paths },
                Err(error) => Response::Error { error },
            },
            Request::UpdateScene { base, delta } => match self.update_scene(base, &delta) {
                Ok((scene, obstacles, epoch)) => Response::SceneUpdated { scene, obstacles, epoch },
                Err(error) => Response::Error { error },
            },
            Request::Stats => Response::Stats { stats: self.stats() },
            Request::Evict { scene } => Response::Evicted { existed: self.evict(scene) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::Rect;
    use rsp_workload::{query_pairs, uniform_disjoint};

    fn service(shards: usize) -> RspService {
        RspService::new(ServiceConfig { shards, batch_window: Duration::from_micros(100), ..ServiceConfig::default() })
    }

    #[test]
    fn end_to_end_dispatch_matches_direct_router() {
        let svc = service(2);
        let w = uniform_disjoint(10, 23);
        let scene = svc.load_scene(&w.obstacles).unwrap();
        assert_eq!(scene, w.obstacles.scene_hash());
        let direct = Router::new(w.obstacles.clone()).unwrap();
        let mut pairs = query_pairs(&w.obstacles, 16, true, 7);
        pairs.extend(query_pairs(&w.obstacles, 16, false, 8));
        // Coalesced single queries.
        for &(a, b) in &pairs {
            assert_eq!(svc.distance(scene, a, b).unwrap(), direct.distance(a, b).unwrap());
        }
        // Pre-batched queries.
        let batched = svc.batch_distances(scene, &pairs).unwrap();
        assert_eq!(batched, direct.distances(&pairs).unwrap());
        // Paths certify against distances.
        let verts = w.obstacles.vertices();
        let path = svc.path(scene, verts[0], verts[9]).unwrap();
        assert_eq!(path.length(), direct.vertex_distance(verts[0], verts[9]).unwrap());
        assert!(path.avoids(&w.obstacles));
    }

    #[test]
    fn handle_maps_every_failure_to_a_typed_error_response() {
        let svc = service(1);
        let missing = 0xdead_beef;
        assert_eq!(
            svc.handle(Request::Distance { scene: missing, a: Point::new(0, 0), b: Point::new(1, 1) }),
            Response::Error { error: ServerError::UnknownScene { scene: missing } }
        );
        let overlapping = ObstacleSet::new(vec![Rect::new(0, 0, 4, 4), Rect::new(2, 2, 6, 6)]);
        match svc.handle(Request::LoadScene { obstacles: overlapping }) {
            Response::Error { error: ServerError::OverlappingObstacles { violation } } => {
                assert_eq!((violation.first, violation.second), (0, 1));
            }
            other => panic!("expected overlap error, got {other:?}"),
        }
        let scene = svc.load_scene(&ObstacleSet::new(vec![Rect::new(2, 2, 6, 10)])).unwrap();
        match svc.handle(Request::Path { scene, source: Point::new(1, 1), target: Point::new(2, 2) }) {
            Response::Error { error: ServerError::NotAVertex { point } } => assert_eq!(point, Point::new(1, 1)),
            other => panic!("expected not-a-vertex error, got {other:?}"),
        }
        assert_eq!(svc.handle(Request::Evict { scene }), Response::Evicted { existed: true });
        assert_eq!(svc.handle(Request::Evict { scene }), Response::Evicted { existed: false });
    }

    #[test]
    fn implicit_store_service_matches_dense_and_reports_memory() {
        let w = uniform_disjoint(8, 19);
        let dense_svc = RspService::new(ServiceConfig { store: StoreKind::Dense, ..ServiceConfig::default() });
        let impl_svc = RspService::new(ServiceConfig {
            store: StoreKind::Implicit { budget_bytes: 1 << 16 },
            ..ServiceConfig::default()
        });
        let scene_d = dense_svc.load_scene(&w.obstacles).unwrap();
        let scene_i = impl_svc.load_scene(&w.obstacles).unwrap();
        // 24 vertex pairs: answers must agree bitwise across backends.
        let pairs = query_pairs(&w.obstacles, 24, true, 3);
        assert_eq!(
            dense_svc.batch_distances(scene_d, &pairs).unwrap(),
            impl_svc.batch_distances(scene_i, &pairs).unwrap()
        );
        // Stats carry per-session memory: the dense session holds the whole
        // 32x32 matrix, the implicit one only the rows those pairs touched.
        let d_bytes = dense_svc.stats().total_resident_bytes();
        let i_bytes = impl_svc.stats().total_resident_bytes();
        assert_eq!(d_bytes, (4 * w.n() * 4 * w.n() * 8) as u64);
        assert!(i_bytes > 0);
        assert!(i_bytes < d_bytes, "at most 24 of 32 rows can be resident");
        // The per-session breakdown travels on the wire too (protocol v3):
        // each built session reports its store counters keyed by scene id.
        let impl_stores: Vec<_> = impl_svc.stats().shards.into_iter().flat_map(|s| s.stores).collect();
        assert_eq!(impl_stores.len(), 1);
        let s = &impl_stores[0];
        assert_eq!(s.scene, scene_i);
        assert_eq!(s.resident_bytes, i_bytes);
        assert_eq!(s.budget_bytes, 1 << 16);
        assert_eq!(s.dense_bytes, d_bytes);
        assert!(s.row_misses > 0, "cold rows were swept");
        assert_eq!(s.pinned_bytes, 0, "no batch in flight");
        let dense_stores: Vec<_> = dense_svc.stats().shards.into_iter().flat_map(|s| s.stores).collect();
        assert_eq!(dense_stores.len(), 1);
        assert_eq!(dense_stores[0].resident_bytes, d_bytes);
        assert_eq!(dense_stores[0].row_misses, 0, "dense rows never sweep");
    }

    #[test]
    fn update_scene_edits_in_place_and_keeps_the_base_resident() {
        // Several shards, so base and edited scenes routinely land on
        // different ones — adopt must cross shards by content hash.
        let svc = service(4);
        let w = uniform_disjoint(10, 23);
        let base = svc.load_scene(&w.obstacles).unwrap();
        // Warm the base session so the edit has substructures to carry.
        let pairs = query_pairs(&w.obstacles, 8, true, 7);
        let base_answers = svc.batch_distances(base, &pairs).unwrap();
        let delta = SceneDelta::inserting(vec![Rect::new(2000, 2000, 2004, 2004)]);
        let (edited, n_obstacles, epoch) = svc.update_scene(base, &delta).unwrap();
        assert_eq!(n_obstacles, w.n() + 1);
        assert_eq!(epoch, 1);
        assert_ne!(edited, base);
        // Content addressing: the edited id is the edited geometry's hash,
        // and re-sending the same edit resolves to the same resident session.
        let edited_set = w.obstacles.apply_delta(&delta).unwrap().obstacles;
        assert_eq!(edited, edited_set.scene_hash());
        let again = svc.update_scene(base, &delta).unwrap();
        assert_eq!(again, (edited, n_obstacles, epoch));
        assert!(Arc::ptr_eq(&svc.session(edited).unwrap(), &svc.session(edited).unwrap()));
        // The base keeps answering, unchanged.
        assert_eq!(svc.batch_distances(base, &pairs).unwrap(), base_answers);
        // The edited session answers bitwise like a from-scratch build.
        let direct = Router::new(edited_set.clone()).unwrap();
        let edited_pairs = query_pairs(&edited_set, 16, true, 9);
        assert_eq!(svc.batch_distances(edited, &edited_pairs).unwrap(), direct.distances(&edited_pairs).unwrap());
        // Stats report the epoch and the delta-reuse counters on the wire.
        let stores: Vec<_> = svc.stats().shards.into_iter().flat_map(|s| s.stores).collect();
        let base_store = stores.iter().find(|s| s.scene == base).unwrap();
        let edited_store = stores.iter().find(|s| s.scene == edited).unwrap();
        assert_eq!(base_store.epoch, 0);
        assert_eq!(edited_store.epoch, 1);
        assert!(edited_store.rows_reused > 0, "far insert should carry rows: {edited_store:?}");
        // A malformed delta comes back as the typed wire error.
        let bad = SceneDelta::removing(vec![99]);
        match svc.handle(Request::UpdateScene { base, delta: bad }) {
            Response::Error { error: ServerError::InvalidDelta { .. } } => {}
            other => panic!("expected invalid-delta error, got {other:?}"),
        }
        // Editing an unknown scene reports UnknownScene.
        assert_eq!(
            svc.update_scene(0xdead, &SceneDelta::default()).err(),
            Some(ServerError::UnknownScene { scene: 0xdead })
        );
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let svc = service(4);
        let mut loaded = 0;
        for offset in 0..6i64 {
            let scene = ObstacleSet::new(vec![Rect::new(offset * 10, 0, offset * 10 + 2, 3)]);
            svc.load_scene(&scene).unwrap();
            loaded += 1;
        }
        let stats = svc.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total_builds(), loaded);
        assert_eq!(stats.total_resident(), loaded);
        assert_eq!(stats.total_evictions(), 0);
    }
}
