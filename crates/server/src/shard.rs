//! N-shard scene partitioning: hash scenes across independent workers.
//!
//! Multi-tenant load must not funnel through one lock.  A [`ShardSet`]
//! partitions scenes by their stable hash across `N` [`Shard`]s, each owning
//! its *own* session cache and its *own* admission queue (with its own
//! dispatch thread) — so tenants on different shards contend on nothing.
//! Scene-to-shard assignment is pure (`scene_hash % N`), which keeps routing
//! stateless: any front end holding the scene id can compute the shard.

use crate::admission::Coalescer;
use crate::protocol::{SceneId, ShardStats};
use crate::session::SessionCache;
use crate::ServiceConfig;

/// One independent serving partition: a session cache plus an admission
/// queue, owned exclusively (no cross-shard locks).
pub struct Shard {
    /// This shard's session cache.
    pub sessions: SessionCache,
    /// This shard's batching admission queue.
    pub queue: Coalescer,
}

impl Shard {
    fn new(config: &ServiceConfig) -> Self {
        Shard {
            sessions: SessionCache::with_limits(
                config.session_capacity,
                config.session_budget_bytes,
                config.engine,
                config.store,
            ),
            queue: Coalescer::new(config.batch_window, config.batch_max),
        }
    }

    /// Counter snapshot of both components, plus the per-session
    /// distance-store breakdown.
    pub fn stats(&self) -> ShardStats {
        ShardStats { sessions: self.sessions.stats(), queue: self.queue.stats(), stores: self.sessions.store_stats() }
    }
}

/// A fixed set of [`Shard`]s with pure hash routing.
pub struct ShardSet {
    shards: Vec<Shard>,
}

impl ShardSet {
    /// Build `config.shards` (at least 1) shards.
    pub fn new(config: &ServiceConfig) -> Self {
        let count = config.shards.max(1);
        ShardSet { shards: (0..count).map(|_| Shard::new(config)).collect() }
    }

    /// The shard owning `scene`.
    pub fn shard_for(&self, scene: SceneId) -> &Shard {
        &self.shards[self.shard_index(scene)]
    }

    /// Index of the shard owning `scene` (for observability).
    pub fn shard_index(&self, scene: SceneId) -> usize {
        // FNV-1a multiplies by an odd constant, which preserves the low bit:
        // `scene % 2` would be the byte parity of the geometry, not a uniform
        // coin.  Run the id through a splitmix64 finalizer so every bit
        // avalanches before the modulo.
        let mut h = scene;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h % self.shards.len() as u64) as usize
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::{ObstacleSet, Rect};

    fn scene(offset: i64) -> ObstacleSet {
        ObstacleSet::new(vec![Rect::new(offset, 0, offset + 2, 2)])
    }

    #[test]
    fn routing_is_pure_and_in_range() {
        let config = ServiceConfig { shards: 4, ..ServiceConfig::default() };
        let set = ShardSet::new(&config);
        assert_eq!(set.shards().len(), 4);
        for offset in 0..32 {
            let id = scene(offset).scene_hash();
            let idx = set.shard_index(id);
            assert!(idx < 4);
            assert_eq!(idx, set.shard_index(id), "routing is deterministic");
            assert!(std::ptr::eq(set.shard_for(id), &set.shards()[idx]));
        }
    }

    #[test]
    fn shards_isolate_their_caches() {
        let config = ServiceConfig { shards: 2, ..ServiceConfig::default() };
        let set = ShardSet::new(&config);
        // Find two scenes landing on different shards.
        let mut by_shard: [Option<ObstacleSet>; 2] = [None, None];
        for offset in 0..64 {
            let s = scene(offset);
            let idx = set.shard_index(s.scene_hash());
            if by_shard[idx].is_none() {
                by_shard[idx] = Some(s);
            }
        }
        let [a, b] = by_shard.map(|s| s.expect("64 scenes cover both shards"));
        let (id_a, r) = set.shard_for(a.scene_hash()).sessions.load(&a);
        r.unwrap();
        let (id_b, r) = set.shard_for(b.scene_hash()).sessions.load(&b);
        r.unwrap();
        // Each shard is resident only for its own scene.
        assert!(set.shard_for(id_a).sessions.lookup(id_a).is_ok());
        assert!(set.shard_for(id_b).sessions.lookup(id_b).is_ok());
        assert_ne!(set.shard_index(id_a), set.shard_index(id_b));
        assert_eq!(set.shard_for(id_a).stats().sessions.resident, 1);
        assert_eq!(set.shard_for(id_b).stats().sessions.resident, 1);
    }
}
