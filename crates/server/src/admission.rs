//! The admission queue: coalesce single point queries into `Router` batches.
//!
//! Inference servers live on this shape — individual requests arrive
//! asynchronously, but the backend is far more efficient per query when
//! driven in batches (here: one [`Router::distances`] call amortises the
//! batch machinery and lets vertex pairs stream through the `O(1)` matrix
//! fast path back-to-back).  The [`Coalescer`] collects queries for at most
//! a configurable *window* after the first arrival, or until a *size
//! budget* fills, then dispatches the whole batch on a dedicated worker
//! thread and fans each answer back to its caller over a channel.
//!
//! Failure isolation: [`Router::distances`] fails the whole batch when any
//! single query is invalid (e.g. an endpoint strictly inside an obstacle).
//! One bad query must not poison its batch-mates, so on batch failure the
//! worker falls back to per-query [`Router::distance`] calls — every caller
//! still gets exactly the result a direct call would have produced.

use crate::protocol::{QueueStats, ServerError};
use rsp_core::router::Router;
use rsp_geom::{Dist, Point};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Pending {
    router: Arc<Router>,
    pair: (Point, Point),
    tx: Sender<Result<Dist, ServerError>>,
}

struct State {
    pending: Vec<Pending>,
    window_start: Option<Instant>,
    shutdown: bool,
    stats: QueueStats,
}

struct Shared {
    state: Mutex<State>,
    arrived: Condvar,
    window: Duration,
    max_batch: usize,
}

/// A batching admission queue in front of one shard's routers.  Dropping the
/// coalescer drains outstanding queries, then stops its worker thread.
pub struct Coalescer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Coalescer {
    /// A queue that dispatches a batch `window` after its first query
    /// arrives, or as soon as `max_batch` (at least 1) queries are pending.
    /// A zero window dispatches whatever has accumulated by the time the
    /// worker wakes — lowest latency, least coalescing.
    pub fn new(window: Duration, max_batch: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: Vec::new(),
                window_start: None,
                shutdown: false,
                stats: QueueStats::default(),
            }),
            arrived: Condvar::new(),
            window,
            max_batch: max_batch.max(1),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("rsp-coalescer".into())
            .spawn(move || run_worker(&worker_shared))
            .expect("spawn coalescer worker");
        Coalescer { shared, worker: Some(worker) }
    }

    /// Admit one point query against `router`.  Returns the channel on which
    /// exactly one result will arrive; blocking on it yields what a direct
    /// [`Router::distance`] call would return.
    pub fn submit(&self, router: Arc<Router>, a: Point, b: Point) -> Receiver<Result<Dist, ServerError>> {
        let (tx, rx) = channel();
        let mut state = self.shared.state.lock().expect("coalescer state poisoned");
        if state.shutdown {
            let _ = tx.send(Err(ServerError::ShuttingDown));
            return rx;
        }
        state.stats.queries += 1;
        if state.pending.is_empty() {
            state.window_start = Some(Instant::now());
        }
        state.pending.push(Pending { router, pair: (a, b), tx });
        drop(state);
        self.shared.arrived.notify_all();
        rx
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.shared.state.lock().expect("coalescer state poisoned").stats
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shared.state.lock().expect("coalescer state poisoned").shutdown = true;
        self.shared.arrived.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn run_worker(shared: &Shared) {
    let mut state = shared.state.lock().expect("coalescer state poisoned");
    loop {
        if state.pending.is_empty() {
            if state.shutdown {
                return;
            }
            state = shared.arrived.wait(state).expect("coalescer state poisoned");
            continue;
        }
        // A batch is open: wait out the remaining window unless the size
        // budget fills or shutdown asks for an immediate flush.
        let deadline = state.window_start.expect("open batch records its start") + shared.window;
        loop {
            if state.pending.len() >= shared.max_batch || state.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _timeout) =
                shared.arrived.wait_timeout(state, deadline - now).expect("coalescer state poisoned");
            state = next;
        }
        // The budget is a hard cap on batch size: if submits outpaced the
        // worker, dispatch `max_batch` now and reopen the window for the
        // remainder instead of shipping one oversized batch.
        let take = state.pending.len().min(shared.max_batch);
        let batch: Vec<Pending> = state.pending.drain(..take).collect();
        state.window_start = if state.pending.is_empty() { None } else { Some(Instant::now()) };
        state.stats.batches += 1;
        state.stats.largest_batch = state.stats.largest_batch.max(batch.len() as u64);
        drop(state);
        execute(batch);
        state = shared.state.lock().expect("coalescer state poisoned");
    }
}

/// Serve one dispatched batch: group by router (a batch may span scenes
/// sharing a shard), answer each group with one `distances` call, and fan
/// results back.  Send failures mean the caller gave up waiting; they are
/// ignored.
fn execute(batch: Vec<Pending>) {
    let mut groups: Vec<(Arc<Router>, Vec<usize>)> = Vec::new();
    for (idx, pending) in batch.iter().enumerate() {
        match groups.iter_mut().find(|(router, _)| Arc::ptr_eq(router, &pending.router)) {
            Some((_, members)) => members.push(idx),
            None => groups.push((Arc::clone(&pending.router), vec![idx])),
        }
    }
    for (router, members) in groups {
        let pairs: Vec<(Point, Point)> = members.iter().map(|&i| batch[i].pair).collect();
        match router.distances(&pairs) {
            Ok(lengths) => {
                for (&i, length) in members.iter().zip(lengths) {
                    let _ = batch[i].tx.send(Ok(length));
                }
            }
            // One invalid query fails a whole `distances` call; re-serve the
            // group per-query so only the culprit sees its typed error.
            Err(_) => {
                for &i in &members {
                    let (a, b) = batch[i].pair;
                    let _ = batch[i].tx.send(router.distance(a, b).map_err(ServerError::from));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::{ObstacleSet, Rect};
    use rsp_workload::{query_pairs, uniform_disjoint};

    #[test]
    fn coalesced_answers_match_per_call_distance() {
        let w = uniform_disjoint(8, 17);
        let router = Arc::new(Router::new(w.obstacles.clone()).unwrap());
        let queue = Coalescer::new(Duration::from_millis(2), 64);
        let mut pairs = query_pairs(&w.obstacles, 24, true, 3);
        pairs.extend(query_pairs(&w.obstacles, 24, false, 4));
        let receivers: Vec<_> = pairs.iter().map(|&(a, b)| queue.submit(Arc::clone(&router), a, b)).collect();
        for (rx, &(a, b)) in receivers.iter().zip(&pairs) {
            let got = rx.recv().unwrap().unwrap();
            assert_eq!(got, router.distance(a, b).unwrap(), "{a:?} -> {b:?}");
        }
        let stats = queue.stats();
        assert_eq!(stats.queries, 48);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch >= 2, "the window coalesced something: {stats:?}");
    }

    #[test]
    fn bad_query_fails_alone_not_its_batchmates() {
        let obstacles = ObstacleSet::new(vec![Rect::new(2, 2, 6, 10)]);
        let router = Arc::new(Router::new(obstacles).unwrap());
        let queue = Coalescer::new(Duration::from_millis(5), 64);
        let good_a = queue.submit(Arc::clone(&router), Point::new(0, 0), Point::new(8, 12));
        let bad = queue.submit(Arc::clone(&router), Point::new(3, 5), Point::new(0, 0));
        let good_b = queue.submit(Arc::clone(&router), Point::new(2, 2), Point::new(6, 10));
        assert_eq!(good_a.recv().unwrap().unwrap(), router.distance(Point::new(0, 0), Point::new(8, 12)).unwrap());
        assert!(matches!(bad.recv().unwrap().unwrap_err(), ServerError::PointInsideObstacle { obstacle: 0, .. }));
        assert_eq!(good_b.recv().unwrap().unwrap(), 12);
    }

    #[test]
    fn size_budget_flushes_before_the_window() {
        let w = uniform_disjoint(4, 9);
        let router = Arc::new(Router::new(w.obstacles.clone()).unwrap());
        // A long window with a tiny budget: dispatch must come from the
        // budget, not the timer.
        let queue = Coalescer::new(Duration::from_secs(60), 2);
        let pairs = query_pairs(&w.obstacles, 4, true, 5);
        let receivers: Vec<_> = pairs.iter().map(|&(a, b)| queue.submit(Arc::clone(&router), a, b)).collect();
        for rx in &receivers {
            assert!(rx.recv_timeout(Duration::from_secs(20)).unwrap().is_ok());
        }
        let stats = queue.stats();
        assert!(stats.batches >= 2, "{stats:?}");
        assert!(stats.largest_batch <= 2, "{stats:?}");
    }

    #[test]
    fn coalesced_window_on_implicit_store_sweeps_each_row_once() {
        let w = uniform_disjoint(8, 17);
        let verts = w.obstacles.vertices();
        let dim = verts.len();
        // A two-row budget: without planning, ten queries alternating
        // between rows 0 and 2 would thrash; the planner pins both rows
        // for the batch and sweeps each exactly once.
        let budget = 2 * dim * std::mem::size_of::<Dist>();
        let router = Arc::new(
            rsp_core::router::Router::builder(w.obstacles.clone())
                .store(rsp_core::store::StoreKind::Implicit { budget_bytes: budget })
                .build()
                .unwrap(),
        );
        let dense = Router::new(w.obstacles.clone()).unwrap();
        // Ten vertex queries, both orientations, spanning two canonical
        // rows (0 and 2).
        let mut pairs = Vec::new();
        for t in (4..24).step_by(5) {
            pairs.push((verts[0], verts[t]));
            pairs.push((verts[t], verts[0]));
        }
        pairs.push((verts[5], verts[2]));
        pairs.push((verts[2], verts[5]));
        // A long window with the budget set to the query count: the whole
        // window dispatches as exactly one batch, deterministically.
        let queue = Coalescer::new(Duration::from_secs(60), pairs.len());
        let receivers: Vec<_> = pairs.iter().map(|&(a, b)| queue.submit(Arc::clone(&router), a, b)).collect();
        for (rx, &(a, b)) in receivers.iter().zip(&pairs) {
            let got = rx.recv_timeout(Duration::from_secs(20)).unwrap().unwrap();
            assert_eq!(got, dense.distance(a, b).unwrap(), "{a:?} -> {b:?}");
        }
        assert_eq!(queue.stats().batches, 1, "one coalesced dispatch");
        let stats = router.memory_stats();
        assert_eq!(stats.row_misses, 2, "one sweep per distinct canonical row");
        assert_eq!(stats.pinned_bytes, 0, "batch pins released");
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let w = uniform_disjoint(4, 11);
        let router = Arc::new(Router::new(w.obstacles.clone()).unwrap());
        let queue = Coalescer::new(Duration::from_millis(50), 1024);
        let pending: Vec<_> = query_pairs(&w.obstacles, 8, true, 6)
            .iter()
            .map(|&(a, b)| queue.submit(Arc::clone(&router), a, b))
            .collect();
        drop(queue);
        for rx in pending {
            assert!(rx.recv().unwrap().is_ok(), "queued work drains on shutdown");
        }
    }
}
