//! The eight escape paths of Section 3 and the Path Tracing Lemma (Lemma 6).
//!
//! For a point `p` not inside any obstacle, the path `XY(p)` starts at `p`,
//! travels in direction `X` whenever it can, and slides along the blocking
//! obstacle's boundary in direction `Y` to get around it (Fig. 5 shows
//! `NE(p)` and `WS(p)`).  Every such path is a staircase, it never properly
//! intersects an obstacle, and it has `O(n)` segments because each obstacle
//! is skirted at most once.
//!
//! The paper computes these paths with a trapezoidal decomposition plus the
//! Euler-tour technique; we trace them directly with the ray-shooting index
//! (`O(log^2 n)` per step, `O(n)` steps), which keeps the same output and the
//! same `O(n)`-segment guarantee.  Traces are clipped to a containing region:
//! they stop the first time they touch its boundary (the paper's unbounded
//! staircases are recovered by taking the region to be a large bounding box).

use rsp_geom::chain::on_segment;
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Dir, ObstacleSet, Point, StairRegion};

/// An escape-path kind `XY`: primary direction `X`, avoidance policy `Y`
/// (perpendicular to `X`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EscapeKind {
    /// Preferred direction of travel.
    pub primary: Dir,
    /// Side to go around blocking obstacles.
    pub policy: Dir,
}

impl EscapeKind {
    /// North-going, veering east around obstacles.
    pub const NE: EscapeKind = EscapeKind { primary: Dir::North, policy: Dir::East };
    /// North-going, veering west.
    pub const NW: EscapeKind = EscapeKind { primary: Dir::North, policy: Dir::West };
    /// South-going, veering east.
    pub const SE: EscapeKind = EscapeKind { primary: Dir::South, policy: Dir::East };
    /// South-going, veering west.
    pub const SW: EscapeKind = EscapeKind { primary: Dir::South, policy: Dir::West };
    /// East-going, veering north.
    pub const EN: EscapeKind = EscapeKind { primary: Dir::East, policy: Dir::North };
    /// East-going, veering south.
    pub const ES: EscapeKind = EscapeKind { primary: Dir::East, policy: Dir::South };
    /// West-going, veering north.
    pub const WN: EscapeKind = EscapeKind { primary: Dir::West, policy: Dir::North };
    /// West-going, veering south.
    pub const WS: EscapeKind = EscapeKind { primary: Dir::West, policy: Dir::South };

    /// All eight escape kinds.
    pub const ALL: [EscapeKind; 8] = [
        EscapeKind::NE,
        EscapeKind::NW,
        EscapeKind::SE,
        EscapeKind::SW,
        EscapeKind::EN,
        EscapeKind::ES,
        EscapeKind::WN,
        EscapeKind::WS,
    ];
}

/// First point of the open segment `(a, b]` that lies on the region
/// boundary, walking from `a` towards `b`.
fn first_boundary_point_on_segment(region: &StairRegion, a: Point, b: Point) -> Option<Point> {
    if a == b {
        return None;
    }
    let mut best: Option<Point> = None;
    let mut consider = |p: Point| {
        if p == a || !on_segment(a, b, p) {
            return;
        }
        if best.is_none_or(|q| p.l1(a) < q.l1(a)) {
            best = Some(p);
        }
    };
    for (u, v) in region.edges() {
        // intersection of segment a-b with edge u-v (both axis-parallel)
        if a.x == b.x {
            if u.x == v.x {
                if u.x == a.x {
                    // collinear vertical overlap: candidate endpoints
                    consider(u);
                    consider(v);
                }
            } else {
                // horizontal edge: crosses x = a.x?
                if u.x.min(v.x) <= a.x && a.x <= u.x.max(v.x) {
                    let y = u.y;
                    if y >= a.y.min(b.y) && y <= a.y.max(b.y) {
                        consider(Point::new(a.x, y));
                    }
                }
            }
        } else {
            if u.y == v.y {
                if u.y == a.y {
                    consider(u);
                    consider(v);
                }
            } else if u.y.min(v.y) <= a.y && a.y <= u.y.max(v.y) {
                let x = u.x;
                if x >= a.x.min(b.x) && x <= a.x.max(b.x) {
                    consider(Point::new(x, a.y));
                }
            }
        }
    }
    best
}

/// Where the ray from `p` in direction `dir` leaves the region (for `p`
/// inside a rectilinearly convex region).
fn region_exit(region: &StairRegion, p: Point, dir: Dir) -> Option<Point> {
    rsp_geom::bq::boundary_exit(region, p, dir)
}

/// Trace the escape path `kind` from `start`, clipped to `region`.
///
/// `start` must lie in the region and not strictly inside an obstacle.  The
/// returned chain begins at `start` and ends on the region boundary (or at
/// `start` itself if `start` is already on the boundary and the path exits
/// immediately).
pub fn escape_path(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    start: Point,
    kind: EscapeKind,
) -> Chain {
    assert!(region.contains(start), "trace must start inside the region");
    debug_assert!(obstacles.containing_obstacle(start).is_none(), "trace must not start inside an obstacle");
    let mut pts = vec![start];
    let mut p = start;
    let max_steps = 2 * obstacles.len() + 4;
    for _ in 0..max_steps {
        // Candidate end of the primary leg: obstacle hit or region exit.
        let obstacle_hit = index.shoot(p, kind.primary);
        let exit = region_exit(region, p, kind.primary);
        let exit = match exit {
            Some(e) => e,
            None => break, // degenerate region; stop where we are
        };
        match obstacle_hit {
            Some(hit) if hit.distance_from(p) < exit.l1(p) => {
                // Travel to the obstacle, then slide along its facing edge in
                // the policy direction to the corner that clears it, unless
                // the region boundary stops us first.
                let h = hit.point;
                if let Some(stop) = first_boundary_point_on_segment(region, p, h) {
                    pts.push(stop);
                    return Chain::new(pts);
                }
                pts.push(h);
                let rect = obstacles.rect(hit.rect);
                let corner = rect.corner(
                    if kind.primary.is_vertical() {
                        // facing edge is horizontal: the corner shares the
                        // edge's y, i.e. the side we ran into
                        kind.primary.opposite()
                    } else {
                        kind.policy
                    },
                    if kind.primary.is_vertical() { kind.policy } else { kind.primary.opposite() },
                );
                if let Some(stop) = first_boundary_point_on_segment(region, h, corner) {
                    pts.push(stop);
                    return Chain::new(pts);
                }
                pts.push(corner);
                p = corner;
            }
            _ => {
                pts.push(exit);
                return Chain::new(pts);
            }
        }
    }
    Chain::new(pts)
}

/// The increasing staircase through `p` formed by `WS(p)` and `NE(p)`
/// (Theorem 2 uses exactly this pair).  Returned as a left-to-right walk
/// (from the end of the `WS` branch, through `p`, to the end of the `NE`
/// branch), clipped to the region.
pub fn increasing_staircase_through(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    p: Point,
) -> Chain {
    let ws = escape_path(obstacles, index, region, p, EscapeKind::WS);
    let ne = escape_path(obstacles, index, region, p, EscapeKind::NE);
    ws.reversed().concat(&ne)
}

/// The decreasing staircase through `p` formed by `NW(p)` and `ES(p)`,
/// as a left-to-right walk.
pub fn decreasing_staircase_through(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    p: Point,
) -> Chain {
    let nw = escape_path(obstacles, index, region, p, EscapeKind::NW);
    let es = escape_path(obstacles, index, region, p, EscapeKind::ES);
    nw.reversed().concat(&es)
}

/// Does the chain properly intersect (enter the open interior of) any
/// obstacle?  Escape paths and separators must never do so.
pub fn chain_avoids_obstacles(chain: &Chain, obstacles: &ObstacleSet) -> bool {
    chain.segments().all(|(a, b)| obstacles.segment_clear(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::Rect;

    fn setup() -> (ObstacleSet, ShootIndex, StairRegion) {
        let obstacles = ObstacleSet::new(vec![
            Rect::new(2, 4, 6, 6),
            Rect::new(8, 2, 10, 8),
            Rect::new(3, 9, 9, 11),
            Rect::new(-2, -3, 1, 1),
        ]);
        let index = ShootIndex::build(&obstacles);
        let region = StairRegion::from_rect(obstacles.bbox().unwrap().expand(4));
        (obstacles, index, region)
    }

    #[test]
    fn north_east_trace_skirts_obstacles() {
        let (obs, idx, region) = setup();
        let chain = escape_path(&obs, &idx, &region, Point::new(4, 0), EscapeKind::NE);
        assert!(chain.is_staircase());
        assert!(chain_avoids_obstacles(&chain, &obs));
        // it must have gone around obstacle 0 (blocking x=4 at y=4) to the east
        assert!(chain.contains_point(Point::new(4, 4)));
        assert!(chain.contains_point(Point::new(6, 4)));
        // and around the roof (obstacle 2) to the east as well
        assert!(chain.contains_point(Point::new(9, 9)));
        // ends on the region boundary
        assert!(region.on_boundary(chain.last()));
        assert_eq!(chain.first(), Point::new(4, 0));
    }

    #[test]
    fn north_west_trace_goes_the_other_way() {
        let (obs, idx, region) = setup();
        let chain = escape_path(&obs, &idx, &region, Point::new(4, 0), EscapeKind::NW);
        assert!(chain.is_staircase());
        assert!(chain_avoids_obstacles(&chain, &obs));
        assert!(chain.contains_point(Point::new(2, 4)), "should turn west at obstacle 0: {:?}", chain.points());
        assert!(region.on_boundary(chain.last()));
    }

    #[test]
    fn all_eight_traces_are_staircases_and_clear() {
        let (obs, idx, region) = setup();
        let start = Point::new(7, 1);
        for kind in EscapeKind::ALL {
            let chain = escape_path(&obs, &idx, &region, start, kind);
            assert!(chain.is_staircase(), "{:?} not a staircase: {:?}", kind, chain.points());
            assert!(chain_avoids_obstacles(&chain, &obs), "{:?} enters an obstacle", kind);
            assert!(chain.num_segments() <= 2 * obs.len() + 3);
            assert!(region.on_boundary(chain.last()), "{:?} does not reach the boundary", kind);
        }
    }

    #[test]
    fn combined_staircases_span_the_region() {
        let (obs, idx, region) = setup();
        let p = Point::new(7, 1);
        let inc = increasing_staircase_through(&obs, &idx, &region, p);
        assert!(inc.is_staircase());
        assert!(chain_avoids_obstacles(&inc, &obs));
        assert!(region.on_boundary(inc.first()) && region.on_boundary(inc.last()));
        assert!(inc.contains_point(p));
        let dec = decreasing_staircase_through(&obs, &idx, &region, p);
        assert!(dec.is_staircase());
        assert!(chain_avoids_obstacles(&dec, &obs));
        assert!(dec.contains_point(p));
    }

    #[test]
    fn trace_with_no_obstacles_is_straight() {
        let obs = ObstacleSet::empty();
        let idx = ShootIndex::build(&obs);
        let region = StairRegion::from_rect(Rect::new(0, 0, 10, 10));
        let chain = escape_path(&obs, &idx, &region, Point::new(3, 3), EscapeKind::NE);
        assert_eq!(chain.points(), &[Point::new(3, 3), Point::new(3, 10)]);
        let chain = escape_path(&obs, &idx, &region, Point::new(3, 3), EscapeKind::WS);
        assert_eq!(chain.points(), &[Point::new(3, 3), Point::new(0, 3)]);
    }

    #[test]
    fn trace_starting_on_boundary() {
        let (obs, idx, region) = setup();
        let bbox = region.bbox();
        let start = Point::new(4, bbox.ymin);
        let chain = escape_path(&obs, &idx, &region, start, EscapeKind::EN);
        assert!(chain.is_staircase());
        assert!(region.on_boundary(chain.last()));
    }
}
