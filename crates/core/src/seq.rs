//! Section 9: single-source shortest path lengths to all obstacle vertices by
//! topological relaxation of monotone DAGs, and the `O(n^2)`-style sequential
//! all-pairs construction built from it.
//!
//! For a source `v`, the plane is covered by four regions delimited by escape
//! paths from `v` (Fig. 5 / Section 9, following de Rezende–Lee–Wu [11]):
//! targets in the region to the right of `NE(v) ∪ SE(v)` have an x-monotone
//! shortest path with `v` as its left endpoint (Case (i)); the other three
//! cases are the reflections/transpositions of this one.  Within Case (i) the
//! length to a target `w` is either `d(v, w)` — when the leftward ray from
//! `w` reaches `NE(v) ∪ SE(v)` before any obstacle — or it goes through one
//! of the two right-edge vertices of the first obstacle hit by that ray.
//! Processing targets by increasing `x` therefore resolves all lengths in one
//! topological sweep.
//!
//! Two properties make the implementation below robust:
//!
//! * every value the sweep assigns is the length of some valid
//!   obstacle-avoiding path (so it can never *under*-estimate), and
//! * for targets inside the case's region the assigned value is exactly the
//!   shortest-path length (the paper's argument).
//!
//! Taking the minimum over the four symmetric cases therefore yields exact
//! distances for every obstacle vertex.

use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Dist, ObstacleSet, Point, Rect, StairRegion, INF};
use std::collections::HashMap;

use crate::trace::{escape_path, EscapeKind};

/// The four coordinate transforms mapping each monotone case onto the
/// canonical "x-monotone, source on the left" case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CaseTransform {
    /// Case (i): x-monotone, source is the left endpoint.
    Identity,
    /// Case (ii): x-monotone, source is the right endpoint.
    ReflectX,
    /// Case (iii): y-monotone, source is the lower endpoint.
    SwapXY,
    /// Case (iv): y-monotone, source is the upper endpoint.
    SwapReflect,
}

impl CaseTransform {
    const ALL: [CaseTransform; 4] =
        [CaseTransform::Identity, CaseTransform::ReflectX, CaseTransform::SwapXY, CaseTransform::SwapReflect];

    /// All four transforms are involutions, so the same map is used in both
    /// directions.
    fn apply(self, p: Point) -> Point {
        match self {
            CaseTransform::Identity => p,
            CaseTransform::ReflectX => Point::new(-p.x, p.y),
            CaseTransform::SwapXY => Point::new(p.y, p.x),
            CaseTransform::SwapReflect => Point::new(-p.y, -p.x),
        }
    }

    fn apply_rect(self, r: &Rect) -> Rect {
        let a = self.apply(Point::new(r.xmin, r.ymin));
        let b = self.apply(Point::new(r.xmax, r.ymax));
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }
}

struct TransformedView {
    transform: CaseTransform,
    obstacles: ObstacleSet,
    index: ShootIndex,
    /// transformed vertex points, parallel to the *original* vertex indexing
    vertices: Vec<Point>,
    region: StairRegion,
}

/// Single-source engine over a fixed obstacle set.  Preprocessing is done
/// once (`O(n log n)`); each [`SingleSourceEngine::distances_from`] call then
/// costs `O(n log n)` — the role of the de Rezende–Lee–Wu structure in the
/// paper's Section 9 baseline.
pub struct SingleSourceEngine {
    views: Vec<TransformedView>,
    num_vertices: usize,
    original_vertices: Vec<Point>,
}

impl SingleSourceEngine {
    /// Preprocess an obstacle set: build the four case-transformed views and
    /// their ray-shooting indices (Section 9).
    pub fn new(obstacles: &ObstacleSet) -> Self {
        let original_vertices = obstacles.vertices();
        let views = CaseTransform::ALL
            .iter()
            .map(|&t| {
                let rects: Vec<Rect> = obstacles.iter().map(|r| t.apply_rect(r)).collect();
                let tobs = ObstacleSet::new(rects);
                let index = ShootIndex::build(&tobs);
                let vertices: Vec<Point> = original_vertices.iter().map(|&p| t.apply(p)).collect();
                let bbox = tobs.bbox().unwrap_or(Rect::new(-1, -1, 1, 1)).expand(4);
                TransformedView { transform: t, obstacles: tobs, index, vertices, region: StairRegion::from_rect(bbox) }
            })
            .collect();
        SingleSourceEngine { views, num_vertices: original_vertices.len(), original_vertices }
    }

    /// The obstacle vertices, in the indexing used by the returned distance
    /// vectors.
    pub fn vertices(&self) -> &[Point] {
        &self.original_vertices
    }

    /// Exact shortest-path distances from `source` to every obstacle vertex.
    pub fn distances_from(&self, source: Point) -> Vec<Dist> {
        let mut dist = vec![INF; self.num_vertices];
        for view in &self.views {
            let tsource = view.transform.apply(source);
            let case = monotone_case_distances(&view.obstacles, &view.index, &view.region, &view.vertices, tsource);
            for (d, best) in case.into_iter().zip(dist.iter_mut()) {
                if d < *best {
                    *best = d;
                }
            }
        }
        dist
    }
}

/// Case (i) sweep: upper bounds on distances from `source` to each vertex
/// (exact for vertices in the region right of `NE(source) ∪ SE(source)`).
fn monotone_case_distances(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    vertices: &[Point],
    source: Point,
) -> Vec<Dist> {
    let mut dist = vec![INF; vertices.len()];
    // region must contain the source for the escape traces
    let region = if region.contains(source) {
        region.clone()
    } else {
        let bbox = region.bbox();
        let srect = Rect::new(source.x - 1, source.y - 1, source.x + 1, source.y + 1);
        StairRegion::from_rect(bbox.union(&srect).expand(2))
    };
    if obstacles.containing_obstacle(source).is_some() {
        return dist;
    }
    let ne = escape_path(obstacles, index, &region, source, EscapeKind::NE);
    let se = escape_path(obstacles, index, &region, source, EscapeKind::SE);
    // index vertices by point for the u1/u2 lookups
    let mut by_point: HashMap<Point, Vec<usize>> = HashMap::new();
    for (i, &p) in vertices.iter().enumerate() {
        by_point.entry(p).or_default().push(i);
    }
    // process targets by increasing x (then y for determinism)
    let mut order: Vec<usize> = (0..vertices.len()).filter(|&i| vertices[i].x >= source.x).collect();
    order.sort_by_key(|&i| (vertices[i].x, vertices[i].y));
    let crossing_before = |w: Point, x_obstacle: Option<i64>| -> bool {
        // does the leftward ray from w reach NE ∪ SE no later than the first
        // obstacle?
        let mut best_chain_x: Option<i64> = None;
        for chain in [&ne, &se] {
            if let Some((lo, hi)) = chain.intersect_horizontal(w.y) {
                let candidate = if hi <= w.x {
                    Some(hi)
                } else if lo <= w.x {
                    Some(w.x) // w lies in the chain's span at this y (on the chain)
                } else {
                    None
                };
                if let Some(c) = candidate {
                    best_chain_x = Some(best_chain_x.map_or(c, |b: i64| b.max(c)));
                }
            }
        }
        match (best_chain_x, x_obstacle) {
            (Some(cx), Some(ox)) => cx >= ox,
            (Some(_), None) => true,
            (None, _) => false,
        }
    };
    for i in order {
        let w = vertices[i];
        if w == source {
            dist[i] = 0;
            continue;
        }
        let hit = index.shoot(w, rsp_geom::Dir::West);
        let x_obstacle = hit.map(|h| h.point.x);
        let mut best = INF;
        if crossing_before(w, x_obstacle) {
            best = source.l1(w);
        } else if let Some(h) = hit {
            let r = obstacles.rect(h.rect);
            for u in [r.lr(), r.ur()] {
                if let Some(ids) = by_point.get(&u) {
                    for &ui in ids {
                        if dist[ui] < INF {
                            best = best.min(dist[ui] + u.l1(w));
                        }
                    }
                }
            }
        }
        if best < dist[i] {
            dist[i] = best;
        }
    }
    dist
}

/// All-pairs vertex-to-vertex length matrix computed sequentially, one source
/// at a time (the Section 9 construction).  Returns the matrix indexed like
/// [`ObstacleSet::vertices`].
pub fn sequential_vertex_apsp(obstacles: &ObstacleSet) -> Vec<Vec<Dist>> {
    let engine = SingleSourceEngine::new(obstacles);
    engine.vertices().to_vec().iter().map(|&v| engine.distances_from(v)).collect()
}

/// Reconstruct one shortest path from the single-source engine by greedy
/// backtracking on distances (used by tests; Section 8's shortest-path trees
/// are the production path-reporting mechanism).
pub fn escape_chains_for_source(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    source: Point,
) -> (Chain, Chain, Chain, Chain) {
    let ne = escape_path(obstacles, index, region, source, EscapeKind::NE);
    let nw = escape_path(obstacles, index, region, source, EscapeKind::NW);
    let se = escape_path(obstacles, index, region, source, EscapeKind::SE);
    let sw = escape_path(obstacles, index, region, source, EscapeKind::SW);
    (ne, nw, se, sw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rsp_geom::hanan::ground_truth_matrix;

    fn random_disjoint(n: usize, seed: u64) -> ObstacleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = (n as f64).sqrt().ceil() as i64 + 1;
        let cell = 16i64;
        let mut cells: Vec<(i64, i64)> = (0..side).flat_map(|i| (0..side).map(move |j| (i, j))).collect();
        for i in (1..cells.len()).rev() {
            let j = rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        let rects: Vec<Rect> = cells
            .iter()
            .take(n)
            .map(|&(ci, cj)| {
                let x0 = ci * cell + rng.gen_range(1i64..5);
                let y0 = cj * cell + rng.gen_range(1i64..5);
                Rect::new(x0, y0, x0 + rng.gen_range(2i64..9), y0 + rng.gen_range(2i64..9))
            })
            .collect();
        ObstacleSet::new(rects)
    }

    #[test]
    fn single_wall_distances() {
        let obs = ObstacleSet::new(vec![Rect::new(4, -10, 6, 10)]);
        let engine = SingleSourceEngine::new(&obs);
        let d = engine.distances_from(Point::new(0, 0));
        let verts = engine.vertices();
        for (i, &v) in verts.iter().enumerate() {
            let expect = rsp_geom::hanan::ground_truth_distance(&obs, Point::new(0, 0), v);
            assert_eq!(d[i], expect, "vertex {:?}", v);
        }
    }

    #[test]
    fn matches_ground_truth_on_random_instances() {
        for seed in 0..6 {
            let obs = random_disjoint(10, seed);
            let verts = obs.vertices();
            let truth = ground_truth_matrix(&obs, &verts);
            let engine = SingleSourceEngine::new(&obs);
            for (i, &v) in verts.iter().enumerate() {
                let d = engine.distances_from(v);
                for j in 0..verts.len() {
                    assert_eq!(d[j], truth[i][j], "seed {seed}: {:?} -> {:?}", v, verts[j]);
                }
            }
        }
    }

    #[test]
    fn sequential_apsp_is_symmetric_and_matches_truth() {
        let obs = random_disjoint(8, 42);
        let verts = obs.vertices();
        let apsp = sequential_vertex_apsp(&obs);
        let truth = ground_truth_matrix(&obs, &verts);
        for i in 0..verts.len() {
            for j in 0..verts.len() {
                assert_eq!(apsp[i][j], truth[i][j]);
                assert_eq!(apsp[i][j], apsp[j][i]);
            }
        }
    }

    #[test]
    fn source_can_be_an_arbitrary_point() {
        let obs = random_disjoint(9, 7);
        let engine = SingleSourceEngine::new(&obs);
        let source = Point::new(-3, -5);
        let d = engine.distances_from(source);
        for (j, &w) in engine.vertices().iter().enumerate() {
            let expect = rsp_geom::hanan::ground_truth_distance(&obs, source, w);
            assert_eq!(d[j], expect, "target {:?}", w);
        }
    }

    #[test]
    fn no_obstacles_gives_l1() {
        let obs = ObstacleSet::new(vec![Rect::new(100, 100, 101, 101)]);
        let engine = SingleSourceEngine::new(&obs);
        let d = engine.distances_from(Point::new(0, 0));
        assert_eq!(d[0], 200);
    }
}
