//! The Staircase Separator Theorem (Theorem 2 of the paper).
//!
//! Given `n` disjoint rectangular obstacles, find a staircase `Sep` that
//! (1) does not enter the interior of any obstacle, (2) leaves at most
//! `7n/8` obstacles on either side, and (3) has `O(n)` segments.  The
//! construction follows the paper: take the vertical median line `V` and the
//! horizontal median line `H` of the obstacle vertices; if at least `n/4`
//! obstacles straddle one of them, split those straddling obstacles in half
//! around a point `p` on that line; otherwise use the intersection point of
//! `V` and `H` and the quadrant counting argument.  In all cases `Sep` is the
//! union of two escape paths through `p` (Fig. 6).
//!
//! Inside the divide-and-conquer the separator is clipped to the current
//! region, which can (rarely, for clipped regions that are far from
//! rectangles) upset the exact `n/8` guarantee; [`find_separator`] therefore
//! also tries a small set of fallback pivots and returns the most balanced
//! valid separator.  The Theorem-2 guarantee itself is exercised by the E1
//! benchmark and the tests below on bounding-box regions, where the
//! construction is exactly the paper's.

use crate::trace::{chain_avoids_obstacles, decreasing_staircase_through, increasing_staircase_through};
use rsp_geom::chain::Side;
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::rect::RectId;
use rsp_geom::{Chain, Coord, ObstacleSet, Point, Rect, StairRegion};

/// A staircase separator for an obstacle set inside a region.
#[derive(Clone, Debug)]
pub struct Separator {
    /// The separating staircase, clipped to the region (endpoints on the
    /// region boundary).
    pub chain: Chain,
    /// Obstacles on the `Above` side of the chain.
    pub above: Vec<RectId>,
    /// Obstacles on the `Below` side of the chain.
    pub below: Vec<RectId>,
    /// The pivot point the separator was traced through.
    pub pivot: Point,
}

impl Separator {
    /// Size of the larger side.
    pub fn max_side(&self) -> usize {
        self.above.len().max(self.below.len())
    }

    /// Does this separator satisfy the Theorem-2 balance guarantee
    /// (`max side <= 7n/8`, equivalently `min side >= n/8`)?
    pub fn is_theorem2_balanced(&self, n: usize) -> bool {
        self.max_side() * 8 <= 7 * n
    }
}

/// Classify an obstacle with respect to a separator chain.  Returns `None`
/// if the chain properly intersects the obstacle (which a valid separator
/// never does).
fn rect_side(chain: &Chain, rect: &Rect) -> Option<Side> {
    let mut above = false;
    let mut below = false;
    for c in rect.corners() {
        match chain.side_of(c) {
            Side::Above => above = true,
            Side::Below => below = true,
            Side::On => {}
        }
    }
    match (above, below) {
        (true, true) => None,
        (true, false) => Some(Side::Above),
        (false, true) => Some(Side::Below),
        // all corners on the chain: degenerate; count it as Above
        (false, false) => Some(Side::Above),
    }
}

/// Orientation of the separator staircase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Orientation {
    Increasing,
    Decreasing,
}

fn build_candidate(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    pivot: Point,
    orientation: Orientation,
) -> Option<Separator> {
    if !region.contains(pivot) || obstacles.containing_obstacle(pivot).is_some() {
        return None;
    }
    let chain = match orientation {
        Orientation::Increasing => increasing_staircase_through(obstacles, index, region, pivot),
        Orientation::Decreasing => decreasing_staircase_through(obstacles, index, region, pivot),
    };
    if chain.num_segments() == 0 || !chain.is_staircase() || !chain_avoids_obstacles(&chain, obstacles) {
        return None;
    }
    // The chain must meet the region boundary only at its two endpoints;
    // otherwise splitting the region along it would create more than two
    // faces (this can happen when the pivot was nudged onto an obstacle edge
    // that lies on an ancestor separator).
    let pts = chain.points();
    if pts.len() > 2 && pts[1..pts.len() - 1].iter().any(|&p| region.on_boundary(p)) {
        return None;
    }
    let mut above = Vec::new();
    let mut below = Vec::new();
    for (id, r) in obstacles.iter().enumerate() {
        match rect_side(&chain, r)? {
            Side::Above => above.push(id),
            Side::Below => below.push(id),
            Side::On => above.push(id),
        }
    }
    if above.is_empty() || below.is_empty() {
        return None;
    }
    Some(Separator { chain, above, below, pivot })
}

/// Move a pivot out of the obstacle that contains it (vertically, to the
/// nearer of the obstacle's bottom/top edge), as the paper's "the algorithm
/// can be easily modified" remark prescribes.
fn nudge_out_of_obstacle(obstacles: &ObstacleSet, p: Point) -> Point {
    match obstacles.containing_obstacle(p) {
        None => p,
        Some(id) => {
            let r = obstacles.rect(id);
            if p.y - r.ymin <= r.ymax - p.y {
                Point::new(p.x, r.ymin)
            } else {
                Point::new(p.x, r.ymax)
            }
        }
    }
}

fn median(mut values: Vec<Coord>) -> Coord {
    values.sort_unstable();
    values[values.len() / 2]
}

/// The canonical Theorem-2 pivot and orientation.
fn theorem2_pivot(obstacles: &ObstacleSet) -> (Point, Orientation) {
    let n = obstacles.len();
    let vertices = obstacles.vertices();
    let v_line = median(vertices.iter().map(|p| p.x).collect());
    let crossed_by_v: Vec<&Rect> = obstacles.iter().filter(|r| r.xmin < v_line && v_line < r.xmax).collect();
    if 4 * crossed_by_v.len() >= n {
        let y = median(crossed_by_v.iter().map(|r| (r.ymin + r.ymax) / 2).collect());
        return (nudge_out_of_obstacle(obstacles, Point::new(v_line, y)), Orientation::Increasing);
    }
    let h_line = median(vertices.iter().map(|p| p.y).collect());
    let crossed_by_h: Vec<&Rect> = obstacles.iter().filter(|r| r.ymin < h_line && h_line < r.ymax).collect();
    if 4 * crossed_by_h.len() >= n {
        let x = median(crossed_by_h.iter().map(|r| (r.xmin + r.xmax) / 2).collect());
        return (nudge_out_of_obstacle(obstacles, Point::new(x, h_line)), Orientation::Increasing);
    }
    let p = nudge_out_of_obstacle(obstacles, Point::new(v_line, h_line));
    // Quadrant counting: obstacles entirely inside one quadrant.
    let mut counts = [0usize; 4]; // NE, NW, SE, SW
    for r in obstacles.iter() {
        let east = r.xmin >= v_line;
        let west = r.xmax <= v_line;
        let north = r.ymin >= h_line;
        let south = r.ymax <= h_line;
        if north && east {
            counts[0] += 1;
        } else if north && west {
            counts[1] += 1;
        } else if south && east {
            counts[2] += 1;
        } else if south && west {
            counts[3] += 1;
        }
    }
    let argmax = (0..4).max_by_key(|&i| counts[i]).unwrap();
    // NW or SE dominant: an increasing staircase through p keeps the dominant
    // quadrant on one side; NE or SW dominant: use a decreasing staircase.
    let orientation = if argmax == 1 || argmax == 2 { Orientation::Increasing } else { Orientation::Decreasing };
    (p, orientation)
}

/// Find a staircase separator for `obstacles` inside `region`.
///
/// Returns `None` when `obstacles.len() < 2` (nothing to separate) or when no
/// valid separator could be found among the candidate pivots (which does not
/// happen for bounding-box regions; callers fall back to direct computation).
pub fn find_separator(obstacles: &ObstacleSet, index: &ShootIndex, region: &StairRegion) -> Option<Separator> {
    let n = obstacles.len();
    if n < 2 {
        return None;
    }
    let mut candidates: Vec<(Point, Orientation)> = Vec::new();
    let canonical = theorem2_pivot(obstacles);
    candidates.push(canonical);
    candidates.push((
        canonical.0,
        if canonical.1 == Orientation::Increasing { Orientation::Decreasing } else { Orientation::Increasing },
    ));
    // Fallback pivots: coordinate quantiles of the obstacle vertices.
    let vertices = obstacles.vertices();
    let mut xs: Vec<Coord> = vertices.iter().map(|p| p.x).collect();
    let mut ys: Vec<Coord> = vertices.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    ys.sort_unstable();
    for &fx in &[2usize, 1, 3] {
        for &fy in &[2usize, 1, 3] {
            let p = Point::new(xs[(xs.len() - 1) * fx / 4], ys[(ys.len() - 1) * fy / 4]);
            let p = nudge_out_of_obstacle(obstacles, p);
            candidates.push((p, Orientation::Increasing));
            candidates.push((p, Orientation::Decreasing));
        }
    }
    // As a last resort, pivots just outside each obstacle's upper-right
    // corner (guarantees at least that obstacle ends up on a fixed side).
    for r in obstacles.iter().take(8) {
        candidates.push((r.ur(), Orientation::Decreasing));
        candidates.push((r.ll(), Orientation::Decreasing));
    }
    let mut best: Option<Separator> = None;
    for (pivot, orientation) in candidates {
        if let Some(sep) = build_candidate(obstacles, index, region, pivot, orientation) {
            if best.as_ref().is_none_or(|b| sep.max_side() < b.max_side()) {
                best = Some(sep);
            }
            // The canonical candidate satisfying the theorem bound is good
            // enough; stop early to keep the cost at O(n) shots.
            if best.as_ref().unwrap().is_theorem2_balanced(n) {
                break;
            }
        }
    }
    best
}

/// Convenience wrapper matching the Theorem-2 statement: separator for an
/// obstacle set inside its expanded bounding box.
pub fn find_separator_unbounded(obstacles: &ObstacleSet) -> Option<Separator> {
    let bbox = obstacles.bbox()?.expand(4);
    let region = StairRegion::from_rect(bbox);
    let index = ShootIndex::build(obstacles);
    find_separator(obstacles, &index, &region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_disjoint(n: usize, seed: u64) -> ObstacleSet {
        // place obstacles on a coarse grid so they are disjoint by construction
        let mut rng = StdRng::seed_from_u64(seed);
        let side = (n as f64).sqrt().ceil() as i64 + 1;
        let cell = 20i64;
        let mut rects = Vec::new();
        let mut cells: Vec<(i64, i64)> = (0..side).flat_map(|i| (0..side).map(move |j| (i, j))).collect();
        // shuffle
        for i in (1..cells.len()).rev() {
            let j = rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        for &(ci, cj) in cells.iter().take(n) {
            let x0 = ci * cell + rng.gen_range(1i64..6);
            let y0 = cj * cell + rng.gen_range(1i64..6);
            let w = rng.gen_range(2i64..12);
            let h = rng.gen_range(2i64..12);
            rects.push(Rect::new(x0, y0, x0 + w, y0 + h));
        }
        let obs = ObstacleSet::new(rects);
        assert!(obs.validate_disjoint().is_ok());
        obs
    }

    #[test]
    fn separator_properties_on_random_instances() {
        for seed in 0..10 {
            let n = 40 + (seed as usize) * 7;
            let obs = random_disjoint(n, seed);
            let sep = find_separator_unbounded(&obs).expect("separator must exist");
            // property 1: never enters an obstacle interior
            assert!(chain_avoids_obstacles(&sep.chain, &obs));
            // property 2: both sides within 7n/8  (Theorem 2)
            assert!(
                sep.is_theorem2_balanced(n),
                "unbalanced separator: {} vs {} of {}",
                sep.above.len(),
                sep.below.len(),
                n
            );
            assert_eq!(sep.above.len() + sep.below.len(), n);
            // property 3: O(n) segments
            assert!(sep.chain.num_segments() <= 2 * n + 4);
            // it is a staircase
            assert!(sep.chain.is_staircase());
        }
    }

    #[test]
    fn separator_sides_are_consistent_with_geometry() {
        let obs = random_disjoint(30, 99);
        let sep = find_separator_unbounded(&obs).unwrap();
        for &id in &sep.above {
            assert_eq!(rect_side(&sep.chain, &obs.rect(id)), Some(Side::Above));
        }
        for &id in &sep.below {
            assert_eq!(rect_side(&sep.chain, &obs.rect(id)), Some(Side::Below));
        }
    }

    #[test]
    fn no_separator_for_tiny_inputs() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 2, 2)]);
        assert!(find_separator_unbounded(&obs).is_none());
        assert!(find_separator_unbounded(&ObstacleSet::empty()).is_none());
    }

    #[test]
    fn two_obstacles_are_split_one_each() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 2, 2), Rect::new(10, 10, 12, 12)]);
        let sep = find_separator_unbounded(&obs).unwrap();
        assert_eq!(sep.above.len(), 1);
        assert_eq!(sep.below.len(), 1);
    }

    #[test]
    fn stacked_obstacles_crossing_the_median() {
        // many obstacles straddling the vertical median line: the v >= n/4
        // branch of the construction
        let rects: Vec<Rect> = (0..16).map(|i| Rect::new(-10, i * 5, 10, i * 5 + 3)).collect();
        let obs = ObstacleSet::new(rects);
        let sep = find_separator_unbounded(&obs).unwrap();
        assert!(sep.is_theorem2_balanced(16));
        assert!(chain_avoids_obstacles(&sep.chain, &obs));
    }

    #[test]
    fn clustered_quadrant_instance() {
        // all obstacles in two opposite quadrants: exercises the quadrant case
        let mut rects = Vec::new();
        for i in 0..8 {
            rects.push(Rect::new(20 + i * 6, 20 + i * 6, 24 + i * 6, 24 + i * 6)); // NE cluster
            rects.push(Rect::new(-30 - i * 6, -30 - i * 6, -26 - i * 6, -26 - i * 6));
            // SW cluster
        }
        let obs = ObstacleSet::new(rects);
        let sep = find_separator_unbounded(&obs).unwrap();
        assert!(sep.is_theorem2_balanced(16), "max side {}", sep.max_side());
    }
}
