//! Section 8: shortest-path trees and reporting actual paths.
//!
//! For every requested source vertex `v` we build a shortest-path tree over
//! the obstacle vertices.  Each vertex `w` either *attaches to the escape
//! staircase* of `v` pointing into `w`'s quadrant (when the ray from `w`
//! towards `v` reaches that staircase before any obstacle, the path runs
//! straight to the staircase and then along it to `v`), or its *parent is one
//! of the two endpoints of the first obstacle edge hit* by that ray — exactly
//! the parent rule of Section 8 / [11].  The parent pointers plus a
//! level-ancestor structure (rsp-pram) let `⌈k/log n⌉` workers report a
//! `k`-segment path in parallel chunks.

use crate::query::{quadrant_of, PathLengthOracle};
use rayon::prelude::*;
use rsp_geom::{Chain, Dir, Dist, ObstacleSet, Point, RectiPath, INF};
use rsp_pram::{Forest, LevelAncestor};
use std::collections::HashMap;
use std::sync::Arc;

/// How a vertex connects to its parent in a shortest-path tree.
#[derive(Clone, Debug)]
enum Connector {
    /// The tree root (the source itself) or an unreachable vertex.
    Root,
    /// Connect to the parent vertex through the given bend point (the ray's
    /// hit point on the parent's obstacle edge).
    ViaBend { parent: usize, bend: Point },
    /// Attach to the source's escape staircase at `attach`, then follow the
    /// staircase back to the source (`quadrant` selects which staircase).
    ChainAttach { attach: Point, quadrant: usize },
}

/// A single shortest-path tree rooted at one source vertex.
pub struct ShortestPathTree {
    source_index: usize,
    connectors: Vec<Connector>,
    ancestors: LevelAncestor,
}

/// Shortest-path trees for a set of source vertices.
///
/// The oracle is held behind an [`Arc`] so that one
/// [`PathLengthOracle`] build can be shared between length queries, path
/// reporting and the [`Router`](crate::router::Router) without ever being
/// reconstructed (the old by-value `from_oracle` forced callers that also
/// wanted length queries to build the oracle twice).
pub struct ShortestPathTrees {
    oracle: Arc<PathLengthOracle>,
    trees: HashMap<usize, ShortestPathTree>,
}

impl ShortestPathTrees {
    /// Build trees for the given sources (all `4n` vertices when `sources`
    /// is `None`), in parallel over sources.
    pub fn build(obstacles: &ObstacleSet, sources: Option<&[Point]>) -> Self {
        Self::from_oracle(Arc::new(PathLengthOracle::build(obstacles)), sources)
    }

    /// Build from a shared oracle.  The oracle is *not* rebuilt — the same
    /// `Arc` can keep serving length queries.
    pub fn from_oracle(oracle: Arc<PathLengthOracle>, sources: Option<&[Point]>) -> Self {
        let source_ids: Vec<usize> = match sources {
            Some(list) => list.iter().filter_map(|p| oracle.apsp().vertex_index(*p)).collect(),
            None => (0..oracle.apsp().len()).collect(),
        };
        let trees: HashMap<usize, ShortestPathTree> =
            source_ids.par_iter().map(|&s| (s, build_tree(&oracle, s))).collect();
        ShortestPathTrees { oracle, trees }
    }

    /// The oracle (for length queries).
    pub fn oracle(&self) -> &PathLengthOracle {
        &self.oracle
    }

    /// A clone of the shared oracle handle.
    pub fn oracle_arc(&self) -> Arc<PathLengthOracle> {
        Arc::clone(&self.oracle)
    }

    /// Number of trees built.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Is there a tree rooted at `source`?
    pub fn has_tree(&self, source: Point) -> bool {
        self.oracle.apsp().vertex_index(source).is_some_and(|s| self.trees.contains_key(&s))
    }

    /// Build (in parallel) any missing trees for the given source vertices;
    /// non-vertex points are ignored.  Returns the number of trees actually
    /// built, so callers can account construction work.
    pub fn ensure_sources(&mut self, sources: &[Point]) -> usize {
        let mut missing: Vec<usize> = sources
            .iter()
            .filter_map(|p| self.oracle.apsp().vertex_index(*p))
            .filter(|s| !self.trees.contains_key(s))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        let oracle = &self.oracle;
        let built: Vec<(usize, ShortestPathTree)> = missing.par_iter().map(|&s| (s, build_tree(oracle, s))).collect();
        let count = built.len();
        self.trees.extend(built);
        count
    }

    /// Report an actual shortest path between two obstacle vertices (a tree
    /// must have been built for `source`).
    pub fn path_between(&self, source: Point, target: Point) -> Option<RectiPath> {
        let apsp = self.oracle.apsp();
        let s = apsp.vertex_index(source)?;
        let t = apsp.vertex_index(target)?;
        let tree = self.trees.get(&s)?;
        Some(self.extract_path(tree, t))
    }

    /// The number of tree edges between `target` and the root of `source`'s
    /// tree (an upper bound on the number of path bends / the paper's `k` up
    /// to a constant), answered in O(1) from the stored depths.
    pub fn hop_count(&self, source: Point, target: Point) -> Option<usize> {
        let apsp = self.oracle.apsp();
        let s = apsp.vertex_index(source)?;
        let t = apsp.vertex_index(target)?;
        Some(self.trees.get(&s)?.ancestors.depth(t))
    }

    /// Report a path in `⌈hops/chunk⌉` independently extracted pieces (the
    /// parallel reporting scheme of Section 8, with `chunk ≈ log n`).  Pieces
    /// are returned in order from the target towards the source and together
    /// cover the whole path.
    pub fn path_chunks(&self, source: Point, target: Point, chunk: usize) -> Option<Vec<RectiPath>> {
        let apsp = self.oracle.apsp();
        let s = apsp.vertex_index(source)?;
        let t = apsp.vertex_index(target)?;
        let tree = self.trees.get(&s)?;
        let depth = tree.ancestors.depth(t);
        let chunk = chunk.max(1);
        let starts: Vec<usize> = (0..=depth.saturating_sub(1) / chunk).map(|i| i * chunk).collect();
        let pieces: Vec<RectiPath> = starts
            .par_iter()
            .map(|&up| {
                let from = tree.ancestors.ancestor_at(t, up);
                let steps = chunk.min(depth - up);
                self.extract_partial(tree, from, steps)
            })
            .collect();
        Some(pieces)
    }

    /// Walk from tree node `t` to the root, emitting the geometric path from
    /// the *source* to `t`.
    fn extract_path(&self, tree: &ShortestPathTree, t: usize) -> RectiPath {
        let piece = self.extract_partial(tree, t, usize::MAX);
        piece.reversed()
    }

    /// Geometric sub-path starting at tree node `from` and following at most
    /// `steps` tree edges towards the root (target-to-source orientation).
    fn extract_partial(&self, tree: &ShortestPathTree, from: usize, steps: usize) -> RectiPath {
        let vertices = self.oracle.apsp().vertices();
        let mut pts: Vec<Point> = vec![vertices[from]];
        let mut cur = from;
        let mut remaining = steps;
        while remaining > 0 {
            remaining -= 1;
            match &tree.connectors[cur] {
                Connector::Root => break,
                Connector::ViaBend { parent, bend } => {
                    pts.push(*bend);
                    pts.push(vertices[*parent]);
                    cur = *parent;
                }
                Connector::ChainAttach { attach, quadrant } => {
                    pts.push(*attach);
                    let chain = self.oracle.escape_chain(tree.source_index, *quadrant);
                    let attach_pos = chain.arc_position(*attach).unwrap_or(0);
                    let mut prefix: Vec<Point> = chain
                        .points()
                        .iter()
                        .copied()
                        .take_while(|&p| chain.arc_position(p).unwrap_or(Dist::MAX) <= attach_pos)
                        .collect();
                    prefix.reverse();
                    pts.extend(prefix);
                    break;
                }
            }
        }
        RectiPath::new(pts)
    }
}

fn build_tree(oracle: &PathLengthOracle, source_index: usize) -> ShortestPathTree {
    let apsp = oracle.apsp();
    let vertices = apsp.vertices();
    let source = vertices[source_index];
    let n = vertices.len();
    let mut connectors: Vec<Connector> = Vec::with_capacity(n);
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (w_idx, &w) in vertices.iter().enumerate() {
        if w_idx == source_index || w == source {
            connectors.push(Connector::Root);
            continue;
        }
        let total = apsp.distance(source_index, w_idx);
        if total >= INF {
            connectors.push(Connector::Root);
            continue;
        }
        let connector = choose_parent(oracle, source_index, source, w, total).unwrap_or_else(|| {
            // Safety net: any vertex u with a clear one-bend connection that
            // certifies the distance.
            for (u_idx, &u) in vertices.iter().enumerate() {
                if u_idx != w_idx && apsp.distance(source_index, u_idx) + u.l1(w) == total {
                    if let Some(bend) = oracle.l_connection(u, w) {
                        return Connector::ViaBend { parent: u_idx, bend };
                    }
                }
            }
            Connector::Root
        });
        match &connector {
            Connector::ViaBend { parent: p, .. } => parent[w_idx] = Some(*p),
            Connector::ChainAttach { .. } => parent[w_idx] = Some(source_index),
            Connector::Root => {}
        }
        connectors.push(connector);
    }
    let forest = Forest::new(parent);
    let ancestors = LevelAncestor::build(&forest);
    ShortestPathTree { source_index, connectors, ancestors }
}

/// The Section 8 parent rule: try the horizontal and the vertical ray from
/// `w` towards the source; accept a chain attachment or a blocking-edge
/// endpoint whenever it certifies the known distance `total`.
fn choose_parent(
    oracle: &PathLengthOracle,
    source_index: usize,
    source: Point,
    w: Point,
    total: Dist,
) -> Option<Connector> {
    let apsp = oracle.apsp();
    let quadrant = quadrant_of(source, w);
    let chain: &Chain = oracle.escape_chain(source_index, quadrant);
    let index = oracle.shoot_index();
    let dirs =
        [if source.x <= w.x { Dir::West } else { Dir::East }, if source.y <= w.y { Dir::South } else { Dir::North }];
    for dir in dirs {
        let hit = index.shoot(w, dir);
        let obstacle_distance = hit.map(|h| h.distance_from(w));
        let chain_crossing: Option<(Point, Dist)> = match dir {
            Dir::West | Dir::East => chain.intersect_horizontal(w.y).and_then(|(lo, hi)| {
                let x = if dir == Dir::West {
                    if hi <= w.x {
                        Some(hi)
                    } else if lo <= w.x {
                        Some(w.x)
                    } else {
                        None
                    }
                } else if lo >= w.x {
                    Some(lo)
                } else if hi >= w.x {
                    Some(w.x)
                } else {
                    None
                };
                x.map(|x| (Point::new(x, w.y), (x - w.x).abs()))
            }),
            Dir::North | Dir::South => chain.intersect_vertical(w.x).and_then(|(lo, hi)| {
                let y = if dir == Dir::South {
                    if hi <= w.y {
                        Some(hi)
                    } else if lo <= w.y {
                        Some(w.y)
                    } else {
                        None
                    }
                } else if lo >= w.y {
                    Some(lo)
                } else if hi >= w.y {
                    Some(w.y)
                } else {
                    None
                };
                y.map(|y| (Point::new(w.x, y), (y - w.y).abs()))
            }),
        };
        if let Some((attach, cd)) = chain_crossing {
            if obstacle_distance.is_none_or(|od| cd <= od) && w.l1(attach) + attach.l1(source) == total {
                return Some(Connector::ChainAttach { attach, quadrant });
            }
        }
        if let Some(h) = hit {
            let r = oracle.obstacles().rect(h.rect);
            let (v1, v2) = match dir {
                Dir::West => (r.lr(), r.ur()),
                Dir::East => (r.ll(), r.ul()),
                Dir::South => (r.ul(), r.ur()),
                Dir::North => (r.ll(), r.lr()),
            };
            for v in [v1, v2] {
                if let Some(vi) = apsp.vertex_index(v) {
                    if apsp.distance(source_index, vi) + v.l1(w) == total {
                        return Some(Connector::ViaBend { parent: vi, bend: h.point });
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_distance;
    use rsp_workload::uniform_disjoint;

    #[test]
    fn reported_paths_are_valid_and_tight() {
        for seed in 0..3 {
            let w = uniform_disjoint(7, seed);
            let verts = w.obstacles.vertices();
            let sources = vec![verts[0], verts[5], verts[verts.len() - 1]];
            let trees = ShortestPathTrees::build(&w.obstacles, Some(&sources));
            assert_eq!(trees.num_trees(), sources.len());
            for &s in &sources {
                for &t in verts.iter().step_by(3) {
                    let expect = ground_truth_distance(&w.obstacles, s, t);
                    let path = trees.path_between(s, t).unwrap();
                    assert!(
                        path.certifies(&w.obstacles, s, t, expect),
                        "seed {seed}: bad path {:?} -> {:?}: {:?} (len {} vs {})",
                        s,
                        t,
                        path.points(),
                        path.length(),
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn all_source_trees_for_a_small_instance() {
        let w = uniform_disjoint(4, 17);
        let verts = w.obstacles.vertices();
        let trees = ShortestPathTrees::build(&w.obstacles, None);
        assert_eq!(trees.num_trees(), verts.len());
        for &s in &verts {
            for &t in &verts {
                let expect = ground_truth_distance(&w.obstacles, s, t);
                let path = trees.path_between(s, t).unwrap();
                assert!(path.certifies(&w.obstacles, s, t, expect));
            }
        }
    }

    #[test]
    fn chunked_reporting_covers_the_whole_path() {
        let w = uniform_disjoint(10, 9);
        let verts = w.obstacles.vertices();
        let s = verts[0];
        let trees = ShortestPathTrees::build(&w.obstacles, Some(&[s]));
        for &t in verts.iter().step_by(5) {
            let full = trees.path_between(s, t).unwrap();
            let chunks = trees.path_chunks(s, t, 2).unwrap();
            let total: Dist = chunks.iter().map(|c| c.length()).sum();
            assert_eq!(total, full.length(), "{:?} -> {:?}", s, t);
            assert!(trees.hop_count(s, t).is_some());
        }
    }
}
