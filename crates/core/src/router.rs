//! The `Router`: a single session-style entry point over the paper's query
//! structures.
//!
//! The value proposition of Atallah & Chen is *build once, query fast*:
//! construct the length/path structures of Sections 5–8 and then serve
//! length queries in `O(1)`/`O(log n)` and path reports in `O(log n + k)`.
//! Before this module, using the workspace meant reaching into
//! `core::query`, `core::sptree` and `core::dnc` separately — and because
//! `ShortestPathTrees::from_oracle` consumed its oracle, the quickstart
//! built the `O(n^2)`-work [`PathLengthOracle`] **twice** over the same
//! obstacles.
//!
//! [`Router`] owns one validated [`Instance`] and lazily builds each
//! substructure at most once, behind [`OnceLock`]/[`Arc`]:
//!
//! * the [`PathLengthOracle`] (vertex APSP + escape staircases + ray index),
//!   shared by `distance`, `path` and the batch APIs;
//! * per-source [`ShortestPathTrees`], grown on demand and `Arc`-sharing
//!   the same oracle;
//! * the boundary-to-boundary matrix `D_Q` of Section 5.
//!
//! Every fallible entry point returns [`RspError`]; batch queries
//! ([`Router::distances`], [`Router::paths`]) route vertex pairs to the
//! `O(1)` matrix lookup and fan the rest out over rayon.
//!
//! ```
//! use rsp_core::router::{Engine, Router};
//! use rsp_geom::{ObstacleSet, Point, Rect};
//!
//! let router = Router::builder(ObstacleSet::new(vec![Rect::new(2, 2, 6, 10)]))
//!     .engine(Engine::Auto)
//!     .build()?;
//! let d = router.distance(Point::new(0, 0), Point::new(8, 12))?;
//! assert!(d >= 18);
//! # Ok::<(), rsp_core::error::RspError>(())
//! ```

use crate::apsp::VertexApsp;
use crate::baseline::dijkstra_sssp_matrix;
use crate::delta::DeltaBase;
use crate::dnc::{build_boundary_matrix, BoundaryMatrix, DncOptions};
use crate::error::RspError;
use crate::instance::Instance;
use crate::query::PathLengthOracle;
use crate::separator::{find_separator_unbounded, Separator};
use crate::sptree::ShortestPathTrees;
use crate::store::{dense_bytes_for, DistanceStore, RowCarry, StoreKind, StoreStats};
use crate::trace::{escape_path, EscapeKind};
use crate::tree::RecursionTree;
use rayon::prelude::*;
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Coord, Dist, ObstacleSet, Point, RectiPath, SceneDelta};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Which construction engine a [`Router`] uses for its substructures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Pick automatically: [`Engine::DivideAndConquer`] unless the session is
    /// pinned to a single thread, then [`Engine::Sequential`].
    Auto,
    /// The Section 9 sequential construction: single-threaded APSP sweep and
    /// sequential divide-and-conquer schedule.
    Sequential,
    /// The paper's parallel schedule: the `4n`-source fan-out for the vertex
    /// APSP and the `rayon::join` divide-and-conquer for `D_Q`.
    DivideAndConquer,
    /// Ground-truth comparator: a Hanan-grid Dijkstra per source.  Slow
    /// (`O(n^3 log n)` work) but independent of the paper's machinery; used
    /// to cross-check the other engines.
    HananBaseline,
}

/// How many times each lazily built substructure has actually been
/// constructed, exposed so tests (and profilers) can assert the
/// build-once guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildCounts {
    /// Constructions of the [`PathLengthOracle`] (at most 1 per router).
    pub oracle_builds: usize,
    /// Individual shortest-path trees built (at most 1 per source vertex).
    pub tree_builds: usize,
    /// Constructions of the boundary matrix `D_Q` (at most 1 per router).
    pub boundary_builds: usize,
    /// Bytes the distance store currently holds resident (0 until the
    /// oracle is built; the full matrix for [`StoreKind::Dense`], the
    /// cached rows for [`StoreKind::Implicit`]).
    pub store_resident_bytes: usize,
    /// Distance rows carried verbatim from the base epoch by a delta build
    /// (0 for from-scratch routers; see [`Router::apply_delta`]).
    pub rows_reused: usize,
    /// Distance rows a delta build had to drop or re-sweep (keep-test
    /// failures plus fresh inserted-corner sweeps).
    pub rows_rebuilt: usize,
    /// Escape staircases copied from the base epoch by a delta build.
    pub chains_reused: usize,
    /// Escape staircases re-traced by a delta build.
    pub chains_rebuilt: usize,
    /// Ray-shooting slab columns copied from the base epoch by a delta build.
    pub slab_columns_reused: usize,
    /// Ray-shooting slab columns refilled by a delta build.
    pub slab_columns_rebuilt: usize,
}

#[derive(Default)]
struct BuildCounters {
    oracle: AtomicUsize,
    trees: AtomicUsize,
    boundary: AtomicUsize,
    rows_reused: AtomicUsize,
    rows_rebuilt: AtomicUsize,
    chains_reused: AtomicUsize,
    chains_rebuilt: AtomicUsize,
    slab_reused: AtomicUsize,
    slab_rebuilt: AtomicUsize,
}

/// Configures and validates a [`Router`].  Created by [`Router::builder`].
pub struct RouterBuilder {
    obstacles: ObstacleSet,
    engine: Engine,
    store: StoreKind,
    threads: Option<usize>,
    margin: Coord,
    dnc: Option<DncOptions>,
}

impl RouterBuilder {
    /// Select the construction engine (default [`Engine::Auto`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the distance storage backend (default [`StoreKind::Auto`]:
    /// dense below [`crate::store::IMPLICIT_AUTO_THRESHOLD`] obstacles,
    /// implicit with [`crate::store::default_budget_bytes`] above).  Both
    /// backends answer every query bitwise-identically; the implicit store
    /// trades the `O(n^2)` matrix for a byte-budgeted row cache.
    pub fn store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Pin construction and batch serving to a pool of `p` worker threads
    /// (default: the global rayon pool).
    pub fn threads(mut self, p: usize) -> Self {
        self.threads = Some(p.max(1));
        self
    }

    /// Margin by which the instance container extends beyond the obstacle
    /// bounding box (default 2).  Affects the container boundary that
    /// [`Router::boundary_matrix`] discretises.
    pub fn margin(mut self, margin: Coord) -> Self {
        self.margin = margin.max(1);
        self
    }

    /// Override the divide-and-conquer tuning knobs (default: derived from
    /// the engine — sequential schedule for [`Engine::Sequential`], parallel
    /// otherwise).
    pub fn dnc_options(mut self, opts: DncOptions) -> Self {
        self.dnc = Some(opts);
        self
    }

    /// Validate the input and assemble the router.  Fails with
    /// [`RspError::OverlappingObstacles`] (naming the offending pair) when
    /// two obstacles overlap; no substructure is built yet — each is
    /// constructed lazily on first use.
    pub fn build(self) -> Result<Router, RspError> {
        let store = self.store.resolve(self.obstacles.len());
        let instance = Instance::with_margin(self.obstacles, self.margin);
        instance.validate()?;
        let pool = match self.threads {
            Some(p) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(p)
                    .build()
                    .map_err(|e| RspError::ThreadPool(e.to_string()))?,
            ),
            None => None,
        };
        let engine = match self.engine {
            Engine::Auto => {
                if self.threads == Some(1) {
                    Engine::Sequential
                } else {
                    Engine::DivideAndConquer
                }
            }
            other => other,
        };
        let dnc =
            self.dnc.unwrap_or(DncOptions { parallel: !matches!(engine, Engine::Sequential), ..DncOptions::default() });
        Ok(Router {
            instance,
            engine,
            store,
            pool,
            dnc,
            threads: self.threads,
            margin: self.margin,
            epoch: 0,
            delta: Mutex::new(None),
            oracle: OnceLock::new(),
            trees: OnceLock::new(),
            boundary: OnceLock::new(),
            shoot_index: OnceLock::new(),
            counts: BuildCounters::default(),
        })
    }
}

/// A query-serving session over one obstacle set: the single public entry
/// point of the workspace (see the module docs).
pub struct Router {
    instance: Instance,
    engine: Engine,
    store: StoreKind,
    pool: Option<rayon::ThreadPool>,
    dnc: DncOptions,
    /// Builder configuration retained so [`Router::apply_delta`] can clone
    /// the session setup into the next epoch.
    threads: Option<usize>,
    margin: Coord,
    /// 0 for a from-scratch build; parent epoch + 1 for a delta build.
    epoch: u64,
    /// Deferred delta-build input, consumed (and dropped, releasing the base
    /// epoch's oracle `Arc`) by the first oracle construction.
    delta: Mutex<Option<DeltaBase>>,
    oracle: OnceLock<Arc<PathLengthOracle>>,
    trees: OnceLock<RwLock<ShortestPathTrees>>,
    boundary: OnceLock<Arc<BoundaryMatrix>>,
    /// Standalone ray-shooting index for [`Router::escape`] when the oracle
    /// has not been built yet (the oracle carries its own copy).
    shoot_index: OnceLock<ShootIndex>,
    counts: BuildCounters,
}

impl Router {
    /// Start configuring a router for the given obstacles.
    pub fn builder(obstacles: ObstacleSet) -> RouterBuilder {
        RouterBuilder { obstacles, engine: Engine::Auto, store: StoreKind::Auto, threads: None, margin: 2, dnc: None }
    }

    /// Shorthand: a router over `obstacles` with all defaults.
    pub fn new(obstacles: ObstacleSet) -> Result<Router, RspError> {
        Self::builder(obstacles).build()
    }

    /// The validated instance (obstacles + container).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The obstacle set.
    pub fn obstacles(&self) -> &ObstacleSet {
        self.instance.obstacles()
    }

    /// Number of obstacles `n`.
    pub fn n(&self) -> usize {
        self.instance.n()
    }

    /// The engine this router resolved to ([`Engine::Auto`] is resolved at
    /// build time and never stored).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The session epoch: 0 for a from-scratch build, incremented by each
    /// [`Router::apply_delta`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply a scene edit, producing a **new** epoch-versioned session over
    /// the edited obstacle set.  `self` is untouched: in-flight queries keep
    /// their snapshot, and both sessions stay fully usable side by side.
    ///
    /// The new session inherits the resolved engine, store kind, margin and
    /// thread pinning, and *reuses from this session's already-built oracle*
    /// every substructure the delta provably cannot affect: unchanged
    /// distance rows (dense and implicit), untouched escape staircases and
    /// clean ray-shooting slab columns carry over verbatim; everything else
    /// re-derives lazily.  Queries on the new session answer
    /// bitwise-identically to a from-scratch build of the edited scene
    /// (certified across engines, stores and thread counts in
    /// `tests/edit.rs`); [`Router::build_counts`] exposes the
    /// `*_reused`/`*_rebuilt` split once the new oracle is built.
    ///
    /// Validation is *incremental*: removals are range/duplicate-checked and
    /// each inserted rectangle is checked against the whole edited scene
    /// (`O(k · n)` instead of the builder's `O(n^2)` full scan).
    pub fn apply_delta(&self, delta: &SceneDelta) -> Result<Router, RspError> {
        let applied = self.instance.obstacles().apply_delta(delta)?;
        applied.validate_disjoint_incremental()?;
        let pool = match self.threads {
            Some(p) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(p)
                    .build()
                    .map_err(|e| RspError::ThreadPool(e.to_string()))?,
            ),
            None => None,
        };
        // Only an already-built oracle is worth carrying; otherwise the new
        // session builds from scratch lazily like any other.
        let base = self.oracle.get().map(|oracle| {
            DeltaBase::new(
                Arc::clone(oracle),
                applied.old_to_new.clone(),
                applied.new_to_old.clone(),
                applied.edited.clone(),
            )
        });
        Ok(Router {
            instance: Instance::with_margin(applied.obstacles, self.margin),
            engine: self.engine,
            store: self.store,
            pool,
            dnc: self.dnc.clone(),
            threads: self.threads,
            margin: self.margin,
            epoch: self.epoch + 1,
            delta: Mutex::new(base),
            oracle: OnceLock::new(),
            trees: OnceLock::new(),
            boundary: OnceLock::new(),
            shoot_index: OnceLock::new(),
            counts: BuildCounters::default(),
        })
    }

    /// The distance store this router resolved to ([`StoreKind::Auto`] is
    /// resolved by scene size at build time and never stored).
    pub fn store_kind(&self) -> StoreKind {
        self.store
    }

    /// Memory accounting snapshot of the distance store.  Before the oracle
    /// is built nothing is resident and only the dense baseline (what a
    /// dense matrix for this scene would cost) is reported.
    pub fn memory_stats(&self) -> StoreStats {
        match self.oracle.get() {
            Some(oracle) => oracle.apsp().store_stats(),
            None => StoreStats { dense_bytes: dense_bytes_for(self.n()), ..StoreStats::default() },
        }
    }

    /// Snapshot of how often each substructure has been constructed so far,
    /// plus the bytes the distance store holds resident.  A router never
    /// builds a substructure more than once; tests assert this stays at 0/1
    /// per structure no matter how many queries ran.
    pub fn build_counts(&self) -> BuildCounts {
        BuildCounts {
            oracle_builds: self.counts.oracle.load(Ordering::Relaxed),
            tree_builds: self.counts.trees.load(Ordering::Relaxed),
            boundary_builds: self.counts.boundary.load(Ordering::Relaxed),
            store_resident_bytes: self.oracle.get().map_or(0, |o| o.apsp().store_stats().resident_bytes),
            rows_reused: self.counts.rows_reused.load(Ordering::Relaxed),
            rows_rebuilt: self.counts.rows_rebuilt.load(Ordering::Relaxed),
            chains_reused: self.counts.chains_reused.load(Ordering::Relaxed),
            chains_rebuilt: self.counts.chains_rebuilt.load(Ordering::Relaxed),
            slab_columns_reused: self.counts.slab_reused.load(Ordering::Relaxed),
            slab_columns_rebuilt: self.counts.slab_rebuilt.load(Ordering::Relaxed),
        }
    }

    /// Run `f` inside this router's pinned thread pool, if any.
    fn in_pool<R>(&self, f: impl FnOnce() -> R + Send) -> R
    where
        R: Send,
    {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// The shared length oracle, built on first use (expert escape hatch —
    /// everything it offers is also reachable through the router methods).
    pub fn oracle(&self) -> Arc<PathLengthOracle> {
        Arc::clone(self.oracle_handle())
    }

    fn oracle_handle(&self) -> &Arc<PathLengthOracle> {
        self.oracle.get_or_init(|| {
            self.counts.oracle.fetch_add(1, Ordering::Relaxed);
            // Consume (and thereby release) the deferred delta input; a
            // panic-free fresh build remains available if there is none.
            let base = self.delta.lock().unwrap_or_else(|p| p.into_inner()).take();
            let obstacles = self.instance.obstacles();
            let oracle = self.in_pool(|| match base {
                Some(base) => self.build_oracle_delta(obstacles, base),
                None => PathLengthOracle::from_apsp(self.instance.obstacles_arc(), self.build_apsp_fresh(obstacles)),
            });
            Arc::new(oracle)
        })
    }

    /// The from-scratch all-pairs build for this router's engine × store
    /// combination.
    fn build_apsp_fresh(&self, obstacles: &ObstacleSet) -> VertexApsp {
        match (self.store, self.engine) {
            // Implicit store: rows come lazily from the engine's own
            // row generator — no full matrix is ever materialised.
            (StoreKind::Implicit { budget_bytes }, Engine::HananBaseline) => {
                VertexApsp::build_implicit_hanan(obstacles, budget_bytes)
            }
            (StoreKind::Implicit { budget_bytes }, _) => VertexApsp::build_implicit(obstacles, budget_bytes),
            // Dense store: the eager builders (Auto was resolved to a
            // concrete store kind at build time).
            (_, Engine::Sequential) => VertexApsp::build_sequential(obstacles),
            (_, Engine::HananBaseline) => {
                VertexApsp::from_matrix(obstacles.vertices(), dijkstra_sssp_matrix(obstacles))
            }
            (_, Engine::Auto | Engine::DivideAndConquer) => VertexApsp::build(obstacles),
        }
    }

    /// Build this epoch's oracle out of the base epoch's, carrying every
    /// distance row, escape staircase and slab column the edit provably
    /// cannot affect and re-deriving the rest.  The result is
    /// bitwise-identical to a fresh build because every carried artifact is
    /// *canonical*: rows hold true shortest-path lengths and chains/slabs are
    /// pure functions of the surviving geometry.
    fn build_oracle_delta(&self, obstacles: &ObstacleSet, base: DeltaBase) -> PathLengthOracle {
        let hanan = matches!(self.engine, Engine::HananBaseline);
        let old_store = base.oracle.apsp().store();
        let (apsp, carry) = match self.store {
            StoreKind::Implicit { budget_bytes } => match old_store.as_implicit() {
                Some(old) => {
                    let (store, carry) = DistanceStore::implicit_delta(
                        obstacles,
                        budget_bytes,
                        hanan,
                        old,
                        &base.old_to_new_vertex,
                        &base.new_to_old_vertex,
                        &base.edited,
                    );
                    (VertexApsp::from_store(obstacles.vertices(), store), carry)
                }
                // Store-kind mismatch with the base session (can only happen
                // through future re-configuration): nothing to carry.
                None => (self.build_apsp_fresh(obstacles), RowCarry::default()),
            },
            StoreKind::Dense | StoreKind::Auto => match old_store.as_dense() {
                Some(old) => {
                    let (store, carry) =
                        DistanceStore::dense_delta(obstacles, hanan, old, &base.new_to_old_vertex, &base.edited);
                    (VertexApsp::from_store(obstacles.vertices(), store), carry)
                }
                None => (self.build_apsp_fresh(obstacles), RowCarry::default()),
            },
        };
        self.counts.rows_reused.fetch_add(carry.rows_carried, Ordering::Relaxed);
        self.counts.rows_rebuilt.fetch_add(carry.rows_dropped + carry.corner_sweeps, Ordering::Relaxed);
        let (oracle, reuse) = PathLengthOracle::from_apsp_delta(
            self.instance.obstacles_arc(),
            apsp,
            &base.oracle,
            &base.old_to_new_rect,
            &base.new_to_old_vertex,
            &base.edited,
        );
        self.counts.chains_reused.fetch_add(reuse.chains_reused, Ordering::Relaxed);
        self.counts.chains_rebuilt.fetch_add(reuse.chains_rebuilt, Ordering::Relaxed);
        self.counts.slab_reused.fetch_add(reuse.slab_columns.reused, Ordering::Relaxed);
        self.counts.slab_rebuilt.fetch_add(reuse.slab_columns.rebuilt, Ordering::Relaxed);
        oracle
    }

    fn trees_handle(&self) -> &RwLock<ShortestPathTrees> {
        self.trees
            .get_or_init(|| RwLock::new(ShortestPathTrees::from_oracle(Arc::clone(self.oracle_handle()), Some(&[]))))
    }

    /// Fail with [`RspError::PointInsideObstacle`] when `p` is strictly
    /// inside an obstacle.  On the query hot path the oracle's
    /// [`ObstacleIndex`](rsp_geom::ObstacleIndex) answers in `O(log n)`;
    /// cold callers (`escape`) fall back to the `O(n)` scan rather than
    /// force the oracle build.
    fn check_point(&self, p: Point) -> Result<(), RspError> {
        let containing = match self.oracle.get() {
            Some(oracle) => oracle.obstacle_index().containing_obstacle(p),
            None => self.instance.obstacles().containing_obstacle(p),
        };
        match containing {
            Some(obstacle) => Err(RspError::PointInsideObstacle { point: p, obstacle }),
            None => Ok(()),
        }
    }

    /// Index of an obstacle vertex, or [`RspError::NotAVertex`].
    fn vertex_index(&self, p: Point) -> Result<usize, RspError> {
        self.oracle_handle().apsp().vertex_index(p).ok_or(RspError::NotAVertex(p))
    }

    // ------------------------------------------------------------------
    // Length queries (Section 6)
    // ------------------------------------------------------------------

    /// Length of a shortest obstacle-avoiding rectilinear path between two
    /// arbitrary points: `O(1)` when both are obstacle vertices, `O(log n)`
    /// otherwise.
    pub fn distance(&self, a: Point, b: Point) -> Result<Dist, RspError> {
        let oracle = self.oracle_handle();
        let apsp = oracle.apsp();
        // Vertex pairs skip the O(n) containment scan: obstacle vertices can
        // never lie strictly inside an obstacle once disjointness validated.
        if let (Some(i), Some(j)) = (apsp.vertex_index(a), apsp.vertex_index(b)) {
            return Ok(apsp.distance(i, j));
        }
        self.check_point(a)?;
        self.check_point(b)?;
        Ok(oracle.distance_clear(a, b))
    }

    /// `O(1)` length query for two obstacle vertices.  Unlike the old
    /// `Option`-returning oracle API, a non-vertex argument is a typed
    /// [`RspError::NotAVertex`].
    pub fn vertex_distance(&self, a: Point, b: Point) -> Result<Dist, RspError> {
        let oracle = self.oracle_handle();
        let (i, j) = (self.vertex_index(a)?, self.vertex_index(b)?);
        Ok(oracle.apsp().distance(i, j))
    }

    /// Batch length queries.  Pairs where both endpoints are obstacle
    /// vertices are routed to the `O(1)` matrix fast path; the remaining
    /// pairs are deduplicated and fan out over rayon.  The output is
    /// index-aligned with `pairs` and equals what per-pair
    /// [`Router::distance`] calls would return.
    ///
    /// Under an implicit store the vertex pairs additionally go through the
    /// batch planner ([`crate::plan`]): each query is canonicalised to its
    /// providing row, lookups are ordered row-major, and the distinct rows
    /// are materialised once and pinned for the batch — so a cold batch
    /// pays one sweep per *distinct row*, not one per query.  The dense
    /// store bypasses planning entirely (its per-pair read is already a
    /// single array access).
    pub fn distances(&self, pairs: &[(Point, Point)]) -> Result<Vec<Dist>, RspError> {
        // An empty batch must not force the O(n^2) oracle build: serving
        // layers (rsp-server's admission queue) may dispatch empty windows.
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let oracle = self.oracle_handle();
        let apsp = oracle.apsp();
        let implicit = apsp.store().as_implicit();
        let mut out = vec![0 as Dist; pairs.len()];
        let mut slow: Vec<usize> = Vec::new();
        let mut planned: Vec<(usize, usize, usize)> = Vec::new();
        let mut mixed_rows: Vec<usize> = Vec::new();
        for (k, &(a, b)) in pairs.iter().enumerate() {
            match (apsp.vertex_index(a), apsp.vertex_index(b)) {
                // The fast path stays O(1) per pair: vertices never lie
                // strictly inside an obstacle, so no containment scan runs.
                (Some(i), Some(j)) => match implicit {
                    None => out[k] = apsp.distance(i, j),
                    Some(_) => planned.push((i, j, k)),
                },
                (ai, bi) => {
                    if ai.is_none() {
                        self.check_point(a)?;
                    }
                    if bi.is_none() {
                        self.check_point(b)?;
                    }
                    // A mixed pair's vertex endpoint names the row the
                    // oracle will read detours from — plan it in too.
                    if implicit.is_some() {
                        if let Some(i) = ai.or(bi) {
                            mixed_rows.push(i);
                        }
                    }
                    slow.push(k);
                }
            }
        }
        // The pinned working set (implicit store only) lives until the slow
        // fan-out below finishes, so arbitrary-point queries reuse the very
        // rows the vertex lookups just materialised.
        let _pins = implicit.map(|store| {
            let plan = crate::plan::plan_vertex_pairs(&planned);
            let mut rows = plan.rows.clone();
            rows.extend_from_slice(&mixed_rows);
            let pins = self.in_pool(|| store.pin_rows(&rows));
            for lookup in &plan.lookups {
                let d = match pins.row(lookup.row) {
                    Some(row) => row[lookup.col],
                    None => store.distance(lookup.row, lookup.col),
                };
                for &slot in &lookup.slots {
                    out[slot] = d;
                }
            }
            pins
        });
        let deduped = crate::plan::dedupe_point_pairs(pairs, &slow);
        let slow_results: Vec<Dist> =
            self.in_pool(|| deduped.unique.par_iter().map(|&(a, b)| oracle.distance_clear(a, b)).collect());
        for (d, slots) in slow_results.into_iter().zip(&deduped.slots) {
            for &slot in slots {
                out[slot] = d;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Path reporting (Section 8)
    // ------------------------------------------------------------------

    /// Make sure a shortest-path tree exists for each source vertex (callers
    /// have already resolved the points to vertices).
    fn ensure_trees(&self, sources: &[Point]) {
        let lock = self.trees_handle();
        let missing = {
            let guard = lock.read().expect("router tree lock poisoned");
            sources.iter().any(|&s| !guard.has_tree(s))
        };
        if missing {
            let mut guard = lock.write().expect("router tree lock poisoned");
            let trees: &mut ShortestPathTrees = &mut guard;
            let built = self.in_pool(|| trees.ensure_sources(sources));
            self.counts.trees.fetch_add(built, Ordering::Relaxed);
        }
    }

    /// Report an actual shortest path between two obstacle vertices.  The
    /// shortest-path tree for `source` is built on first use and cached.
    pub fn path(&self, source: Point, target: Point) -> Result<RectiPath, RspError> {
        self.vertex_index(source)?;
        self.vertex_index(target)?;
        self.ensure_trees(&[source]);
        let guard = self.trees_handle().read().expect("router tree lock poisoned");
        guard.path_between(source, target).ok_or(RspError::NotAVertex(source))
    }

    /// Batch path reporting: builds all missing source trees in one parallel
    /// pass, deduplicates identical `(source, target)` pairs, then extracts
    /// every distinct path once and scatters clones back.  Output is
    /// index-aligned with `pairs`.
    pub fn paths(&self, pairs: &[(Point, Point)]) -> Result<Vec<RectiPath>, RspError> {
        // As in `distances`: an empty batch touches no lazy substructure
        // (`ensure_trees(&[])` would still build the oracle via the trees
        // handle).
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        for &(s, t) in pairs {
            self.vertex_index(s)?;
            self.vertex_index(t)?;
        }
        let sources: Vec<Point> = pairs.iter().map(|&(s, _)| s).collect();
        self.ensure_trees(&sources);
        let all: Vec<usize> = (0..pairs.len()).collect();
        let deduped = crate::plan::dedupe_point_pairs(pairs, &all);
        let guard = self.trees_handle().read().expect("router tree lock poisoned");
        let trees: &ShortestPathTrees = &guard;
        let extracted: Vec<RectiPath> = self.in_pool(|| {
            deduped.unique.par_iter().map(|&(s, t)| trees.path_between(s, t).expect("tree was just ensured")).collect()
        });
        let mut out: Vec<Option<RectiPath>> = vec![None; pairs.len()];
        for (path, slots) in extracted.into_iter().zip(&deduped.slots) {
            let (&last, rest) = slots.split_last().expect("every unique pair has a slot");
            for &slot in rest {
                out[slot] = Some(path.clone());
            }
            out[last] = Some(path);
        }
        Ok(out.into_iter().map(|p| p.expect("every slot was scattered")).collect())
    }

    /// The number of tree edges between `target` and `source`'s tree root
    /// (an upper bound on the reported path's segment count up to a
    /// constant), answered in `O(1)` after the tree is built.
    pub fn hop_count(&self, source: Point, target: Point) -> Result<usize, RspError> {
        self.vertex_index(source)?;
        self.vertex_index(target)?;
        self.ensure_trees(&[source]);
        let guard = self.trees_handle().read().expect("router tree lock poisoned");
        guard.hop_count(source, target).ok_or(RspError::NotAVertex(source))
    }

    /// Report a path in independently extracted pieces of at most `chunk`
    /// tree hops each (the parallel reporting scheme of Section 8), ordered
    /// from `target` towards `source`.
    pub fn path_chunks(&self, source: Point, target: Point, chunk: usize) -> Result<Vec<RectiPath>, RspError> {
        self.vertex_index(source)?;
        self.vertex_index(target)?;
        self.ensure_trees(&[source]);
        let guard = self.trees_handle().read().expect("router tree lock poisoned");
        let trees: &ShortestPathTrees = &guard;
        self.in_pool(|| trees.path_chunks(source, target, chunk)).ok_or(RspError::NotAVertex(source))
    }

    // ------------------------------------------------------------------
    // The boundary matrix D_Q (Section 5)
    // ------------------------------------------------------------------

    /// The boundary-to-boundary path-length matrix `D_Q` over the instance
    /// container, built on first use by the Section 5 divide-and-conquer
    /// (staircase separators + Monge (min,+) conquer) and cached.
    pub fn boundary_matrix(&self) -> Arc<BoundaryMatrix> {
        Arc::clone(self.boundary.get_or_init(|| {
            self.counts.boundary.fetch_add(1, Ordering::Relaxed);
            let bm =
                self.in_pool(|| build_boundary_matrix(self.instance.obstacles(), self.instance.container(), &self.dnc));
            Arc::new(bm)
        }))
    }

    // ------------------------------------------------------------------
    // Inspection helpers (Sections 3, 4, 6.1) — used by the figure gallery
    // ------------------------------------------------------------------

    /// The Theorem 2 staircase separator of this router's obstacles (`None`
    /// for fewer than two obstacles).
    pub fn separator(&self) -> Option<Separator> {
        find_separator_unbounded(self.instance.obstacles())
    }

    /// The Section 6.1 recursion tree (for inspection / rendering).
    pub fn recursion_tree(&self) -> RecursionTree {
        RecursionTree::build(self.instance.obstacles())
    }

    /// The Section 3 escape path of `kind` from `p`, clipped to the instance
    /// container.  `p` must lie in the container and outside all obstacle
    /// interiors.
    pub fn escape(&self, p: Point, kind: EscapeKind) -> Result<Chain, RspError> {
        self.check_point(p)?;
        if !self.instance.container().contains(p) {
            return Err(RspError::PointOutsideContainer(p));
        }
        // Ray shooting only needs the O(n log n) ShootIndex; borrow the
        // oracle's copy when the oracle already exists, otherwise build a
        // standalone index instead of forcing the O(n^2) oracle construction.
        let index = match self.oracle.get() {
            Some(oracle) => oracle.shoot_index(),
            None => self.shoot_index.get_or_init(|| ShootIndex::build(self.instance.obstacles())),
        };
        Ok(escape_path(self.instance.obstacles(), index, self.instance.container(), p, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_distance;
    use rsp_geom::{Rect, INF};
    use rsp_workload::{query_pairs, uniform_disjoint};

    fn sample() -> ObstacleSet {
        ObstacleSet::new(vec![Rect::new(2, 2, 6, 10), Rect::new(9, 0, 12, 6), Rect::new(8, 9, 15, 12)])
    }

    #[test]
    fn builder_rejects_overlap_with_pair_evidence() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 4, 4), Rect::new(3, 3, 8, 8)]);
        match Router::new(obs) {
            Err(RspError::OverlappingObstacles(v)) => {
                assert_eq!((v.first, v.second), (0, 1));
            }
            other => panic!("expected overlap error, got {:?}", other.err()),
        }
    }

    #[test]
    fn distance_and_path_share_one_oracle_build() {
        let router = Router::new(sample()).unwrap();
        assert_eq!(router.build_counts(), BuildCounts::default());
        let v1 = Point::new(6, 10);
        let v2 = Point::new(9, 0);
        let d = router.vertex_distance(v1, v2).unwrap();
        let p = router.path(v1, v2).unwrap();
        assert_eq!(p.length(), d);
        let _ = router.distance(Point::new(0, 0), Point::new(16, 13)).unwrap();
        let _ = router.boundary_matrix();
        let _ = router.boundary_matrix();
        let counts = router.build_counts();
        assert_eq!(counts.oracle_builds, 1);
        assert_eq!(counts.tree_builds, 1);
        assert_eq!(counts.boundary_builds, 1);
    }

    #[test]
    fn empty_batches_build_nothing() {
        let router = Router::new(sample()).unwrap();
        assert_eq!(router.distances(&[]).unwrap(), Vec::<i64>::new());
        assert_eq!(router.paths(&[]).unwrap(), Vec::new());
        // Neither empty batch may have touched a lazy substructure.
        assert_eq!(router.build_counts(), BuildCounts::default());
    }

    #[test]
    fn typed_errors_for_bad_queries() {
        let router = Router::new(sample()).unwrap();
        let inside = Point::new(3, 5);
        match router.distance(inside, Point::new(0, 0)) {
            Err(RspError::PointInsideObstacle { point, obstacle }) => {
                assert_eq!(point, inside);
                assert_eq!(obstacle, 0);
            }
            other => panic!("expected inside-obstacle error, got {other:?}"),
        }
        assert_eq!(
            router.vertex_distance(Point::new(1, 1), Point::new(2, 2)),
            Err(RspError::NotAVertex(Point::new(1, 1)))
        );
        assert!(matches!(router.path(Point::new(1, 1), Point::new(2, 2)), Err(RspError::NotAVertex(_))));
    }

    #[test]
    fn distances_batch_matches_per_call() {
        let w = uniform_disjoint(8, 3);
        let router = Router::new(w.obstacles.clone()).unwrap();
        let mut pairs = query_pairs(&w.obstacles, 30, false, 9);
        pairs.extend(query_pairs(&w.obstacles, 30, true, 10));
        let batch = router.distances(&pairs).unwrap();
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], router.distance(a, b).unwrap(), "{a:?} -> {b:?}");
            assert!(batch[k] < INF);
            assert_eq!(batch[k], ground_truth_distance(&w.obstacles, a, b));
        }
    }

    #[test]
    fn paths_batch_certifies_lengths() {
        let w = uniform_disjoint(6, 21);
        let router = Router::new(w.obstacles.clone()).unwrap();
        let verts = w.obstacles.vertices();
        let pairs: Vec<(Point, Point)> =
            verts.iter().step_by(3).flat_map(|&s| verts.iter().step_by(5).map(move |&t| (s, t))).collect();
        let paths = router.paths(&pairs).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let d = router.vertex_distance(s, t).unwrap();
            assert!(paths[k].certifies(&w.obstacles, s, t, d), "{s:?} -> {t:?}");
        }
        // All distinct sources got exactly one tree each.
        let distinct: std::collections::HashSet<Point> = pairs.iter().map(|&(s, _)| s).collect();
        assert_eq!(router.build_counts().tree_builds, distinct.len());
    }

    #[test]
    fn engines_agree_and_resolve() {
        let w = uniform_disjoint(6, 14);
        let auto = Router::new(w.obstacles.clone()).unwrap();
        assert_eq!(auto.engine(), Engine::DivideAndConquer);
        let single = Router::builder(w.obstacles.clone()).threads(1).build().unwrap();
        assert_eq!(single.engine(), Engine::Sequential);
        let hanan = Router::builder(w.obstacles.clone()).engine(Engine::HananBaseline).build().unwrap();
        let verts = w.obstacles.vertices();
        for &a in verts.iter().step_by(3) {
            for &b in verts.iter().step_by(4) {
                let d = auto.vertex_distance(a, b).unwrap();
                assert_eq!(d, single.vertex_distance(a, b).unwrap());
                assert_eq!(d, hanan.vertex_distance(a, b).unwrap());
            }
        }
    }

    #[test]
    fn store_backends_answer_identically() {
        let w = uniform_disjoint(9, 42);
        let dense = Router::builder(w.obstacles.clone()).store(StoreKind::Dense).build().unwrap();
        // Small scene + Auto resolves to Dense.
        assert_eq!(dense.store_kind(), StoreKind::Dense);
        assert_eq!(Router::new(w.obstacles.clone()).unwrap().store_kind(), StoreKind::Dense);
        // A two-row budget forces eviction churn on every scan.
        let row_bytes = 4 * w.n() * std::mem::size_of::<Dist>();
        let implicit = Router::builder(w.obstacles.clone())
            .store(StoreKind::Implicit { budget_bytes: 2 * row_bytes })
            .build()
            .unwrap();
        let mut pairs = query_pairs(&w.obstacles, 20, true, 5);
        pairs.extend(query_pairs(&w.obstacles, 20, false, 6));
        assert_eq!(dense.distances(&pairs).unwrap(), implicit.distances(&pairs).unwrap());
        let verts = w.obstacles.vertices();
        let vpairs: Vec<(Point, Point)> =
            verts.iter().step_by(4).flat_map(|&s| verts.iter().step_by(7).map(move |&t| (s, t))).collect();
        let dense_paths = dense.paths(&vpairs).unwrap();
        let implicit_paths = implicit.paths(&vpairs).unwrap();
        for (k, &(s, t)) in vpairs.iter().enumerate() {
            assert_eq!(dense_paths[k].length(), implicit_paths[k].length(), "{s:?} -> {t:?}");
            assert!(implicit_paths[k].certifies(&w.obstacles, s, t, dense_paths[k].length()));
        }
    }

    #[test]
    fn planned_implicit_batches_sweep_each_row_once() {
        let w = uniform_disjoint(8, 17);
        let row_bytes = 4 * w.n() * std::mem::size_of::<Dist>();
        // Two-row pin budget, so the batch's working set cannot all be pinned.
        let implicit = Router::builder(w.obstacles.clone())
            .store(StoreKind::Implicit { budget_bytes: 2 * row_bytes })
            .build()
            .unwrap();
        let dense = Router::builder(w.obstacles.clone()).store(StoreKind::Dense).build().unwrap();
        let verts = w.obstacles.vertices();
        // Many queries, few providing rows: (v0, t) and its flip (t, v0)
        // canonicalise to row 0; (v5, t) canonicalises to min(5, t).
        let mut pairs = Vec::new();
        for &t in verts.iter().step_by(3) {
            pairs.push((verts[0], t));
            pairs.push((t, verts[0]));
            pairs.push((verts[5], t));
        }
        let batch = implicit.distances(&pairs).unwrap();
        assert_eq!(batch, dense.distances(&pairs).unwrap(), "bitwise-identical to dense");
        let stats = implicit.memory_stats();
        // Providing rows are {0, 3, 5}: one sweep each, despite 3 queries
        // per target and a budget below the working set.
        assert_eq!(stats.row_misses, 3, "one sweep per distinct providing row");
        assert_eq!(stats.pinned_bytes, 0, "batch pins were released");
        assert!(stats.resident_bytes <= 2 * row_bytes, "budget enforced after the batch");
    }

    #[test]
    fn duplicate_slow_pairs_are_answered_once_and_scattered() {
        let w = uniform_disjoint(6, 23);
        let router = Router::new(w.obstacles.clone()).unwrap();
        let (a, b) = query_pairs(&w.obstacles, 1, false, 3)[0];
        let pairs = vec![(a, b), (a, b), (b, a), (a, b)];
        let batch = router.distances(&pairs).unwrap();
        let d = router.distance(a, b).unwrap();
        assert_eq!(batch, vec![d, d, d, d], "duplicates and the flip agree with per-call");
        // Path batches also collapse duplicates (and still certify).
        let verts = w.obstacles.vertices();
        let vpairs = vec![(verts[0], verts[7]); 3];
        let paths = router.paths(&vpairs).unwrap();
        let len = router.vertex_distance(verts[0], verts[7]).unwrap();
        for p in &paths {
            assert!(p.certifies(&w.obstacles, verts[0], verts[7], len));
        }
        assert_eq!(router.build_counts().tree_builds, 1);
    }

    #[test]
    fn memory_stats_track_store_residency() {
        let w = uniform_disjoint(8, 31);
        let budget = 3 * 4 * w.n() * std::mem::size_of::<Dist>();
        let router =
            Router::builder(w.obstacles.clone()).store(StoreKind::Implicit { budget_bytes: budget }).build().unwrap();
        // Before the oracle exists: nothing resident, dense baseline known.
        let before = router.memory_stats();
        assert_eq!(before.resident_bytes, 0);
        assert_eq!(before.dense_bytes, dense_bytes_for(w.n()));
        assert_eq!(router.build_counts().store_resident_bytes, 0);
        let verts = w.obstacles.vertices();
        for &v in verts.iter().step_by(3) {
            let _ = router.vertex_distance(verts[0], v).unwrap();
        }
        let after = router.memory_stats();
        assert!(after.resident_bytes > 0);
        assert!(after.resident_bytes <= budget);
        assert!(after.row_misses >= 1);
        assert_eq!(router.build_counts().store_resident_bytes, after.resident_bytes);
        // The dense router reports the full matrix resident.
        let dense = Router::builder(w.obstacles.clone()).store(StoreKind::Dense).build().unwrap();
        let _ = dense.vertex_distance(verts[0], verts[4]).unwrap();
        let stats = dense.memory_stats();
        assert_eq!(stats.resident_bytes, stats.dense_bytes);
    }

    #[test]
    fn escape_and_inspection_helpers() {
        let router = Router::builder(sample()).margin(4).build().unwrap();
        let chain = router.escape(Point::new(0, 0), EscapeKind::NE).unwrap();
        assert!(!chain.points().is_empty());
        // Escape-path inspection must not force the O(n^2) oracle build.
        assert_eq!(router.build_counts().oracle_builds, 0);
        assert!(router.separator().is_some());
        assert!(!router.recursion_tree().is_empty());
        let far = Point::new(10_000, 10_000);
        assert_eq!(router.escape(far, EscapeKind::NE), Err(RspError::PointOutsideContainer(far)));
    }

    /// Assert that `edited` (built via [`Router::apply_delta`]) answers every
    /// vertex-vertex distance and path bitwise-identically to `fresh` (built
    /// from scratch on the same obstacle set).
    fn assert_session_equivalent(edited: &Router, fresh: &Router) {
        let verts = fresh.instance().obstacles().vertices();
        assert_eq!(edited.instance().obstacles().vertices(), verts);
        for (i, &u) in verts.iter().enumerate() {
            for &v in verts.iter().skip(i) {
                let de = edited.vertex_distance(u, v).unwrap();
                let df = fresh.vertex_distance(u, v).unwrap();
                assert_eq!(de, df, "distance mismatch {u:?} -> {v:?}");
                if de < INF {
                    let pe = edited.path(u, v).unwrap();
                    let pf = fresh.path(u, v).unwrap();
                    assert_eq!(pe.points(), pf.points(), "path mismatch {u:?} -> {v:?}");
                }
            }
        }
    }

    /// An L-shaped scene: obstacle strips along the bottom and left edges of
    /// the bounding box, leaving the upper-right quadrant empty.  An edit
    /// placed there keeps the bbox fixed (chains can carry) while staying
    /// outside the spanning rectangle of many vertex pairs (rows can carry).
    fn l_shaped_scene() -> ObstacleSet {
        let mut rects: Vec<Rect> = (0..10).map(|i| Rect::new(10 * i, 0, 10 * i + 4, 4)).collect();
        rects.extend((1..10).map(|j| Rect::new(0, 10 * j, 4, 10 * j + 4)));
        ObstacleSet::new(rects)
    }

    #[test]
    fn apply_delta_matches_a_fresh_build_bitwise() {
        let base = l_shaped_scene();
        let delta = SceneDelta { insert: vec![Rect::new(70, 70, 74, 74)], remove: vec![] };
        let edited_set = base.apply_delta(&delta).unwrap().obstacles;
        for store in [StoreKind::Dense, StoreKind::Implicit { budget_bytes: 1 << 20 }] {
            let parent = Router::builder(base.clone()).store(store).build().unwrap();
            // Warm the parent so there is an oracle to carry from.
            let verts = base.vertices();
            let _ = parent.vertex_distance(verts[0], verts[5]).unwrap();
            let child = parent.apply_delta(&delta).unwrap();
            assert_eq!(child.epoch(), 1);
            assert_eq!(parent.epoch(), 0);
            // The parent session stays fully usable after the edit.
            let _ = parent.vertex_distance(verts[0], verts[9]).unwrap();
            let fresh = Router::builder(edited_set.clone()).store(store).build().unwrap();
            assert_session_equivalent(&child, &fresh);
            let counts = child.build_counts();
            assert!(counts.rows_reused > 0, "delta build carried no rows: {counts:?}");
            assert!(counts.chains_reused > 0, "delta build carried no chains: {counts:?}");
            // A grandchild edit reuses from the child in turn.
            let back = SceneDelta { insert: vec![], remove: vec![edited_set.len() - 1] };
            let grandchild = child.apply_delta(&back).unwrap();
            assert_eq!(grandchild.epoch(), 2);
            let gc_set = edited_set.apply_delta(&back).unwrap().obstacles;
            let gc_fresh = Router::builder(gc_set).store(store).build().unwrap();
            assert_session_equivalent(&grandchild, &gc_fresh);
        }
    }

    #[test]
    fn apply_delta_on_a_cold_router_builds_fresh() {
        let base = sample();
        let parent = Router::new(base.clone()).unwrap();
        // No query ran: nothing to carry, the child builds from scratch.
        let delta = SceneDelta { insert: vec![Rect::new(20, 20, 24, 24)], remove: vec![1] };
        let child = parent.apply_delta(&delta).unwrap();
        let fresh = Router::new(base.apply_delta(&delta).unwrap().obstacles).unwrap();
        assert_session_equivalent(&child, &fresh);
        let counts = child.build_counts();
        assert_eq!((counts.rows_reused, counts.chains_reused), (0, 0));
    }

    #[test]
    fn apply_delta_rejects_bad_input() {
        let parent = Router::new(sample()).unwrap();
        // Out-of-range removal.
        let bad = SceneDelta { insert: vec![], remove: vec![99] };
        assert!(matches!(parent.apply_delta(&bad), Err(RspError::InvalidDelta(_))));
        // Inserted rectangle overlapping a survivor.
        let overlap = SceneDelta { insert: vec![Rect::new(3, 3, 5, 5)], remove: vec![] };
        assert!(matches!(parent.apply_delta(&overlap), Err(RspError::OverlappingObstacles(_))));
        // Removing the overlapping obstacle makes the same insert legal.
        let fixed = SceneDelta { insert: vec![Rect::new(3, 3, 5, 5)], remove: vec![0] };
        assert!(parent.apply_delta(&fixed).is_ok());
    }

    #[test]
    fn delta_sessions_report_engine_specific_reuse() {
        // Each engine carries artifacts across an edit and stays bitwise
        // faithful; HananBaseline rows live on the grid's canonical metric so
        // they carry too.
        let base = uniform_disjoint(12, 5).obstacles;
        let delta = SceneDelta { insert: vec![Rect::new(400, 400, 404, 404)], remove: vec![] };
        let edited_set = base.apply_delta(&delta).unwrap().obstacles;
        for engine in [Engine::Sequential, Engine::DivideAndConquer, Engine::HananBaseline] {
            let parent = Router::builder(base.clone()).engine(engine).build().unwrap();
            let verts = base.vertices();
            let _ = parent.vertex_distance(verts[0], verts[7]).unwrap();
            let child = parent.apply_delta(&delta).unwrap();
            let fresh = Router::builder(edited_set.clone()).engine(engine).build().unwrap();
            assert_session_equivalent(&child, &fresh);
            assert!(child.build_counts().rows_reused > 0, "{engine:?} carried no rows");
        }
    }
}
