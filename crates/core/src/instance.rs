//! Problem instances: a rectilinearly convex container `P` holding `n`
//! pairwise-disjoint rectangular obstacles (Section 2 of the paper).

use rsp_geom::{DisjointnessViolation, ObstacleSet, Point, Rect, StairRegion};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A problem instance.  The container is stored as a [`StairRegion`]; in the
/// common benchmarks it is a rectangle, but any rectilinearly convex polygon
/// with a clear boundary is accepted.
/// The obstacle set is held behind an [`Arc`] so session layers (the
/// `Router`) can hand the same allocation to the `PathLengthOracle` instead
/// of cloning all `n` rectangles on every session build.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Instance {
    obstacles: Arc<ObstacleSet>,
    container: StairRegion,
}

/// Problems detected by [`Instance::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// Two obstacles overlap (their interiors intersect); carries the
    /// offending pair of ids and rectangles.
    OverlappingObstacles(DisjointnessViolation),
    /// An obstacle is not contained in the container.
    ObstacleOutsideContainer(usize),
    /// The container is not rectilinearly convex.
    ContainerNotConvex,
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::OverlappingObstacles(v) => write!(f, "{v}"),
            InstanceError::ObstacleOutsideContainer(i) => {
                write!(f, "obstacle {i} is not contained in the container")
            }
            InstanceError::ContainerNotConvex => write!(f, "the container is not rectilinearly convex"),
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<DisjointnessViolation> for InstanceError {
    fn from(v: DisjointnessViolation) -> Self {
        InstanceError::OverlappingObstacles(v)
    }
}

impl Instance {
    /// Build an instance with an explicit container.
    pub fn new(obstacles: ObstacleSet, container: StairRegion) -> Self {
        Instance { obstacles: Arc::new(obstacles), container }
    }

    /// Build an instance whose container is the bounding box of the obstacles
    /// expanded by `margin` (the common case in the paper's experiments where
    /// `P` is just "large enough").
    pub fn with_margin(obstacles: ObstacleSet, margin: i64) -> Self {
        let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(margin.max(1));
        Instance { container: StairRegion::from_rect(bbox), obstacles: Arc::new(obstacles) }
    }

    /// The obstacle set `R`.
    pub fn obstacles(&self) -> &ObstacleSet {
        self.obstacles.as_ref()
    }

    /// A shared handle to the obstacle set (no copy; the `Router` passes
    /// this straight into `PathLengthOracle::from_apsp`).
    pub fn obstacles_arc(&self) -> Arc<ObstacleSet> {
        Arc::clone(&self.obstacles)
    }

    /// The container `P`.
    pub fn container(&self) -> &StairRegion {
        &self.container
    }

    /// Number of obstacles `n`.
    pub fn n(&self) -> usize {
        self.obstacles.len()
    }

    /// The `4n` obstacle vertices `V_R`.
    pub fn vertices(&self) -> Vec<Point> {
        self.obstacles.vertices()
    }

    /// Full validation of the paper's input assumptions (except general
    /// position, which the algorithms do not strictly require).
    pub fn validate(&self) -> Result<(), InstanceError> {
        self.obstacles.validate_disjoint()?;
        if !self.container.is_rectilinearly_convex() {
            return Err(InstanceError::ContainerNotConvex);
        }
        for (i, r) in self.obstacles.iter().enumerate() {
            if !self.container.contains_rect(r) {
                return Err(InstanceError::ObstacleOutsideContainer(i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_margin_contains_everything() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 2, 2), Rect::new(5, 5, 9, 7)]);
        let inst = Instance::with_margin(obs, 3);
        assert!(inst.validate().is_ok());
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.vertices().len(), 8);
        assert!(inst.container().contains(Point::new(-3, -3)));
    }

    #[test]
    fn validation_catches_overlap() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 4, 4), Rect::new(2, 2, 6, 6)]);
        let inst = Instance::with_margin(obs, 2);
        match inst.validate() {
            Err(InstanceError::OverlappingObstacles(v)) => {
                assert_eq!((v.first, v.second), (0, 1));
                assert_eq!(v.first_rect, Rect::new(0, 0, 4, 4));
                assert!(v.to_string().contains("obstacles 0 and 1"));
            }
            other => panic!("expected overlap error, got {other:?}"),
        }
    }

    #[test]
    fn validation_catches_escaping_obstacle() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 2, 2), Rect::new(50, 50, 60, 60)]);
        let container = StairRegion::from_rect(Rect::new(-5, -5, 10, 10));
        let inst = Instance::new(obs, container);
        assert_eq!(inst.validate(), Err(InstanceError::ObstacleOutsideContainer(1)));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::with_margin(ObstacleSet::empty(), 10);
        assert!(inst.validate().is_ok());
        assert_eq!(inst.n(), 0);
    }
}
