#![warn(missing_docs)]

//! # rsp-core — Parallel rectilinear shortest paths with rectangular obstacles
//!
//! This crate implements the algorithms of Atallah & Chen (1991):
//!
//! * [`instance`] — problem instances: a rectilinearly convex container `P`
//!   holding `n` pairwise-disjoint rectangular obstacles.
//! * [`trace`] — the eight escape paths `NE(p), NW(p), ..., WS(p)` of
//!   Section 3 (Path Tracing Lemma 6) and their staircase combinations.
//! * [`separator`] — the Staircase Separator Theorem (Theorem 2): an
//!   obstacle-avoiding staircase splitting `R` into two parts of size at most
//!   `7n/8` each, found with `O(n)` work.
//! * [`dnc`] — Section 5: the divide-and-conquer construction of the
//!   boundary-to-boundary path-length matrix `D_Q`, with the conquer step
//!   performed by Monge (min,+) products across the separator.
//! * [`apsp`] — Section 6: the vertex-to-vertex (`V_R`-to-`V_R`) and
//!   vertex-to-boundary length structures.
//! * [`seq`] — Section 9: the `O(n^2)` sequential construction based on
//!   topological relaxation of monotone DAGs (also the per-source routine the
//!   parallel `apsp` fans out over).
//! * [`query`] — Section 6.4: the query oracle (O(1) vertex–vertex queries,
//!   `O(log n)` arbitrary-point queries via ray shooting).
//! * [`sptree`] — Section 8: shortest-path trees and actual path reporting.
//! * [`bigp`] — Section 7: the implicit structure for `|P| = N >> n`.
//! * [`store`] — pluggable distance storage: the dense `O(n^2)` matrix or
//!   the byte-budgeted implicit row store ([`StoreKind`], [`DistanceStore`]).
//! * [`baseline`] — comparators: Hanan-grid ground truth, sparse track-graph
//!   Dijkstra (the de Rezende–Lee–Wu-style single-source algorithm [11]) and
//!   the repeated-SSSP all-pairs baseline.
//! * [`tree`] — the recursion tree of Section 6.1 (inspection / rendering).
//! * [`router`] — the session-style entry point tying everything together:
//!   lazy shared substructures, typed errors, batch query serving.  This is
//!   the API the facade crate, the examples and the README teach; the other
//!   modules are the expert layer underneath it.
//! * [`error`] — [`RspError`], the unified error type of the router layer.

pub mod apsp;
pub mod baseline;
pub mod bigp;
mod delta;
pub mod dnc;
pub mod error;
pub mod instance;
pub mod plan;
pub mod query;
pub mod router;
pub mod separator;
pub mod seq;
pub mod sptree;
pub mod store;
pub mod trace;
pub mod tree;

pub use apsp::VertexApsp;
pub use dnc::{build_boundary_matrix, BoundaryMatrix, DncOptions};
pub use error::RspError;
pub use instance::Instance;
pub use query::{OracleReuse, PathLengthOracle};
pub use router::{BuildCounts, Engine, Router, RouterBuilder};
pub use separator::{find_separator, Separator};
pub use sptree::ShortestPathTrees;
pub use store::{DistanceStore, RowCarry, StoreKind, StoreStats};
