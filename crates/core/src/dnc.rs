//! Section 5: divide-and-conquer construction of the boundary path-length
//! matrix `D_Q`.
//!
//! The recursion works on pairs *(obstacle subset, rectilinearly convex
//! region)*.  A node computes the matrix of **plane** shortest-path lengths
//! avoiding exactly its obstacles, between the points of a boundary
//! discretisation of its region (the Containment Lemma 10 is what makes
//! "plane distance" and "distance inside the region" coincide, and what makes
//! the merge compositional).
//!
//! * **Divide** — find a staircase separator (Theorem 2) for the node's
//!   obstacles, clip it to the region, and split the region into the two
//!   halves on either side of the chain (Lemma 9 guarantees both halves have
//!   clear boundaries).
//! * **Conquer** — any shortest path between points on opposite sides of the
//!   chain can be assumed to meet the chain in a single connected component
//!   (Single Intersection Lemma 11), and its crossing can be normalised to a
//!   discretisation `Middle` of the chain.  Cross distances are therefore one
//!   `(min,+)` product `M_left * M_right` (Theorem 3); by Lemma 1 these
//!   factors are Monge, so the product costs `O(|left| · |Middle|)` work
//!   (Lemmas 3–5) instead of the naive cubic bound.  The implementation
//!   checks the Monge property of the factors at run time and falls back to
//!   the general product if the check fails, so correctness never depends on
//!   the Monge argument (statistics record how often each path is taken —
//!   the ablation of experiment E3).
//! * **Discretisation** — the children's matrices are defined on their own
//!   boundary discretisations; the points the parent needs (its own boundary
//!   points and `Middle`) are attached with the Discretisation Lemma 7: a
//!   boundary point between two adjacent discretisation points either routes
//!   through one of them (walking along the clear boundary), or is connected
//!   "trivially" by a clear L-shaped staircase.
//!
//! The deviations from the paper's bookkeeping (coordinate-grid `B'(Q)`
//! instead of the visibility-based `B(Q)`, clipped regions instead of
//! envelopes) are documented in DESIGN.md §3/§4.

use crate::separator::find_separator;
use rsp_geom::bq::boundary_arc_position;
use rsp_geom::hanan::HananGrid;
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Coord, Dist, ObstacleSet, Point, Rect, StairRegion, INF};
use rsp_monge::{is_monge, min_plus_parallel, MinPlusMatrix, SubmatrixView};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning knobs for the divide-and-conquer.
#[derive(Clone, Debug)]
pub struct DncOptions {
    /// Maximum number of obstacles handled directly in a leaf (closed-form
    /// distances; the default of 1 matches the paper's recursion bottom).
    pub leaf_obstacles: usize,
    /// Use the Monge (SMAWK) product when the factors pass the Monge check.
    pub use_monge: bool,
    /// Recurse with `rayon::join` (the PRAM schedule); `false` forces the
    /// sequential schedule for the E9 scaling experiment.
    pub parallel: bool,
}

impl Default for DncOptions {
    fn default() -> Self {
        DncOptions { leaf_obstacles: 1, use_monge: true, parallel: true }
    }
}

/// Counters describing one construction run (used by the E3 ablation).
#[derive(Clone, Debug, Default)]
pub struct DncStats {
    /// Recursion-tree nodes visited.
    pub nodes: usize,
    /// Leaves of the recursion (regions solved directly).
    pub leaves: usize,
    /// Leaves that fell back to the Hanan-grid solver.
    pub hanan_fallback_leaves: usize,
    /// Conquer steps performed as Monge (min,+) products.
    pub monge_products: usize,
    /// Conquer steps that needed the general (min,+) product.
    pub general_products: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Largest boundary discretisation `|B(Q)|` seen at any node.
    pub largest_boundary: usize,
}

/// The boundary path-length matrix `D_Q` of Section 5.
pub struct BoundaryMatrix {
    /// The boundary discretisation, in counterclockwise order.
    pub points: Vec<Point>,
    /// The region `Q` whose boundary the points live on.
    pub region: StairRegion,
    /// `dist[(i, j)]` = length of a shortest obstacle-avoiding path between
    /// `points[i]` and `points[j]`.
    pub dist: MinPlusMatrix,
    /// Construction statistics.
    pub stats: DncStats,
}

impl BoundaryMatrix {
    /// Distance between two discretisation points given as geometry.
    pub fn distance_between(&self, a: Point, b: Point) -> Option<Dist> {
        let i = self.points.iter().position(|&p| p == a)?;
        let j = self.points.iter().position(|&p| p == b)?;
        Some(self.dist.get(i, j))
    }
}

struct Counters {
    monge: AtomicUsize,
    general: AtomicUsize,
    nodes: AtomicUsize,
    leaves: AtomicUsize,
    hanan: AtomicUsize,
    max_depth: AtomicUsize,
    largest_boundary: AtomicUsize,
}

impl Counters {
    fn new() -> Self {
        Counters {
            monge: AtomicUsize::new(0),
            general: AtomicUsize::new(0),
            nodes: AtomicUsize::new(0),
            leaves: AtomicUsize::new(0),
            hanan: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            largest_boundary: AtomicUsize::new(0),
        }
    }
    fn max_update(cell: &AtomicUsize, value: usize) {
        cell.fetch_max(value, Ordering::Relaxed);
    }
}

/// One recursion node's result: its boundary discretisation (counterclockwise)
/// and the pairwise distance matrix.
struct NodeResult {
    region: StairRegion,
    points: Vec<Point>,
    index: HashMap<Point, usize>,
    dist: MinPlusMatrix,
}

impl NodeResult {
    fn build(region: StairRegion, points: Vec<Point>, dist: MinPlusMatrix) -> Self {
        let mut index = HashMap::with_capacity(points.len());
        for (i, &p) in points.iter().enumerate() {
            index.entry(p).or_insert(i);
        }
        NodeResult { region, points, index, dist }
    }
}

/// Build `D_Q` for the given obstacles inside the given region.  The region
/// must contain every obstacle.  Returns `None` only for degenerate inputs
/// (region with fewer than 4 vertices cannot occur by construction).
pub fn build_boundary_matrix(obstacles: &ObstacleSet, region: &StairRegion, opts: &DncOptions) -> BoundaryMatrix {
    let counters = Counters::new();
    let node = solve(obstacles.clone(), region.clone(), opts, 0, &counters);
    BoundaryMatrix {
        points: node.points,
        region: node.region,
        dist: node.dist,
        stats: DncStats {
            nodes: counters.nodes.load(Ordering::Relaxed),
            leaves: counters.leaves.load(Ordering::Relaxed),
            hanan_fallback_leaves: counters.hanan.load(Ordering::Relaxed),
            monge_products: counters.monge.load(Ordering::Relaxed),
            general_products: counters.general.load(Ordering::Relaxed),
            max_depth: counters.max_depth.load(Ordering::Relaxed),
            largest_boundary: counters.largest_boundary.load(Ordering::Relaxed),
        },
    }
}

/// Convenience: build `D_Q` for an obstacle set inside its expanded bounding
/// box (the `Q = Env(R)`-like case of Section 5).
pub fn build_boundary_matrix_bbox(obstacles: &ObstacleSet, margin: Coord, opts: &DncOptions) -> BoundaryMatrix {
    let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(margin.max(1));
    build_boundary_matrix(obstacles, &StairRegion::from_rect(bbox), opts)
}

fn boundary_discretisation(region: &StairRegion, obstacles: &ObstacleSet) -> Vec<Point> {
    let mut xs = obstacles.xs();
    let mut ys = obstacles.ys();
    xs.extend(region.vertices().iter().map(|p| p.x));
    ys.extend(region.vertices().iter().map(|p| p.y));
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    region.boundary_grid_points(&xs, &ys)
}

fn solve(
    obstacles: ObstacleSet,
    region: StairRegion,
    opts: &DncOptions,
    depth: usize,
    counters: &Counters,
) -> NodeResult {
    counters.nodes.fetch_add(1, Ordering::Relaxed);
    Counters::max_update(&counters.max_depth, depth);
    let points = boundary_discretisation(&region, &obstacles);
    Counters::max_update(&counters.largest_boundary, points.len());
    if obstacles.len() <= opts.leaf_obstacles {
        counters.leaves.fetch_add(1, Ordering::Relaxed);
        let dist = leaf_matrix(&obstacles, &points);
        return NodeResult::build(region, points, dist);
    }
    let index = ShootIndex::build(&obstacles);
    let sep = match find_separator(&obstacles, &index, &region) {
        Some(s) => s,
        None => {
            // Extremely rare safety net (e.g. heavily clipped regions where
            // no candidate pivot yields a two-sided split): solve the node
            // exactly with a Hanan-grid computation.
            counters.leaves.fetch_add(1, Ordering::Relaxed);
            counters.hanan.fetch_add(1, Ordering::Relaxed);
            let dist = hanan_matrix(&obstacles, &points);
            return NodeResult::build(region, points, dist);
        }
    };
    let (piece_a, piece_b) = match region.try_split_by_chain(&sep.chain) {
        Some(pieces) => pieces,
        None => {
            counters.leaves.fetch_add(1, Ordering::Relaxed);
            counters.hanan.fetch_add(1, Ordering::Relaxed);
            let dist = hanan_matrix(&obstacles, &points);
            return NodeResult::build(region, points, dist);
        }
    };
    // Decide which piece hosts the "above" obstacles.
    let above_obs = obstacles.subset(&sep.above);
    let below_obs = obstacles.subset(&sep.below);
    let a_has_above = above_obs.iter().filter(|r| piece_a.contains_rect(r)).count();
    let b_has_above = above_obs.iter().filter(|r| piece_b.contains_rect(r)).count();
    let (region_above, region_below) = if a_has_above >= b_has_above { (piece_a, piece_b) } else { (piece_b, piece_a) };
    let consistent = above_obs.iter().all(|r| region_above.contains_rect(r))
        && below_obs.iter().all(|r| region_below.contains_rect(r))
        && points.iter().all(|&p| region_above.on_boundary(p) || region_below.on_boundary(p))
        && sep.chain.points().iter().all(|&p| region_above.on_boundary(p) && region_below.on_boundary(p))
        && region_above.is_rectilinearly_convex()
        && region_below.is_rectilinearly_convex();
    if !consistent {
        counters.leaves.fetch_add(1, Ordering::Relaxed);
        counters.hanan.fetch_add(1, Ordering::Relaxed);
        let dist = hanan_matrix(&obstacles, &points);
        return NodeResult::build(region, points, dist);
    }
    let (child_above, child_below) = if opts.parallel && obstacles.len() > 8 {
        rayon::join(
            || solve(above_obs.clone(), region_above.clone(), opts, depth + 1, counters),
            || solve(below_obs.clone(), region_below.clone(), opts, depth + 1, counters),
        )
    } else {
        (
            solve(above_obs.clone(), region_above.clone(), opts, depth + 1, counters),
            solve(below_obs.clone(), region_below.clone(), opts, depth + 1, counters),
        )
    };
    merge(&obstacles, &region, points, &sep.chain, child_above, child_below, &above_obs, &below_obs, opts, counters)
}

/// Distances between boundary points of a region containing at most one
/// obstacle: the L1 distance, except when the single rectangle separates the
/// two points inside their bounding box, in which case the cheaper of the two
/// detours around it is added.
fn leaf_matrix(obstacles: &ObstacleSet, points: &[Point]) -> MinPlusMatrix {
    let rect = obstacles.iter().next().copied();
    MinPlusMatrix::from_fn(points.len(), points.len(), |i, j| match rect {
        None => points[i].l1(points[j]),
        Some(r) => one_rect_distance(&r, points[i], points[j]),
    })
}

/// Exact shortest-path distance between two points (not inside the rectangle)
/// when the only obstacle is a single rectangle.
pub fn one_rect_distance(r: &Rect, p: Point, q: Point) -> Dist {
    let direct = p.l1(q);
    let (x1, x2) = (p.x.min(q.x), p.x.max(q.x));
    let (y1, y2) = (p.y.min(q.y), p.y.max(q.y));
    // The rectangle blocks every monotone staircase only if it spans the
    // bounding box of p,q in one dimension while overlapping it in the other.
    let overlaps = r.xmin < x2 && r.xmax > x1 && r.ymin < y2 && r.ymax > y1;
    if !overlaps {
        return direct;
    }
    // "Wall" case: p and q on opposite vertical sides of the rectangle while
    // it covers their whole y-range — the detour climbs over the top or dips
    // under the bottom.
    let opposite_x = (p.x <= r.xmin && q.x >= r.xmax) || (q.x <= r.xmin && p.x >= r.xmax);
    let wall_extra = if opposite_x && r.ymin <= y1 && r.ymax >= y2 { 2 * (r.ymax - y2).min(y1 - r.ymin) } else { INF };
    // "Slab" case: p and q on opposite horizontal sides while the rectangle
    // covers their whole x-range — the detour goes around the left or right
    // end.
    let opposite_y = (p.y <= r.ymin && q.y >= r.ymax) || (q.y <= r.ymin && p.y >= r.ymax);
    let slab_extra = if opposite_y && r.xmin <= x1 && r.xmax >= x2 { 2 * (r.xmax - x2).min(x1 - r.xmin) } else { INF };
    let extra = wall_extra.min(slab_extra);
    if extra >= INF {
        direct
    } else {
        direct + extra
    }
}

/// Exact (slow) matrix via a Hanan grid — the safety net for nodes where the
/// separator machinery refuses to split.
fn hanan_matrix(obstacles: &ObstacleSet, points: &[Point]) -> MinPlusMatrix {
    let grid = HananGrid::build(obstacles, points);
    let rows: Vec<Vec<Dist>> = points.iter().map(|&p| grid.distances_to(p, points)).collect();
    MinPlusMatrix::from_rows(rows)
}

/// Extended view of a child's matrix covering extra boundary points, attached
/// with the Discretisation Lemma 7.
struct Extended {
    index: HashMap<Point, usize>,
    dist: MinPlusMatrix,
}

impl Extended {
    fn get(&self, a: Point, b: Point) -> Dist {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&i), Some(&j)) => self.dist.get(i, j),
            _ => INF,
        }
    }
}

/// Is some L-shaped (one-bend) path between `a` and `b` clear?  `a` and `b`
/// are region-boundary points, so they are never strictly inside an obstacle
/// and the outside-start ray shot applies (the shared implementation lives
/// in `rsp_geom::rayshoot`; `ObstacleIndex::segment_clear` is the variant
/// without the precondition).
fn l_path_clear(index: &ShootIndex, a: Point, b: Point) -> bool {
    let via1 = Point::new(b.x, a.y);
    let via2 = Point::new(a.x, b.y);
    (index.segment_clear_from_outside(a, via1) && index.segment_clear_from_outside(via1, b))
        || (index.segment_clear_from_outside(a, via2) && index.segment_clear_from_outside(via2, b))
}

/// Attach `extra` boundary points to a child's matrix (Lemma 7).
fn extend_child(child: &NodeResult, child_obs: &ObstacleSet, extra: &[Point]) -> Extended {
    let index = ShootIndex::build(child_obs);
    // circular positions of the child's own points along its boundary
    let perimeter = child.region.perimeter();
    let pos_of =
        |p: Point| -> Coord { boundary_arc_position(&child.region, p).expect("point must be on the child's boundary") };
    let own_pos: Vec<Coord> = child.points.iter().map(|&p| pos_of(p)).collect();
    // new points, deduplicated against the child's own points
    let mut new_points: Vec<Point> = Vec::new();
    for &p in extra {
        if !child.index.contains_key(&p) && !new_points.contains(&p) {
            new_points.push(p);
        }
    }
    let m = child.points.len();
    let k = new_points.len();
    let total = m + k;
    let mut points = child.points.clone();
    points.extend_from_slice(&new_points);
    let mut dist = MinPlusMatrix::infinity(total, total);
    for i in 0..m {
        for j in 0..m {
            dist.set(i, j, child.dist.get(i, j));
        }
    }
    // neighbours of each new point among the child's own points
    let neighbours: Vec<(usize, usize)> = new_points
        .iter()
        .map(|&z| {
            let zp = pos_of(z);
            // successor: smallest own position >= zp (cyclically); predecessor: largest <= zp
            let mut succ = 0usize;
            let mut best_succ = Coord::MAX;
            let mut pred = 0usize;
            let mut best_pred = Coord::MAX;
            for (i, &op) in own_pos.iter().enumerate() {
                let fwd = (op - zp).rem_euclid(perimeter);
                let bwd = (zp - op).rem_euclid(perimeter);
                if fwd < best_succ {
                    best_succ = fwd;
                    succ = i;
                }
                if bwd < best_pred {
                    best_pred = bwd;
                    pred = i;
                }
            }
            (pred, succ)
        })
        .collect();
    // new-to-own distances
    for (zi, &z) in new_points.iter().enumerate() {
        let (pred, succ) = neighbours[zi];
        let dp = z.l1(child.points[pred]);
        let ds = z.l1(child.points[succ]);
        for j in 0..m {
            let mut best = (child.dist.get(pred, j).saturating_add(dp)).min(child.dist.get(succ, j).saturating_add(ds));
            let t = child.points[j];
            let direct = z.l1(t);
            if direct < best && l_path_clear(&index, z, t) {
                best = direct;
            }
            dist.set(m + zi, j, best);
            dist.set(j, m + zi, best);
        }
    }
    // new-to-new distances (through the child's own points, or direct)
    for zi in 0..k {
        dist.set(m + zi, m + zi, 0);
        for ti in (zi + 1)..k {
            let z = new_points[zi];
            let t = new_points[ti];
            let (zp, zs) = neighbours[zi];
            let mut best = INF;
            for &(ni, nd) in &[(zp, z.l1(child.points[zp])), (zs, z.l1(child.points[zs]))] {
                let via = dist.get(ni, m + ti);
                if via < INF {
                    best = best.min(via + nd);
                }
            }
            let direct = z.l1(t);
            if direct < best && l_path_clear(&index, z, t) {
                best = direct;
            }
            dist.set(m + zi, m + ti, best);
            dist.set(m + ti, m + zi, best);
        }
    }
    let mut index_map = HashMap::with_capacity(total);
    for (i, &p) in points.iter().enumerate() {
        index_map.entry(p).or_insert(i);
    }
    Extended { index: index_map, dist }
}

/// Discretise the separator chain: its vertices plus its crossings with every
/// coordinate line of the parent's obstacles and region vertices, in chain
/// order.
fn middle_points(chain: &Chain, obstacles: &ObstacleSet, region: &StairRegion) -> Vec<Point> {
    let mut xs = obstacles.xs();
    let mut ys = obstacles.ys();
    xs.extend(region.vertices().iter().map(|p| p.x));
    ys.extend(region.vertices().iter().map(|p| p.y));
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut pts: Vec<Point> = chain.points().to_vec();
    for &x in &xs {
        pts.extend(chain.points_at_x(x));
    }
    for &y in &ys {
        pts.extend(chain.points_at_y(y));
    }
    pts.retain(|&p| chain.contains_point(p));
    pts.sort_by_key(|&p| chain.arc_position(p).unwrap_or(Dist::MAX));
    pts.dedup();
    pts
}

#[allow(clippy::too_many_arguments)]
fn merge(
    obstacles: &ObstacleSet,
    region: &StairRegion,
    parent_points: Vec<Point>,
    chain: &Chain,
    child_above: NodeResult,
    child_below: NodeResult,
    above_obs: &ObstacleSet,
    below_obs: &ObstacleSet,
    opts: &DncOptions,
    counters: &Counters,
) -> NodeResult {
    let middle = middle_points(chain, obstacles, region);
    // Partition the parent's boundary points between the two children.
    let mut side_of: Vec<u8> = Vec::with_capacity(parent_points.len());
    for &p in &parent_points {
        if child_above.region.on_boundary(p) {
            side_of.push(0);
        } else {
            debug_assert!(child_below.region.on_boundary(p), "parent boundary point on neither child");
            side_of.push(1);
        }
    }
    let above_targets: Vec<Point> = parent_points
        .iter()
        .zip(&side_of)
        .filter(|&(_, &s)| s == 0)
        .map(|(&p, _)| p)
        .chain(middle.iter().copied())
        .collect();
    let below_targets: Vec<Point> = parent_points
        .iter()
        .zip(&side_of)
        .filter(|&(_, &s)| s == 1)
        .map(|(&p, _)| p)
        .chain(middle.iter().copied())
        .collect();
    let ext_above = extend_child(&child_above, above_obs, &above_targets);
    let ext_below = extend_child(&child_below, below_obs, &below_targets);

    // Cross-side distances via one (min,+) product over Middle.
    let above_parent: Vec<Point> =
        parent_points.iter().zip(&side_of).filter(|&(_, &s)| s == 0).map(|(&p, _)| p).collect();
    let below_parent: Vec<Point> =
        parent_points.iter().zip(&side_of).filter(|&(_, &s)| s == 1).map(|(&p, _)| p).collect();
    let a_rows: Vec<usize> = above_parent.iter().map(|p| ext_above.index[p]).collect();
    let mid_a: Vec<usize> = middle.iter().map(|p| ext_above.index[p]).collect();
    let mid_b: Vec<usize> = middle.iter().map(|p| ext_below.index[p]).collect();
    let b_cols: Vec<usize> = below_parent.iter().map(|p| ext_below.index[p]).collect();
    // Borrowed block views: the Monge check and the (min,+) product read the
    // factors in place instead of copying `O(|parent| · |Middle|)` entries
    // out of each child at every recursion node.
    let left = SubmatrixView::new(&ext_above.dist, &a_rows, &mid_a);
    let right = SubmatrixView::new(&ext_below.dist, &mid_b, &b_cols);
    let cross = if !above_parent.is_empty() && !below_parent.is_empty() && !middle.is_empty() {
        if opts.use_monge && is_monge(&left) && is_monge(&right) {
            counters.monge.fetch_add(1, Ordering::Relaxed);
            min_plus_parallel(&left, &right)
        } else {
            counters.general.fetch_add(1, Ordering::Relaxed);
            rsp_monge::multiply::min_plus_general_parallel(&left, &right)
        }
    } else {
        MinPlusMatrix::infinity(above_parent.len(), below_parent.len())
    };

    // Assemble the parent's matrix.
    let mut above_rank = vec![usize::MAX; parent_points.len()];
    let mut below_rank = vec![usize::MAX; parent_points.len()];
    {
        let mut a = 0;
        let mut b = 0;
        for (i, &s) in side_of.iter().enumerate() {
            if s == 0 {
                above_rank[i] = a;
                a += 1;
            } else {
                below_rank[i] = b;
                b += 1;
            }
        }
    }
    let n = parent_points.len();
    let dist = MinPlusMatrix::from_fn(n, n, |i, j| {
        let (pi, pj) = (parent_points[i], parent_points[j]);
        match (side_of[i], side_of[j]) {
            (0, 0) => ext_above.get(pi, pj),
            (1, 1) => ext_below.get(pi, pj),
            (0, 1) => cross.get(above_rank[i], below_rank[j]),
            _ => cross.get(above_rank[j], below_rank[i]),
        }
    });
    NodeResult::build(region.clone(), parent_points, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_matrix;

    #[test]
    fn one_rect_distance_cases() {
        let r = Rect::new(2, 2, 6, 8);
        // unobstructed pairs
        assert_eq!(one_rect_distance(&r, Point::new(0, 0), Point::new(1, 9)), 10);
        // left-right across the rectangle, forced around the top or bottom
        assert_eq!(one_rect_distance(&r, Point::new(0, 5), Point::new(8, 5)), 8 + 2 * 3);
        // bottom-top across, forced around the left or right
        assert_eq!(one_rect_distance(&r, Point::new(4, 0), Point::new(4, 10)), 10 + 2 * 2);
        // touching the corner region: no detour
        assert_eq!(one_rect_distance(&r, Point::new(0, 0), Point::new(7, 9)), 16);
    }

    fn verify_against_truth(obstacles: ObstacleSet, opts: &DncOptions) {
        let bm = build_boundary_matrix_bbox(&obstacles, 3, opts);
        let truth = ground_truth_matrix(&obstacles, &bm.points);
        for (i, row) in truth.iter().enumerate() {
            for (j, &expected) in row.iter().enumerate() {
                assert_eq!(bm.dist.get(i, j), expected, "mismatch {:?} -> {:?}", bm.points[i], bm.points[j]);
            }
        }
    }

    #[test]
    fn matches_ground_truth_small_fixed() {
        let obstacles = ObstacleSet::new(vec![Rect::new(2, 2, 5, 6), Rect::new(8, 1, 11, 9), Rect::new(3, 9, 9, 12)]);
        verify_against_truth(obstacles, &DncOptions::default());
    }

    #[test]
    fn matches_ground_truth_random_instances() {
        for seed in 0..5 {
            let w = rsp_workload::uniform_disjoint(7, seed);
            verify_against_truth(w.obstacles, &DncOptions::default());
        }
    }

    #[test]
    fn monge_and_general_products_agree() {
        let w = rsp_workload::uniform_disjoint(10, 77);
        let a = build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions::default());
        let b = build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions { use_monge: false, ..DncOptions::default() });
        assert_eq!(a.dist, b.dist);
        assert!(a.stats.monge_products + a.stats.general_products > 0);
        assert_eq!(b.stats.monge_products, 0);
    }

    #[test]
    fn sequential_and_parallel_schedules_agree() {
        let w = rsp_workload::uniform_disjoint(12, 5);
        let a = build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions::default());
        let b = build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions { parallel: false, ..DncOptions::default() });
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.points, b.points);
        assert!(a.stats.nodes >= 3);
        assert!(a.stats.max_depth >= 1);
    }

    #[test]
    fn empty_and_single_obstacle_regions() {
        let empty = ObstacleSet::empty();
        let region = StairRegion::from_rect(Rect::new(0, 0, 10, 10));
        let bm = build_boundary_matrix(&empty, &region, &DncOptions::default());
        for i in 0..bm.points.len() {
            for j in 0..bm.points.len() {
                assert_eq!(bm.dist.get(i, j), bm.points[i].l1(bm.points[j]));
            }
        }
        let one = ObstacleSet::new(vec![Rect::new(3, 3, 6, 6)]);
        verify_against_truth(one, &DncOptions::default());
    }

    #[test]
    fn distance_between_lookup() {
        let obstacles = ObstacleSet::new(vec![Rect::new(2, 2, 6, 6)]);
        let bm = build_boundary_matrix_bbox(&obstacles, 2, &DncOptions::default());
        let a = *bm.points.first().unwrap();
        assert_eq!(bm.distance_between(a, a), Some(0));
        assert_eq!(bm.distance_between(a, Point::new(1000, 1000)), None);
    }
}
