//! Section 6: the all-pairs vertex-to-vertex (`V_R`-to-`V_R`) length matrix
//! and the vertex-to-boundary structure.
//!
//! The paper builds these in `O(log^2 n)` time with `O(n^2)` processors by
//! pipelining `O(n)` computational "flows" through the recursion tree
//! (Section 6.3).  On a multicore the same `O(n^2)` work bound is obtained by
//! fanning the `4n` single-source computations of Section 9 out over the
//! rayon pool (each source costs `O(n log n)` here); by Brent's theorem the
//! running time is `O(n^2 log n / p + n)`, which for any realistic `p << n`
//! is indistinguishable from the paper's schedule.  The substitution is
//! documented in DESIGN.md §3 (item 4) and evaluated by experiment E4.

use crate::instance::Instance;
use crate::seq::SingleSourceEngine;
use crate::store::DistanceStore;
use rayon::prelude::*;
use rsp_geom::{Dist, ObstacleSet, Point, INF};
use rsp_monge::MinPlusMatrix;
use std::collections::HashMap;

/// The `V_R`-to-`V_R` path-length structure plus the point-to-index mapping.
/// Distances live behind a pluggable [`DistanceStore`]: the dense matrix the
/// paper materialises, or the implicit byte-budgeted row store for scenes
/// where `O(n^2)` memory is the wall.  Both backends answer bitwise
/// identically (see [`crate::store`]).
pub struct VertexApsp {
    vertices: Vec<Point>,
    index_of: HashMap<Point, usize>,
    store: DistanceStore,
}

impl VertexApsp {
    /// Build the dense matrix, parallelising over the `4n` sources.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let engine = SingleSourceEngine::new(obstacles);
        let vertices = engine.vertices().to_vec();
        let rows: Vec<Vec<Dist>> = vertices.par_iter().map(|&v| engine.distances_from(v)).collect();
        Self::from_rows(vertices, rows)
    }

    /// Build the dense matrix sequentially (the Section 9 baseline); used by
    /// the E8 experiment for the parallel-vs-sequential comparison.
    pub fn build_sequential(obstacles: &ObstacleSet) -> Self {
        let engine = SingleSourceEngine::new(obstacles);
        let vertices = engine.vertices().to_vec();
        let rows: Vec<Vec<Dist>> = vertices.iter().map(|&v| engine.distances_from(v)).collect();
        Self::from_rows(vertices, rows)
    }

    /// Build an *implicit* structure: no matrix is materialised; distance
    /// rows are generated on demand by the same single-source engine the
    /// dense builders fan out over, and cached under `budget_bytes`.
    pub fn build_implicit(obstacles: &ObstacleSet, budget_bytes: usize) -> Self {
        let store = DistanceStore::implicit_sweep(obstacles, budget_bytes);
        Self::from_store(obstacles.vertices(), store)
    }

    /// Implicit structure over the Hanan-grid Dijkstra row generator (the
    /// baseline comparator's counterpart of [`VertexApsp::build_implicit`]).
    pub fn build_implicit_hanan(obstacles: &ObstacleSet, budget_bytes: usize) -> Self {
        let store = DistanceStore::implicit_hanan(obstacles, budget_bytes);
        Self::from_store(obstacles.vertices(), store)
    }

    /// Wrap an externally computed `V_R`-to-`V_R` matrix (rows/columns in
    /// `vertices` order).  Used by comparator engines (e.g. the Hanan-grid
    /// baseline of the `Router`) to serve queries through the same oracle.
    pub fn from_matrix(vertices: Vec<Point>, matrix: MinPlusMatrix) -> Self {
        assert_eq!(matrix.rows(), vertices.len(), "matrix rows must match the vertex count");
        assert_eq!(matrix.cols(), vertices.len(), "matrix cols must match the vertex count");
        Self::from_store(vertices, DistanceStore::dense(matrix))
    }

    /// Wrap any [`DistanceStore`] whose row/column space is `vertices`.
    pub fn from_store(vertices: Vec<Point>, store: DistanceStore) -> Self {
        assert_eq!(store.dim(), vertices.len(), "store dimension must match the vertex count");
        let mut index_of = HashMap::with_capacity(vertices.len());
        for (i, &p) in vertices.iter().enumerate() {
            index_of.entry(p).or_insert(i);
        }
        VertexApsp { vertices, index_of, store }
    }

    fn from_rows(vertices: Vec<Point>, rows: Vec<Vec<Dist>>) -> Self {
        let matrix = MinPlusMatrix::from_rows(rows);
        Self::from_store(vertices, DistanceStore::dense(matrix))
    }

    /// Convenience constructor from an [`Instance`].
    pub fn build_for(instance: &Instance) -> Self {
        Self::build(instance.obstacles())
    }

    /// The obstacle vertices, in matrix order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (`4n`).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the obstacle set was empty (no vertices).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Length query between two vertices given by index: `O(1)` for the
    /// dense store and for implicit-resident rows; one single-source sweep
    /// on an implicit row miss.
    pub fn distance(&self, i: usize, j: usize) -> Dist {
        self.store.at(i, j)
    }

    /// Length query between two obstacle vertices given as points.
    /// Returns `INF` if either point is not an obstacle vertex.
    pub fn distance_between(&self, a: Point, b: Point) -> Dist {
        match (self.index_of.get(&a), self.index_of.get(&b)) {
            (Some(&i), Some(&j)) => self.store.at(i, j),
            _ => INF,
        }
    }

    /// Index of an obstacle vertex.
    pub fn vertex_index(&self, p: Point) -> Option<usize> {
        self.index_of.get(&p).copied()
    }

    /// The underlying dense matrix, when this structure has one (`None` for
    /// the implicit store, which never materialises it).
    pub fn matrix(&self) -> Option<&MinPlusMatrix> {
        self.store.as_dense()
    }

    /// The distance storage backend.
    pub fn store(&self) -> &DistanceStore {
        &self.store
    }

    /// Memory accounting snapshot of the distance store.
    pub fn store_stats(&self) -> crate::store::StoreStats {
        self.store.stats()
    }
}

/// The `B(P)`-to-`V_R` structure of Section 6.2: path lengths from a set of
/// boundary points of the container to every obstacle vertex.  (The paper
/// derives it top-down from the recursion tree with Lemma 15; here it is a
/// second fan-out of the same single-source engine, one source per boundary
/// point, preserving the `O(n^2 log n)`-work shape of the claim.)
pub struct BoundaryToVertex {
    boundary_points: Vec<Point>,
    vertices: Vec<Point>,
    matrix: MinPlusMatrix,
}

impl BoundaryToVertex {
    /// Build the boundary-to-vertex length structure by fanning the
    /// single-source engine out over `boundary_points` (Section 6.3).
    pub fn build(obstacles: &ObstacleSet, boundary_points: &[Point]) -> Self {
        let engine = SingleSourceEngine::new(obstacles);
        let vertices = engine.vertices().to_vec();
        let rows: Vec<Vec<Dist>> = boundary_points.par_iter().map(|&b| engine.distances_from(b)).collect();
        BoundaryToVertex { boundary_points: boundary_points.to_vec(), vertices, matrix: MinPlusMatrix::from_rows(rows) }
    }

    /// The boundary points (row index space).
    pub fn boundary_points(&self) -> &[Point] {
        &self.boundary_points
    }

    /// The obstacle vertices (column index space).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Length of a shortest path from boundary point `i` to obstacle vertex
    /// `j`.
    pub fn distance(&self, i: usize, j: usize) -> Dist {
        self.matrix.get(i, j)
    }

    /// The full boundary-to-vertex length matrix.
    pub fn matrix(&self) -> &MinPlusMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_matrix;
    use rsp_geom::Rect;

    fn obstacles() -> ObstacleSet {
        ObstacleSet::new(vec![
            Rect::new(0, 0, 4, 3),
            Rect::new(6, 2, 9, 8),
            Rect::new(1, 6, 4, 9),
            Rect::new(11, 0, 13, 4),
        ])
    }

    #[test]
    fn parallel_matches_sequential_and_truth() {
        let obs = obstacles();
        let par = VertexApsp::build(&obs);
        let seq = VertexApsp::build_sequential(&obs);
        assert_eq!(par.matrix().expect("dense build"), seq.matrix().expect("dense build"));
        let verts = obs.vertices();
        let truth = ground_truth_matrix(&obs, &verts);
        for i in 0..verts.len() {
            for j in 0..verts.len() {
                assert_eq!(par.distance(i, j), truth[i][j], "{:?} -> {:?}", verts[i], verts[j]);
            }
        }
    }

    #[test]
    fn implicit_store_is_bitwise_equal_to_dense() {
        let obs = obstacles();
        let dense = VertexApsp::build(&obs);
        // A deliberately tiny budget (two rows) exercises eviction churn.
        let row_bytes = dense.len() * std::mem::size_of::<Dist>();
        let implicit = VertexApsp::build_implicit(&obs, 2 * row_bytes);
        assert!(implicit.matrix().is_none(), "implicit store never materialises the matrix");
        assert_eq!(implicit.len(), dense.len());
        for i in 0..dense.len() {
            for j in 0..dense.len() {
                assert_eq!(implicit.distance(i, j), dense.distance(i, j), "({i},{j})");
            }
        }
        let stats = implicit.store_stats();
        assert!(stats.resident_bytes <= 2 * row_bytes);
        assert!(stats.resident_bytes < stats.dense_bytes);
        // Point-based lookups route through the same store.
        let a = Point::new(4, 3);
        let b = Point::new(6, 2);
        assert_eq!(implicit.distance_between(a, b), dense.distance_between(a, b));
    }

    #[test]
    fn point_based_lookup() {
        let obs = obstacles();
        let apsp = VertexApsp::build(&obs);
        let a = Point::new(4, 3); // UR of obstacle 0
        let b = Point::new(6, 2); // LL of obstacle 1
        assert_eq!(apsp.distance_between(a, b), 3);
        assert_eq!(apsp.distance_between(a, a), 0);
        assert_eq!(apsp.distance_between(a, Point::new(1000, 1000)), INF);
        assert!(apsp.vertex_index(a).is_some());
        assert_eq!(apsp.len(), 16);
    }

    #[test]
    fn boundary_to_vertex_structure() {
        let obs = obstacles();
        let boundary = vec![Point::new(-2, -2), Point::new(15, 10), Point::new(-2, 10)];
        let b2v = BoundaryToVertex::build(&obs, &boundary);
        assert_eq!(b2v.boundary_points().len(), 3);
        assert_eq!(b2v.vertices().len(), 16);
        for (i, &b) in boundary.iter().enumerate() {
            for (j, &v) in b2v.vertices().iter().enumerate() {
                let expect = rsp_geom::hanan::ground_truth_distance(&obs, b, v);
                assert_eq!(b2v.distance(i, j), expect, "{:?} -> {:?}", b, v);
            }
        }
    }
}
