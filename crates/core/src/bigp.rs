//! Section 7: the case `|P| = N >> n`.
//!
//! When the container polygon has many more vertices than there are
//! obstacles, materialising the `N x N` boundary matrix would cost `O(N^2)`
//! work and memory.  The paper instead partitions `Bound(P)` into at most
//! eight chunks by the horizontal/vertical lines through the extreme edges of
//! `Env(R)`; every chunk gets an `O(n)`-point set `K` on its defining line
//! such that any nontrivial shortest path from a chunk point can be deformed
//! to pass through a point of `K`.  Storing only the `K`-to-vertex distances
//! gives an implicit representation of all `N^2` path lengths with
//! `O(N + n^2 …)` work.
//!
//! This implementation targets the benchmark configuration where `P` is a
//! (finely subdivided) rectangle: the `K` sets are the projections of the
//! obstacle coordinates onto the four sides of the obstacle bounding box, and
//! a query from a container boundary point scans the `O(n)` candidates of its
//! side (the paper further reduces the scan to `O(log n)` with a
//! monotonicity/Monge argument; the construction cost — which is what the E7
//! experiment measures against the explicit `O(N^2)` matrix — is identical).

use crate::query::PathLengthOracle;
use crate::store::StoreKind;
use rsp_geom::{Dist, ObstacleSet, Point, Rect, INF};
use std::sync::Arc;

/// The implicit boundary structure of Section 7.
pub struct BigPolygonStructure {
    /// Candidate crossing points on the four sides of the obstacle bounding
    /// box (the union of the paper's per-chunk `K` sets).
    k_points: Vec<Point>,
    /// Length oracle over the obstacles (vertex matrix + ray shooting).
    oracle: PathLengthOracle,
    /// Obstacle bounding box (the four defining lines).
    env: Rect,
    /// Number of container boundary vertices represented (the paper's `N`).
    container_vertices: usize,
}

impl BigPolygonStructure {
    /// Build the structure for a container rectangle subdivided into
    /// `container_vertices` boundary vertices.  Work is `O(N)` for the chunk
    /// assignment plus the oracle construction; nothing quadratic in `N` is
    /// ever allocated.
    pub fn build(obstacles: &ObstacleSet, container: Rect, container_vertices: usize) -> Self {
        Self::build_with_store(obstacles, container, container_vertices, StoreKind::Dense)
    }

    /// [`BigPolygonStructure::build`] with an explicit distance-store choice
    /// for the inner oracle.  Section 7 already keeps the *boundary* side
    /// implicit; [`StoreKind::Implicit`] extends that to the vertex matrix,
    /// so nothing quadratic in `n` is materialised either.
    pub fn build_with_store(
        obstacles: &ObstacleSet,
        container: Rect,
        container_vertices: usize,
        store: StoreKind,
    ) -> Self {
        let oracle = match store.resolve(obstacles.len()) {
            StoreKind::Implicit { budget_bytes } => {
                PathLengthOracle::build_implicit_arc(Arc::new(obstacles.clone()), budget_bytes)
            }
            _ => PathLengthOracle::build(obstacles),
        };
        let env = obstacles.bbox().unwrap_or(container);
        let mut k_points = Vec::new();
        for x in obstacles.xs() {
            k_points.push(Point::new(x, env.ymax));
            k_points.push(Point::new(x, env.ymin));
        }
        for y in obstacles.ys() {
            k_points.push(Point::new(env.xmin, y));
            k_points.push(Point::new(env.xmax, y));
        }
        // the four corners of the envelope close the corner chunks
        k_points.extend_from_slice(&env.corners());
        k_points.sort();
        k_points.dedup();
        BigPolygonStructure { k_points, oracle, env, container_vertices }
    }

    /// The candidate set size (`O(n)`).
    pub fn k_size(&self) -> usize {
        self.k_points.len()
    }

    /// The number of container boundary vertices represented.
    pub fn container_vertices(&self) -> usize {
        self.container_vertices
    }

    /// Memory footprint of the implicit representation, in matrix entries
    /// (for the E7 comparison against the `N^2` explicit matrix).
    pub fn implicit_entries(&self) -> usize {
        self.k_points.len() * self.oracle.apsp().len() + self.container_vertices
    }

    /// Length of a shortest path from a point on the container boundary
    /// (outside the obstacle bounding box) to an arbitrary point `t`.
    pub fn boundary_distance(&self, p: Point, t: Point) -> Dist {
        // Trivial case: a clear one-bend connection.
        let mut best = match self.oracle.l_connection(p, t) {
            Some(_) => p.l1(t),
            None => INF,
        };
        // Nontrivial case: through a candidate crossing point of the
        // obstacle bounding box.  From `p` (outside the box) to a candidate
        // on the box boundary the straight L1 distance is achievable because
        // the region outside the box is obstacle-free.
        for &k in &self.k_points {
            let tail = self.oracle.distance(k, t);
            if tail < INF {
                best = best.min(p.l1(k) + tail);
            }
        }
        best
    }

    /// The obstacle bounding box whose sides carry the `K` points.
    pub fn envelope(&self) -> Rect {
        self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_distance;
    use rsp_workload::uniform_disjoint;

    #[test]
    fn boundary_queries_match_ground_truth() {
        let w = uniform_disjoint(8, 21);
        let bbox = w.obstacles.bbox().unwrap().expand(20);
        let big = BigPolygonStructure::build(&w.obstacles, bbox, 1000);
        // sample points on the container boundary
        let samples = [
            Point::new(bbox.xmin, bbox.ymin + 7),
            Point::new(bbox.xmax, bbox.ymin + 31),
            Point::new(bbox.xmin + 13, bbox.ymax),
            Point::new(bbox.xmax - 5, bbox.ymin),
            bbox.ll(),
            bbox.ur(),
        ];
        let targets: Vec<Point> = w.obstacles.vertices().into_iter().step_by(3).collect();
        for &p in &samples {
            for &t in &targets {
                let expect = ground_truth_distance(&w.obstacles, p, t);
                assert_eq!(big.boundary_distance(p, t), expect, "{:?} -> {:?}", p, t);
            }
        }
    }

    #[test]
    fn implicit_store_answers_boundary_queries_identically() {
        let w = uniform_disjoint(7, 13);
        let bbox = w.obstacles.bbox().unwrap().expand(15);
        let dense = BigPolygonStructure::build(&w.obstacles, bbox, 500);
        let implicit = BigPolygonStructure::build_with_store(
            &w.obstacles,
            bbox,
            500,
            StoreKind::Implicit { budget_bytes: 1 << 12 },
        );
        let samples = [bbox.ll(), bbox.ur(), Point::new(bbox.xmin, bbox.ymin + 9)];
        let targets: Vec<Point> = w.obstacles.vertices().into_iter().step_by(2).collect();
        for &p in &samples {
            for &t in &targets {
                assert_eq!(implicit.boundary_distance(p, t), dense.boundary_distance(p, t), "{p:?} -> {t:?}");
            }
        }
        assert_eq!(implicit.implicit_entries(), dense.implicit_entries());
    }

    #[test]
    fn implicit_representation_is_small() {
        let w = uniform_disjoint(16, 3);
        let bbox = w.obstacles.bbox().unwrap().expand(50);
        let n_container = 100_000usize;
        let big = BigPolygonStructure::build(&w.obstacles, bbox, n_container);
        assert!(big.k_size() <= 4 * 4 * w.n() + 8);
        // the implicit representation is linear in N, far below N^2
        assert!(big.implicit_entries() < n_container * 2);
        assert!(big.implicit_entries() < n_container * n_container / 1000);
        assert_eq!(big.container_vertices(), n_container);
    }
}
