//! Baselines and ground truth.
//!
//! * [`ground_truth_distance`] / [`ground_truth_matrix`] — Hanan-grid
//!   Dijkstra, the exact oracle every engine in the workspace is validated
//!   against.  This plays the role of an external reference implementation;
//!   it is not part of the paper's algorithm.
//! * [`repeated_sssp_matrix`] — the "apply the single-source algorithm of
//!   [11] `O(n)` times" baseline that Section 9 compares its `O(n^2)`
//!   construction against (`O(n^2 log n)` total work).  Experiment E8
//!   measures this against the Section-9 sweep and the parallel builder.
//! * [`dijkstra_sssp_matrix`] — an intentionally naive all-pairs baseline
//!   (full Hanan-grid Dijkstra per source) used to show the gap to the
//!   paper's approach on small inputs.

use crate::instance::Instance;
use rayon::prelude::*;
use rsp_geom::hanan::HananGrid;
use rsp_geom::{Dist, ObstacleSet, Point};
use rsp_monge::MinPlusMatrix;

pub use rsp_geom::hanan::{ground_truth_distance, ground_truth_matrix};

/// Ground-truth distance between two arbitrary points of an instance.
pub fn instance_ground_truth(instance: &Instance, a: Point, b: Point) -> Dist {
    ground_truth_distance(instance.obstacles(), a, b)
}

/// All-pairs vertex matrix by repeating the (fast, sparse) single-source
/// sweep of Section 9 once per vertex, sequentially.  `O(n^2 log n)` work.
pub fn repeated_sssp_matrix(obstacles: &ObstacleSet) -> MinPlusMatrix {
    let engine = crate::seq::SingleSourceEngine::new(obstacles);
    let rows: Vec<Vec<Dist>> = engine.vertices().to_vec().iter().map(|&v| engine.distances_from(v)).collect();
    MinPlusMatrix::from_rows(rows)
}

/// All-pairs vertex matrix by running a full Hanan-grid Dijkstra per source
/// (parallel over sources).  Quadratic-size graph per source, so
/// `O(n^3 log n)` work in total — the "don't do this" baseline.
pub fn dijkstra_sssp_matrix(obstacles: &ObstacleSet) -> MinPlusMatrix {
    let vertices = obstacles.vertices();
    let grid = HananGrid::build(obstacles, &vertices);
    let rows: Vec<Vec<Dist>> = vertices.par_iter().map(|&v| grid.distances_to(v, &vertices)).collect();
    MinPlusMatrix::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::Rect;

    fn obstacles() -> ObstacleSet {
        ObstacleSet::new(vec![Rect::new(0, 0, 3, 3), Rect::new(5, 1, 8, 6), Rect::new(2, 8, 9, 10)])
    }

    #[test]
    fn baselines_agree_with_each_other() {
        let obs = obstacles();
        let fast = repeated_sssp_matrix(&obs);
        let slow = dijkstra_sssp_matrix(&obs);
        assert_eq!(fast, slow);
    }

    #[test]
    fn instance_ground_truth_wrapper() {
        let inst = Instance::with_margin(obstacles(), 5);
        let d = instance_ground_truth(&inst, Point::new(-1, -1), Point::new(9, 7));
        assert_eq!(d, ground_truth_distance(inst.obstacles(), Point::new(-1, -1), Point::new(9, 7)));
        assert!(d >= Point::new(-1, -1).l1(Point::new(9, 7)));
    }
}
