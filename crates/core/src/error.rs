//! The workspace-level error type for the [`Router`](crate::router::Router)
//! session API.
//!
//! Before this module existed, failure was signalled three different ways:
//! [`InstanceError`] from validation, `Option`-means-not-a-vertex from the
//! query/path layers, and panics from `expect` calls in examples.  Every
//! fallible `Router` entry point returns [`RspError`] instead, which absorbs
//! all three conventions and implements [`std::error::Error`], so callers
//! can use `?` and `Box<dyn Error>` like with any other Rust library.

use crate::instance::InstanceError;
use rsp_geom::{DisjointnessViolation, Point, RectId};

/// Everything that can go wrong when building a [`Router`](crate::router::Router)
/// or serving a query through it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RspError {
    /// Two obstacles have overlapping interiors; carries the offending pair
    /// (ids and rectangles) so the caller can locate and fix the input.
    OverlappingObstacles(DisjointnessViolation),
    /// An obstacle is not contained in the instance's container.
    ObstacleOutsideContainer(RectId),
    /// The container is not rectilinearly convex.
    ContainerNotConvex,
    /// A point passed to a vertex-only API (e.g. `path`) is not an obstacle
    /// vertex.
    NotAVertex(Point),
    /// A point lies outside the instance container `P`.
    PointOutsideContainer(Point),
    /// A query endpoint lies strictly inside an obstacle (carries the point
    /// and the obstacle id), so no obstacle-avoiding path exists.
    PointInsideObstacle {
        /// The offending query point.
        point: Point,
        /// Id of the obstacle whose open interior contains the point.
        obstacle: RectId,
    },
    /// `threads(p)` was asked for a thread pool that could not be built.
    ThreadPool(String),
    /// A [`SceneDelta`](rsp_geom::SceneDelta) passed to
    /// [`Router::apply_delta`](crate::router::Router::apply_delta) is
    /// malformed (removal out of range or duplicated).
    InvalidDelta(rsp_geom::DeltaError),
}

impl std::fmt::Display for RspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RspError::OverlappingObstacles(v) => write!(f, "{v}"),
            RspError::ObstacleOutsideContainer(i) => {
                write!(f, "obstacle {i} is not contained in the container")
            }
            RspError::ContainerNotConvex => write!(f, "the container is not rectilinearly convex"),
            RspError::NotAVertex(p) => {
                write!(f, "point ({}, {}) is not an obstacle vertex", p.x, p.y)
            }
            RspError::PointOutsideContainer(p) => {
                write!(f, "point ({}, {}) lies outside the instance container", p.x, p.y)
            }
            RspError::PointInsideObstacle { point, obstacle } => {
                write!(f, "query point ({}, {}) lies strictly inside obstacle {}", point.x, point.y, obstacle)
            }
            RspError::ThreadPool(msg) => write!(f, "failed to build the thread pool: {msg}"),
            RspError::InvalidDelta(e) => write!(f, "invalid scene delta: {e}"),
        }
    }
}

impl std::error::Error for RspError {}

impl From<DisjointnessViolation> for RspError {
    fn from(v: DisjointnessViolation) -> Self {
        RspError::OverlappingObstacles(v)
    }
}

impl From<rsp_geom::DeltaError> for RspError {
    fn from(e: rsp_geom::DeltaError) -> Self {
        RspError::InvalidDelta(e)
    }
}

impl From<InstanceError> for RspError {
    fn from(e: InstanceError) -> Self {
        match e {
            InstanceError::OverlappingObstacles(v) => RspError::OverlappingObstacles(v),
            InstanceError::ObstacleOutsideContainer(i) => RspError::ObstacleOutsideContainer(i),
            InstanceError::ContainerNotConvex => RspError::ContainerNotConvex,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::{ObstacleSet, Rect};

    #[test]
    fn display_names_the_offending_pair() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 4, 4), Rect::new(10, 10, 12, 12), Rect::new(3, 1, 8, 5)]);
        let err: RspError = obs.validate_disjoint().unwrap_err().into();
        let msg = err.to_string();
        assert!(msg.contains("obstacles 0 and 2"), "{msg}");
        assert!(msg.contains("[0,4]x[0,4]"), "{msg}");
        assert!(msg.contains("[3,8]x[1,5]"), "{msg}");
    }

    #[test]
    fn instance_errors_convert() {
        assert_eq!(RspError::from(InstanceError::ContainerNotConvex), RspError::ContainerNotConvex);
        assert_eq!(RspError::from(InstanceError::ObstacleOutsideContainer(3)), RspError::ObstacleOutsideContainer(3));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(RspError::NotAVertex(Point::new(1, 2)));
        assert!(err.to_string().contains("(1, 2)"));
    }
}
