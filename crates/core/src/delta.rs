//! Epoch-to-epoch delta plumbing for [`Router::apply_delta`](crate::Router::apply_delta).
//!
//! A scene edit compacts obstacle ids ([`ObstacleSet::apply_delta`]) and the
//! structures carried across the edit are all indexed by obstacle or vertex
//! id, so the delta build needs the id translations in both directions plus
//! the edited geometries the conservative keep-tests run against.  This
//! module derives the vertex-level maps from the rectangle-level ones (the
//! vertex order `LL, LR, UR, UL` per obstacle is pinned by
//! [`ObstacleSet::vertices`], so vertex `4p + c` of the old epoch is vertex
//! `4q + c` of the new one whenever obstacle `p` survived as `q`) and holds
//! the deferred [`DeltaBase`] a delta router consumes on its first oracle
//! build.

use crate::query::PathLengthOracle;
use rsp_geom::{Rect, RectId};
use std::sync::Arc;

/// Derive vertex-index maps from obstacle-index maps: obstacle `p -> q`
/// means vertex `4p + c -> 4q + c` for each corner `c` (the `LL, LR, UR, UL`
/// order of [`ObstacleSet::vertices`]).
pub(crate) fn vertex_maps(
    old_to_new_rect: &[Option<RectId>],
    new_to_old_rect: &[Option<RectId>],
) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let expand = |rect_map: &[Option<RectId>]| -> Vec<Option<usize>> {
        rect_map.iter().flat_map(|&m| (0..4).map(move |c| m.map(|q| 4 * q + c))).collect()
    };
    (expand(old_to_new_rect), expand(new_to_old_rect))
}

/// Everything a delta router defers until its first oracle build: the old
/// epoch's oracle (kept alive only until the delta is consumed), the id
/// translations across the compaction and the edited geometries.
pub(crate) struct DeltaBase {
    /// The base epoch's oracle; dropped once the delta build has run, so an
    /// edited session does not pin its ancestor's structures forever.
    pub oracle: Arc<PathLengthOracle>,
    pub old_to_new_rect: Vec<Option<RectId>>,
    pub old_to_new_vertex: Vec<Option<usize>>,
    pub new_to_old_vertex: Vec<Option<usize>>,
    /// Geometries of every inserted and removed rectangle.
    pub edited: Vec<Rect>,
}

impl DeltaBase {
    pub(crate) fn new(
        oracle: Arc<PathLengthOracle>,
        old_to_new_rect: Vec<Option<RectId>>,
        new_to_old_rect: Vec<Option<RectId>>,
        edited: Vec<Rect>,
    ) -> Self {
        let (old_to_new_vertex, new_to_old_vertex) = vertex_maps(&old_to_new_rect, &new_to_old_rect);
        DeltaBase { oracle, old_to_new_rect, old_to_new_vertex, new_to_old_vertex, edited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::{ObstacleSet, Point, SceneDelta};

    #[test]
    fn vertex_maps_follow_the_rect_compaction() {
        let set = ObstacleSet::new(vec![Rect::new(0, 0, 2, 2), Rect::new(4, 4, 6, 6), Rect::new(8, 8, 10, 10)]);
        let applied = set.apply_delta(&SceneDelta { insert: vec![Rect::new(20, 0, 22, 2)], remove: vec![1] }).unwrap();
        let (o2n, n2o) = vertex_maps(&applied.old_to_new, &applied.new_to_old);
        assert_eq!(o2n.len(), 12);
        assert_eq!(n2o.len(), 12);
        let old_vertices = set.vertices();
        let new_vertices = applied.obstacles.vertices();
        for (ov, &m) in o2n.iter().enumerate() {
            if let Some(nv) = m {
                assert_eq!(old_vertices[ov], new_vertices[nv], "surviving vertex keeps its point");
                assert_eq!(n2o[nv], Some(ov), "maps are mutually inverse on survivors");
            }
        }
        // removed obstacle 1 -> its four vertices vanish
        assert!(o2n[4..8].iter().all(Option::is_none));
        // the inserted obstacle's vertices are new
        assert!(n2o[8..12].iter().all(Option::is_none));
        assert_eq!(new_vertices[8], Point::new(20, 0));
    }
}
