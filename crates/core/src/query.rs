//! Section 6.4: the query oracle.
//!
//! * A length query between two *obstacle vertices* is one lookup in the
//!   `V_R`-to-`V_R` matrix — `O(1)`.
//! * For arbitrary query points the paper augments the structure with the
//!   precomputed escape paths `X(v)` of every vertex (Section 6.1) and two
//!   ray-shooting subdivisions.  A query `(p, q)` with `q ∈ V_R` then reduces
//!   to: shoot a horizontal and a vertical ray from `p` towards `q`; if the
//!   ray reaches the escape staircase of `q` that points into `p`'s quadrant
//!   before any obstacle, the answer is `d(p, q)`; otherwise the answer goes
//!   through one of the two endpoints of the first obstacle edge hit
//!   (argument from [11], restated in Section 6.4).  Taking the minimum of
//!   the horizontal and the vertical reduction removes the need to test which
//!   side of the staircase `p` lies on: for the correct side the reduction is
//!   exact and for the other side it still produces a valid (not shorter)
//!   path length.
//! * When both endpoints are arbitrary, the escape staircase of `q` is
//!   assembled on the fly from one ray shot plus the precomputed staircase of
//!   an obstacle corner, and the edge-endpoint distances recurse into the
//!   one-arbitrary-endpoint case (recursion depth at most two).

use crate::apsp::VertexApsp;
use crate::instance::Instance;
use crate::trace::{escape_path, EscapeKind};
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Coord, Dir, Dist, ObstacleIndex, ObstacleSet, Point, Rect, StairRegion, INF};
use std::collections::HashMap;
use std::sync::Arc;

/// Far-away sentinel used to extend clipped escape staircases back to
/// "unbounded" ones.
const FAR: Coord = 1 << 40;

/// The query data structure of Section 6.4.
///
/// Every per-query primitive on the arbitrary-point path is logarithmic and
/// allocation-free: ray shots and point containment go through the
/// [`ObstacleIndex`], staircase/line intersections binary-search the
/// monotone escape chains, and the on-the-fly staircase of a both-arbitrary
/// query is a borrowed [`ChainView`] instead of a concatenated heap chain.
pub struct PathLengthOracle {
    obstacles: Arc<ObstacleSet>,
    apsp: VertexApsp,
    index: ObstacleIndex,
    /// `chains[k][v]` — escape staircase of vertex `v` into quadrant `k`
    /// (0 = NE, 1 = NW, 2 = SE, 3 = SW), extended to infinity.
    chains: [Vec<Chain>; 4],
    vertex_id: HashMap<Point, usize>,
}

/// A borrowed escape staircase: up to three inline prefix points (the query
/// point, the ray hit, the obstacle corner) followed by an optional borrowed
/// precomputed corner staircase whose first point equals the last prefix
/// point.  This is the allocation-free replacement for assembling a
/// both-arbitrary query's staircase with `Chain::concat`: the union of
/// segments is identical, so the line intersections agree, and nothing is
/// heap-allocated per query.
struct ChainView<'a> {
    /// Inline prefix points; only the first `prefix_len` are meaningful.
    /// Constructors produce `prefix_len` 0 (whole chain), 2 (inline ray) or
    /// 3 (prefix + suffix) — never 1, so the intersections need no
    /// single-point case.
    prefix: [Point; 3],
    prefix_len: usize,
    suffix: Option<&'a Chain>,
}

impl<'a> ChainView<'a> {
    /// View an entire precomputed chain (the one-arbitrary-endpoint case).
    fn whole(chain: &'a Chain) -> Self {
        ChainView { prefix: [Point::new(0, 0); 3], prefix_len: 0, suffix: Some(chain) }
    }

    /// View of inline points only (a straight ray to infinity).
    fn inline(prefix: [Point; 3], prefix_len: usize) -> Self {
        ChainView { prefix, prefix_len, suffix: None }
    }

    /// Prefix points then the borrowed suffix.
    fn with_suffix(prefix: [Point; 3], suffix: &'a Chain) -> Self {
        debug_assert_eq!(prefix[2], suffix.first(), "prefix must end where the suffix starts");
        ChainView { prefix, prefix_len: 3, suffix: Some(suffix) }
    }

    /// Merge two optional coordinate intervals.
    fn merge(a: Option<(Coord, Coord)>, b: Option<(Coord, Coord)>) -> Option<(Coord, Coord)> {
        match (a, b) {
            (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
            (one, None) => one,
            (None, one) => one,
        }
    }

    /// Intersection with the horizontal line `y = c` (mirrors
    /// [`Chain::intersect_horizontal`]): constant work on the prefix plus a
    /// logarithmic search on the borrowed staircase suffix.
    fn intersect_horizontal(&self, c: Coord) -> Option<(Coord, Coord)> {
        let mut acc: Option<(Coord, Coord)> = None;
        let prefix = &self.prefix[..self.prefix_len];
        for w in prefix.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.y.min(b.y) <= c && c <= a.y.max(b.y) {
                let seg = if a.y == b.y { (a.x.min(b.x), a.x.max(b.x)) } else { (a.x, a.x) };
                acc = Self::merge(acc, Some(seg));
            }
        }
        Self::merge(acc, self.suffix.and_then(|s| s.intersect_horizontal(c)))
    }

    /// Intersection with the vertical line `x = c`.
    fn intersect_vertical(&self, c: Coord) -> Option<(Coord, Coord)> {
        let mut acc: Option<(Coord, Coord)> = None;
        let prefix = &self.prefix[..self.prefix_len];
        for w in prefix.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.x.min(b.x) <= c && c <= a.x.max(b.x) {
                let seg = if a.x == b.x { (a.y.min(b.y), a.y.max(b.y)) } else { (a.y, a.y) };
                acc = Self::merge(acc, Some(seg));
            }
        }
        Self::merge(acc, self.suffix.and_then(|s| s.intersect_vertical(c)))
    }
}

/// Per-query cache for the up-to-four axis shots from one arbitrary query
/// point.  A both-arbitrary detour evaluates up to four inner vertex
/// reductions, all shooting from the same point `q`; caching turns their
/// certificate shots into `O(1)` re-reads.  Lives on the stack (`Cell`s of
/// `Copy` data), so the hot path stays allocation-free.
#[derive(Default)]
struct ShotCache {
    slots: [std::cell::Cell<Option<Option<rsp_geom::rayshoot::Hit>>>; 4],
}

fn dir_slot(dir: Dir) -> usize {
    match dir {
        Dir::North => 0,
        Dir::South => 1,
        Dir::East => 2,
        Dir::West => 3,
    }
}

pub(crate) fn quadrant_of(from: Point, to: Point) -> usize {
    // quadrant of `to` relative to `from`
    match (to.x >= from.x, to.y >= from.y) {
        (true, true) => 0,   // NE
        (false, true) => 1,  // NW
        (true, false) => 2,  // SE
        (false, false) => 3, // SW
    }
}

fn kind_for_quadrant(q: usize) -> EscapeKind {
    match q {
        0 => EscapeKind::NE,
        1 => EscapeKind::NW,
        2 => EscapeKind::SE,
        _ => EscapeKind::SW,
    }
}

/// Substructure reuse accounting of a [`PathLengthOracle::from_apsp_delta`]
/// build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleReuse {
    /// Escape staircases copied from the base epoch (of `4 · 4n` total).
    pub chains_reused: usize,
    /// Escape staircases re-traced in the edited scene.
    pub chains_rebuilt: usize,
    /// Ray-shooting slab-column accounting across all five directional
    /// indexes (four shoot directions plus the top-edge locator).
    pub slab_columns: rsp_geom::SlabReuse,
}

/// Does the *closed* rectangle meet the chain polyline?  Segments of an
/// escape chain are axis-parallel, so each test is an interval overlap.
fn chain_touches_rect(chain: &Chain, r: &Rect) -> bool {
    chain.points().windows(2).any(|w| {
        let (a, b) = (w[0], w[1]);
        if a.x == b.x {
            r.xmin <= a.x && a.x <= r.xmax && a.y.min(b.y) <= r.ymax && r.ymin <= a.y.max(b.y)
        } else {
            r.ymin <= a.y && a.y <= r.ymax && a.x.min(b.x) <= r.xmax && r.xmin <= a.x.max(b.x)
        }
    })
}

/// Extend a clipped escape path back to an unbounded staircase by prolonging
/// its final segment to a far sentinel.
fn extend_to_far(chain: &Chain, primary: Dir) -> Chain {
    let mut pts = chain.points().to_vec();
    let last = *pts.last().unwrap();
    let far_point = match primary {
        Dir::North => Point::new(last.x, FAR),
        Dir::South => Point::new(last.x, -FAR),
        Dir::East => Point::new(FAR, last.y),
        Dir::West => Point::new(-FAR, last.y),
    };
    if far_point != last {
        pts.push(far_point);
    }
    Chain::new(pts)
}

/// Fill `out[i]` with the extended escape staircase of `vertices[i]`,
/// splitting the range over [`rayon::join`] down to sequential chunks.
fn fill_escape_chains(
    obstacles: &ObstacleSet,
    index: &ShootIndex,
    region: &StairRegion,
    vertices: &[Point],
    kind: EscapeKind,
    out: &mut [Chain],
) {
    const SEQ_CHUNK: usize = 32;
    debug_assert_eq!(vertices.len(), out.len());
    if vertices.len() <= SEQ_CHUNK {
        for (slot, &v) in out.iter_mut().zip(vertices) {
            *slot = extend_to_far(&escape_path(obstacles, index, region, v, kind), kind.primary);
        }
        return;
    }
    let mid = vertices.len() / 2;
    let (lo, hi) = out.split_at_mut(mid);
    rayon::join(
        || fill_escape_chains(obstacles, index, region, &vertices[..mid], kind, lo),
        || fill_escape_chains(obstacles, index, region, &vertices[mid..], kind, hi),
    );
}

impl PathLengthOracle {
    /// Build the oracle: the vertex matrix, the obstacle index and the
    /// `4 · 4n` precomputed escape staircases of Section 6.1.  Copies the
    /// obstacle set; callers that already hold an `Arc` (the `Router`) use
    /// [`PathLengthOracle::build_arc`] to skip the copy.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        Self::build_arc(Arc::new(obstacles.clone()))
    }

    /// Build from a shared obstacle set without copying it.
    pub fn build_arc(obstacles: Arc<ObstacleSet>) -> Self {
        let apsp = VertexApsp::build(&obstacles);
        Self::from_apsp(obstacles, apsp)
    }

    /// Build with an *implicit* distance store: no `O(n^2)` vertex matrix is
    /// materialised; distance rows are generated on demand and cached under
    /// `budget_bytes` (see [`VertexApsp::build_implicit`]).  Queries answer
    /// bitwise-identically to the dense constructors.
    pub fn build_implicit_arc(obstacles: Arc<ObstacleSet>, budget_bytes: usize) -> Self {
        let apsp = VertexApsp::build_implicit(&obstacles, budget_bytes);
        Self::from_apsp(obstacles, apsp)
    }

    /// Build from an existing vertex matrix and a shared obstacle set.  The
    /// four escape-staircase families are built concurrently over
    /// [`rayon::join`] splits (pairs of quadrants, then vertex-range halves).
    pub fn from_apsp(obstacles: Arc<ObstacleSet>, apsp: VertexApsp) -> Self {
        let index = ObstacleIndex::build(&obstacles);
        let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(8);
        let region = StairRegion::from_rect(bbox);
        let vertices = apsp.vertices().to_vec();
        let build_chains = |kind: EscapeKind| -> Vec<Chain> {
            let mut out = vec![Chain::singleton(Point::new(0, 0)); vertices.len()];
            fill_escape_chains(&obstacles, index.shoot_index(), &region, &vertices, kind, &mut out);
            out
        };
        let ((ne, nw), (se, sw)) = rayon::join(
            || rayon::join(|| build_chains(EscapeKind::NE), || build_chains(EscapeKind::NW)),
            || rayon::join(|| build_chains(EscapeKind::SE), || build_chains(EscapeKind::SW)),
        );
        let chains = [ne, nw, se, sw];
        let mut vertex_id = HashMap::with_capacity(vertices.len());
        for (i, &p) in vertices.iter().enumerate() {
            vertex_id.entry(p).or_insert(i);
        }
        PathLengthOracle { obstacles, apsp, vertex_id, index, chains }
    }

    /// Build for an *edited* scene, reusing from `old` (the base epoch's
    /// oracle) every escape staircase and ray-shooting slab column the edit
    /// provably cannot affect.  The result answers every query identically
    /// to [`PathLengthOracle::from_apsp`] over the same `obstacles`/`apsp`.
    ///
    /// Chain reuse soundness: every shot, slide and exit segment of
    /// [`escape_path`] lies *on* the resulting chain.  If no edited closed
    /// rectangle touches the chain polyline, then (a) no removed rectangle
    /// participated in the walk — a slide runs along the blocking obstacle's
    /// boundary, which the chain touches; (b) no inserted rectangle can
    /// intercept a shot earlier than its old hit — the interception point
    /// would lie on both the segment (hence the chain) and the rectangle's
    /// boundary.  So the walk replays identically in the new scene.  The
    /// test additionally requires the obstacle bounding box to be unchanged
    /// (the clip region derives from it) and the vertex to survive the
    /// compaction; everything else is recomputed fresh.
    pub fn from_apsp_delta(
        obstacles: Arc<ObstacleSet>,
        apsp: VertexApsp,
        old: &PathLengthOracle,
        old_to_new_rect: &[Option<usize>],
        new_to_old_vertex: &[Option<usize>],
        edited: &[Rect],
    ) -> (Self, OracleReuse) {
        use rayon::prelude::*;
        let (index, slab_columns) = ObstacleIndex::build_delta(&obstacles, &old.index, edited, old_to_new_rect);
        let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(8);
        let bbox_unchanged = old.obstacles.bbox().map(|b| b.expand(8)) == Some(bbox);
        let region = StairRegion::from_rect(bbox);
        let vertices = apsp.vertices().to_vec();
        let shoot = index.shoot_index();
        let build_chains = |quad: usize| -> (Vec<Chain>, usize) {
            let kind = kind_for_quadrant(quad);
            let built: Vec<(Chain, bool)> = (0..vertices.len())
                .into_par_iter()
                .map(|i| {
                    if bbox_unchanged {
                        if let Some(oi) = new_to_old_vertex[i] {
                            let chain = &old.chains[quad][oi];
                            debug_assert_eq!(old.apsp.vertices()[oi], vertices[i]);
                            if !edited.iter().any(|r| chain_touches_rect(chain, r)) {
                                return (chain.clone(), true);
                            }
                        }
                    }
                    (extend_to_far(&escape_path(&obstacles, shoot, &region, vertices[i], kind), kind.primary), false)
                })
                .collect();
            let reused = built.iter().filter(|&&(_, r)| r).count();
            (built.into_iter().map(|(c, _)| c).collect(), reused)
        };
        let (((ne, r0), (nw, r1)), ((se, r2), (sw, r3))) = rayon::join(
            || rayon::join(|| build_chains(0), || build_chains(1)),
            || rayon::join(|| build_chains(2), || build_chains(3)),
        );
        let chains = [ne, nw, se, sw];
        let chains_reused = r0 + r1 + r2 + r3;
        let chains_rebuilt = 4 * vertices.len() - chains_reused;
        let mut vertex_id = HashMap::with_capacity(vertices.len());
        for (i, &p) in vertices.iter().enumerate() {
            vertex_id.entry(p).or_insert(i);
        }
        let oracle = PathLengthOracle { obstacles, apsp, vertex_id, index, chains };
        (oracle, OracleReuse { chains_reused, chains_rebuilt, slab_columns })
    }

    /// Convenience constructor from an [`Instance`] (shares the instance's
    /// obstacle `Arc` — no copy).
    pub fn build_for(instance: &Instance) -> Self {
        Self::build_arc(instance.obstacles_arc())
    }

    /// The underlying vertex matrix.
    pub fn apsp(&self) -> &VertexApsp {
        &self.apsp
    }

    /// Number of obstacles.
    pub fn n(&self) -> usize {
        self.obstacles.len()
    }

    /// The obstacle set the oracle was built for.
    pub fn obstacles(&self) -> &ObstacleSet {
        &self.obstacles
    }

    /// The precomputed escape staircase of vertex `vertex_index` into
    /// quadrant `quadrant` (0 = NE, 1 = NW, 2 = SE, 3 = SW) — the `X(v)`
    /// paths of Section 6.1, reused by the shortest-path trees of Section 8.
    pub fn escape_chain(&self, vertex_index: usize, quadrant: usize) -> &Chain {
        &self.chains[quadrant][vertex_index]
    }

    /// Shared ray-shooting index.
    pub(crate) fn shoot_index(&self) -> &ShootIndex {
        self.index.shoot_index()
    }

    /// Shared containment/segment index (logarithmic point location).
    pub(crate) fn obstacle_index(&self) -> &ObstacleIndex {
        &self.index
    }

    /// If some one-bend (L-shaped) path between `a` and `b` is clear of
    /// obstacle interiors, return its bend point.
    ///
    /// Short-circuits through the [`ObstacleIndex`]: endpoints strictly
    /// inside an obstacle fail immediately, and the degenerate collinear
    /// cases (`a.x == b.x` or `a.y == b.y`) resolve with a single ray shot
    /// instead of up to four.
    pub fn l_connection(&self, a: Point, b: Point) -> Option<Point> {
        if self.index.containing_obstacle(a).is_some() || self.index.containing_obstacle(b).is_some() {
            return None;
        }
        let shoot = self.index.shoot_index();
        if a.x == b.x || a.y == b.y {
            // Both candidate bends coincide with an endpoint; one straight
            // segment decides.  (Returns the same bend the general case
            // would: `(b.x, a.y)` equals `a` resp. `b` here.)
            return shoot.segment_clear_from_outside(a, b).then_some(Point::new(b.x, a.y));
        }
        // The first legs start at `a` (outside, checked above); a clear first
        // leg guarantees the bend is not strictly inside either, so the
        // cheaper outside-start shot is valid for both legs.
        [Point::new(b.x, a.y), Point::new(a.x, b.y)]
            .into_iter()
            .find(|&bend| shoot.segment_clear_from_outside(a, bend) && shoot.segment_clear_from_outside(bend, b))
    }

    /// Unified segment clearance (same semantics as the naive
    /// [`ObstacleSet::segment_clear`], logarithmic cost).
    pub fn segment_clear(&self, a: Point, b: Point) -> bool {
        self.index.segment_clear(a, b)
    }

    /// O(1) query for two obstacle vertices.  `None` if either point is not
    /// an obstacle vertex.
    pub fn vertex_distance(&self, a: Point, b: Point) -> Option<Dist> {
        if self.vertex_id.contains_key(&a) && self.vertex_id.contains_key(&b) {
            Some(self.apsp.distance_between(a, b))
        } else {
            None
        }
    }

    /// Length of a shortest obstacle-avoiding path between two arbitrary
    /// points (`INF` if either lies strictly inside an obstacle).
    pub fn distance(&self, p: Point, q: Point) -> Dist {
        if self.index.containing_obstacle(p).is_some() || self.index.containing_obstacle(q).is_some() {
            return INF;
        }
        self.distance_clear(p, q)
    }

    /// [`PathLengthOracle::distance`] without the containment probes, for
    /// callers (the `Router`) that have already verified neither endpoint
    /// lies strictly inside an obstacle.
    pub(crate) fn distance_clear(&self, p: Point, q: Point) -> Dist {
        if p == q {
            return 0;
        }
        if let Some(&qi) = self.vertex_id.get(&q) {
            if self.vertex_id.contains_key(&p) {
                return self.apsp.distance_between(p, q);
            }
            return self.distance_to_vertex(p, qi);
        }
        if let Some(&pi) = self.vertex_id.get(&p) {
            return self.distance_to_vertex(q, pi);
        }
        // both arbitrary: view q's escape staircase on the fly (borrowed, no
        // allocation) and reduce; all inner vertex reductions shoot from the
        // same `q`, so they share one per-query shot cache
        let cache = ShotCache::default();
        let quad = quadrant_of(q, p);
        let view = self.on_the_fly_view(q, quad, Some(&cache));
        self.reduce(p, q, &view, None, true, |vi| self.distance_to_vertex_cached(q, vi, Some(&cache)))
    }

    /// Distance from an arbitrary point `p` to vertex number `qi`.
    fn distance_to_vertex(&self, p: Point, qi: usize) -> Dist {
        self.distance_to_vertex_cached(p, qi, None)
    }

    /// [`PathLengthOracle::distance_to_vertex`] with an optional shared
    /// cache for the axis shots from `p`.
    ///
    /// Every detour endpoint `vi` the reduction tries needs `d(vi, qi)` —
    /// which by metric symmetry is entry `vi` of *row `qi`*.  Serving all of
    /// them from one row handle means an implicit store pays at most one
    /// sweep per target vertex (for the first detour; certified shots need
    /// none) instead of materialising a different row per detour candidate.
    /// The dense arm borrows its row slice directly, keeping this path
    /// allocation-free.
    fn distance_to_vertex_cached(&self, p: Point, qi: usize, cache: Option<&ShotCache>) -> Dist {
        let q = self.apsp.vertices()[qi];
        if p == q {
            return 0;
        }
        let chain = &self.chains[quadrant_of(q, p)][qi];
        let view = ChainView::whole(chain);
        match self.apsp.store().as_dense() {
            Some(m) => {
                let row = m.row(qi);
                self.reduce(p, q, &view, cache, false, |vi| row[vi])
            }
            None => {
                let store = self.apsp.store().as_implicit().expect("store is dense or implicit");
                // Lazy: queries certified by a ray shot never touch the row.
                let row: std::cell::OnceCell<std::sync::Arc<[Dist]>> = std::cell::OnceCell::new();
                self.reduce(p, q, &view, cache, false, |vi| row.get_or_init(|| store.row(qi))[vi])
            }
        }
    }

    /// Shoot from `p`, consulting and filling the per-query cache when one
    /// is shared by sibling reductions from the same point.
    fn shoot_cached(&self, p: Point, dir: Dir, cache: Option<&ShotCache>) -> Option<rsp_geom::rayshoot::Hit> {
        match cache {
            None => self.index.shoot(p, dir),
            Some(c) => {
                let slot = &c.slots[dir_slot(dir)];
                match slot.get() {
                    Some(hit) => hit,
                    None => {
                        let hit = self.index.shoot(p, dir);
                        slot.set(Some(hit));
                        hit
                    }
                }
            }
        }
    }

    /// The core reduction of Section 6.4: from `p`, shoot towards `q` both
    /// horizontally and vertically; each shot yields either the direct
    /// distance (if the staircase `chain` emanating from `q` is reached
    /// before any obstacle) or a detour through the endpoints of the blocking
    /// edge, whose distances to `q` are supplied by `to_q`.
    ///
    /// Every reduction yields the length of some genuine obstacle-avoiding
    /// path, so `L1(p, q)` is a global lower bound and either shot reaching
    /// the staircase before its blocking obstacle certifies the final
    /// answer.  Both cheap reach tests (one indexed shot + one staircase
    /// binary search each) therefore run **before** either expensive detour
    /// (two `to_q` evaluations, which recurse on the both-arbitrary path):
    /// detours only run for the rare pairs where neither ray reaches the
    /// staircase, which is what keeps the per-query cost logarithmic in
    /// practice and not dominated by the detour recursion.
    fn reduce(
        &self,
        p: Point,
        q: Point,
        chain: &ChainView<'_>,
        cache: Option<&ShotCache>,
        outer: bool,
        to_q: impl Fn(usize) -> Dist,
    ) -> Dist {
        let lower = p.l1(q);
        let hdir = if q.x <= p.x { Dir::West } else { Dir::East };
        let hhit = self.shoot_cached(p, hdir, cache);
        if Self::chain_reached(p, chain, hdir, hhit.map(|h| h.distance_from(p))) {
            return lower;
        }
        let vdir = if q.y <= p.y { Dir::South } else { Dir::North };
        let vhit = self.shoot_cached(p, vdir, cache);
        if Self::chain_reached(p, chain, vdir, vhit.map(|h| h.distance_from(p))) {
            return lower;
        }
        // L-path certificate: a clear one-bend path realises the L1 lower
        // bound outright.  The first leg of each candidate L runs along the
        // ray just shot, so only the second leg needs a fresh (logarithmic)
        // shot — far cheaper than a detour, whose two `to_q` evaluations
        // recurse into full vertex reductions.
        // The L-path certificate only pays off on the outer level, where a
        // fallback detour recurses into full vertex reductions; an inner
        // detour is two O(1) matrix lookups, cheaper than the extra shots
        // the certificate costs.
        if outer {
            let shoot = self.index.shoot_index();
            if hhit.is_none_or(|h| h.distance_from(p) >= (q.x - p.x).abs())
                && shoot.segment_clear_from_outside(Point::new(q.x, p.y), q)
            {
                return lower;
            }
            if vhit.is_none_or(|h| h.distance_from(p) >= (q.y - p.y).abs())
                && shoot.segment_clear_from_outside(Point::new(p.x, q.y), q)
            {
                return lower;
            }
        }
        // Detours: collect the up-to-four blocking-edge endpoints, order by
        // the L1 lower bound `|pv| + |vq|` of any path through them, and
        // evaluate with best-first pruning — `to_q(v)` is the expensive step
        // (a recursive vertex reduction on the both-arbitrary path), and a
        // candidate whose bound cannot beat the incumbent is skipped without
        // evaluating it.  Endpoint vertex ids follow directly from the
        // obstacle id (`V_R` stores LL, LR, UR, UL per obstacle), so no hash
        // lookups happen here.
        let mut candidates: [Option<(Dist, Point, usize)>; 4] = [None; 4];
        let mut k = 0;
        for (hit, dir) in [(hhit, hdir), (vhit, vdir)] {
            let Some(hit) = hit else { continue };
            let r = self.obstacles.rect(hit.rect);
            let base = 4 * hit.rect;
            let (v1, i1, v2, i2) = match dir {
                Dir::West => (r.lr(), base + 1, r.ur(), base + 2),
                Dir::East => (r.ll(), base, r.ul(), base + 3),
                Dir::South => (r.ul(), base + 3, r.ur(), base + 2),
                Dir::North => (r.ll(), base, r.lr(), base + 1),
            };
            for (v, vi) in [(v1, i1), (v2, i2)] {
                debug_assert_eq!(self.apsp.vertices()[vi], v, "V_R must be in LL,LR,UR,UL obstacle order");
                candidates[k] = Some((p.l1(v) + v.l1(q), v, vi));
                k += 1;
            }
        }
        candidates[..k].sort_unstable_by_key(|c| c.map_or(INF, |(bound, _, _)| bound));
        let mut best = INF;
        for &(bound, v, vi) in candidates[..k].iter().flatten() {
            if bound >= best {
                break; // sorted: no later candidate can improve
            }
            let tail = to_q(vi);
            if tail < INF {
                best = best.min(p.l1(v) + tail);
            }
            if best == lower {
                return best;
            }
        }
        best
    }

    /// Does the ray from `p` in direction `dir` meet the staircase no later
    /// than its first obstacle (`obstacle_distance`)?
    fn chain_reached(p: Point, chain: &ChainView<'_>, dir: Dir, obstacle_distance: Option<Dist>) -> bool {
        // distance along the ray at which the chain is first met
        let chain_distance: Option<Dist> = match dir {
            Dir::West | Dir::East => chain.intersect_horizontal(p.y).and_then(|(lo, hi)| {
                if dir == Dir::West {
                    if hi <= p.x {
                        Some(p.x - hi)
                    } else if lo <= p.x {
                        Some(0)
                    } else {
                        None
                    }
                } else if lo >= p.x {
                    Some(lo - p.x)
                } else if hi >= p.x {
                    Some(0)
                } else {
                    None
                }
            }),
            Dir::North | Dir::South => chain.intersect_vertical(p.x).and_then(|(lo, hi)| {
                if dir == Dir::South {
                    if hi <= p.y {
                        Some(p.y - hi)
                    } else if lo <= p.y {
                        Some(0)
                    } else {
                        None
                    }
                } else if lo >= p.y {
                    Some(lo - p.y)
                } else if hi >= p.y {
                    Some(0)
                } else {
                    None
                }
            }),
        };
        chain_distance.is_some_and(|cd| obstacle_distance.is_none_or(|od| cd <= od))
    }

    /// View the escape staircase of an arbitrary point `q` into quadrant
    /// `quad`: shoot the primary direction once; if an obstacle is hit, walk
    /// along it to the corner and continue with that corner's precomputed
    /// (borrowed) staircase.  Nothing is allocated: this is the old
    /// `on_the_fly_chain` minus its per-query `Chain::concat`.
    fn on_the_fly_view(&self, q: Point, quad: usize, cache: Option<&ShotCache>) -> ChainView<'_> {
        let kind = kind_for_quadrant(quad);
        match self.shoot_cached(q, kind.primary, cache) {
            None => {
                let far = match kind.primary {
                    Dir::North => Point::new(q.x, FAR),
                    Dir::South => Point::new(q.x, -FAR),
                    Dir::East => Point::new(FAR, q.y),
                    Dir::West => Point::new(-FAR, q.y),
                };
                ChainView::inline([q, far, far], 2)
            }
            Some(hit) => {
                let r = self.obstacles.rect(hit.rect);
                let (vertical, horizontal) = if kind.primary.is_vertical() {
                    (kind.primary.opposite(), kind.policy)
                } else {
                    (kind.policy, kind.primary.opposite())
                };
                let corner = r.corner(vertical, horizontal);
                // corner -> vertex id without hashing (LL, LR, UR, UL order)
                let corner_id = 4 * hit.rect
                    + match (vertical, horizontal) {
                        (Dir::South, Dir::West) => 0,
                        (Dir::South, Dir::East) => 1,
                        (Dir::North, Dir::East) => 2,
                        _ => 3,
                    };
                debug_assert_eq!(self.apsp.vertices()[corner_id], corner);
                let corner_chain = &self.chains[quad][corner_id];
                ChainView::with_suffix([q, hit.point, corner], corner_chain)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_distance;
    use rsp_workload::{query_pairs, uniform_disjoint};

    #[test]
    fn vertex_queries_are_exact() {
        let w = uniform_disjoint(10, 3);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let verts = w.obstacles.vertices();
        for i in (0..verts.len()).step_by(3) {
            for j in (0..verts.len()).step_by(5) {
                let expect = ground_truth_distance(&w.obstacles, verts[i], verts[j]);
                assert_eq!(oracle.vertex_distance(verts[i], verts[j]), Some(expect));
                assert_eq!(oracle.distance(verts[i], verts[j]), expect);
            }
        }
    }

    #[test]
    fn arbitrary_point_queries_match_ground_truth() {
        for seed in 0..4 {
            let w = uniform_disjoint(8, seed);
            let oracle = PathLengthOracle::build(&w.obstacles);
            for (a, b) in query_pairs(&w.obstacles, 40, false, seed + 100) {
                let expect = ground_truth_distance(&w.obstacles, a, b);
                assert_eq!(oracle.distance(a, b), expect, "seed {seed}: {:?} -> {:?}", a, b);
            }
        }
    }

    #[test]
    fn mixed_vertex_and_arbitrary_queries() {
        let w = uniform_disjoint(9, 11);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let verts = w.obstacles.vertices();
        for (a, _) in query_pairs(&w.obstacles, 25, false, 5) {
            for &v in verts.iter().step_by(7) {
                let expect = ground_truth_distance(&w.obstacles, a, v);
                assert_eq!(oracle.distance(a, v), expect, "{:?} -> {:?}", a, v);
                assert_eq!(oracle.distance(v, a), expect, "{:?} -> {:?}", v, a);
            }
        }
    }

    #[test]
    fn query_inside_obstacle_is_inf() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 10, 10)]);
        let oracle = PathLengthOracle::build(&obs);
        assert_eq!(oracle.distance(Point::new(5, 5), Point::new(20, 20)), INF);
        assert_eq!(oracle.vertex_distance(Point::new(5, 5), Point::new(0, 0)), None);
    }

    #[test]
    fn l_connection_degenerate_collinear() {
        let obs = ObstacleSet::new(vec![Rect::new(2, 2, 6, 10), Rect::new(9, 0, 12, 6)]);
        let oracle = PathLengthOracle::build(&obs);
        // a.x == b.x, clear corridor: the bend is the general-rule `(b.x, a.y)` = a
        let (a, b) = (Point::new(7, 0), Point::new(7, 12));
        assert_eq!(oracle.l_connection(a, b), Some(Point::new(b.x, a.y)));
        // a.x == b.x, blocked by obstacle 0
        assert_eq!(oracle.l_connection(Point::new(4, 0), Point::new(4, 12)), None);
        // a.y == b.y, clear along the shared boundary height y=10
        assert_eq!(oracle.l_connection(Point::new(0, 10), Point::new(13, 10)), Some(Point::new(13, 10)));
        // a.y == b.y, blocked by both obstacles
        assert_eq!(oracle.l_connection(Point::new(0, 4), Point::new(13, 4)), None);
        // zero-length degenerate
        assert_eq!(oracle.l_connection(a, a), Some(a));
        // an endpoint strictly inside an obstacle short-circuits to None
        assert_eq!(oracle.l_connection(Point::new(3, 5), Point::new(3, 20)), None);
        assert_eq!(oracle.l_connection(Point::new(0, 0), Point::new(10, 3)), None);
    }

    #[test]
    fn segment_clear_agrees_with_naive_scan() {
        // Pin the unified semantics: the oracle's indexed segment_clear must
        // answer exactly like ObstacleSet::segment_clear, including segments
        // that start strictly inside an obstacle (invisible to a bare ray
        // shot, the old oracle-local implementation's blind spot).
        let w = uniform_disjoint(12, 23);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let bbox = w.obstacles.bbox().unwrap();
        let step = ((bbox.width().max(bbox.height()) / 12).max(1)) as usize;
        let mut probes = Vec::new();
        let mut x = bbox.xmin - 3;
        while x <= bbox.xmax + 3 {
            let mut y = bbox.ymin - 3;
            while y <= bbox.ymax + 3 {
                probes.push(Point::new(x, y));
                y += step as i64;
            }
            x += step as i64;
        }
        for &a in &probes {
            for &b in &probes {
                if a.x != b.x && a.y != b.y {
                    continue;
                }
                assert_eq!(oracle.segment_clear(a, b), w.obstacles.segment_clear(a, b), "{a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn identical_and_simple_pairs() {
        let obs = ObstacleSet::new(vec![Rect::new(5, 5, 8, 8)]);
        let oracle = PathLengthOracle::build(&obs);
        assert_eq!(oracle.distance(Point::new(1, 1), Point::new(1, 1)), 0);
        assert_eq!(oracle.distance(Point::new(0, 0), Point::new(4, 9)), 13);
        // around the square: opposite edge midpoints
        assert_eq!(oracle.distance(Point::new(4, 6), Point::new(9, 6)), 5 + 2);
        // corner to corner along the boundary
        assert_eq!(oracle.distance(Point::new(5, 5), Point::new(8, 8)), 6);
    }
}
