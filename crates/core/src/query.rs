//! Section 6.4: the query oracle.
//!
//! * A length query between two *obstacle vertices* is one lookup in the
//!   `V_R`-to-`V_R` matrix — `O(1)`.
//! * For arbitrary query points the paper augments the structure with the
//!   precomputed escape paths `X(v)` of every vertex (Section 6.1) and two
//!   ray-shooting subdivisions.  A query `(p, q)` with `q ∈ V_R` then reduces
//!   to: shoot a horizontal and a vertical ray from `p` towards `q`; if the
//!   ray reaches the escape staircase of `q` that points into `p`'s quadrant
//!   before any obstacle, the answer is `d(p, q)`; otherwise the answer goes
//!   through one of the two endpoints of the first obstacle edge hit
//!   (argument from [11], restated in Section 6.4).  Taking the minimum of
//!   the horizontal and the vertical reduction removes the need to test which
//!   side of the staircase `p` lies on: for the correct side the reduction is
//!   exact and for the other side it still produces a valid (not shorter)
//!   path length.
//! * When both endpoints are arbitrary, the escape staircase of `q` is
//!   assembled on the fly from one ray shot plus the precomputed staircase of
//!   an obstacle corner, and the edge-endpoint distances recurse into the
//!   one-arbitrary-endpoint case (recursion depth at most two).

use crate::apsp::VertexApsp;
use crate::instance::Instance;
use crate::trace::{escape_path, EscapeKind};
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, Coord, Dir, Dist, ObstacleSet, Point, Rect, StairRegion, INF};
use std::collections::HashMap;

/// Far-away sentinel used to extend clipped escape staircases back to
/// "unbounded" ones.
const FAR: Coord = 1 << 40;

/// The query data structure of Section 6.4.
pub struct PathLengthOracle {
    obstacles: ObstacleSet,
    apsp: VertexApsp,
    index: ShootIndex,
    /// `chains[k][v]` — escape staircase of vertex `v` into quadrant `k`
    /// (0 = NE, 1 = NW, 2 = SE, 3 = SW), extended to infinity.
    chains: [Vec<Chain>; 4],
    vertex_id: HashMap<Point, usize>,
}

pub(crate) fn quadrant_of(from: Point, to: Point) -> usize {
    // quadrant of `to` relative to `from`
    match (to.x >= from.x, to.y >= from.y) {
        (true, true) => 0,   // NE
        (false, true) => 1,  // NW
        (true, false) => 2,  // SE
        (false, false) => 3, // SW
    }
}

fn kind_for_quadrant(q: usize) -> EscapeKind {
    match q {
        0 => EscapeKind::NE,
        1 => EscapeKind::NW,
        2 => EscapeKind::SE,
        _ => EscapeKind::SW,
    }
}

/// Extend a clipped escape path back to an unbounded staircase by prolonging
/// its final segment to a far sentinel.
fn extend_to_far(chain: &Chain, primary: Dir) -> Chain {
    let mut pts = chain.points().to_vec();
    let last = *pts.last().unwrap();
    let far_point = match primary {
        Dir::North => Point::new(last.x, FAR),
        Dir::South => Point::new(last.x, -FAR),
        Dir::East => Point::new(FAR, last.y),
        Dir::West => Point::new(-FAR, last.y),
    };
    if far_point != last {
        pts.push(far_point);
    }
    Chain::new(pts)
}

impl PathLengthOracle {
    /// Build the oracle: the vertex matrix, the ray-shooting index and the
    /// `4 · 4n` precomputed escape staircases of Section 6.1.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        Self::from_apsp(obstacles, VertexApsp::build(obstacles))
    }

    /// Build from an existing vertex matrix.
    pub fn from_apsp(obstacles: &ObstacleSet, apsp: VertexApsp) -> Self {
        let index = ShootIndex::build(obstacles);
        let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(8);
        let region = StairRegion::from_rect(bbox);
        let vertices = apsp.vertices().to_vec();
        let build_chains = |kind: EscapeKind| -> Vec<Chain> {
            vertices
                .iter()
                .map(|&v| extend_to_far(&escape_path(obstacles, &index, &region, v, kind), kind.primary))
                .collect()
        };
        let chains = [
            build_chains(EscapeKind::NE),
            build_chains(EscapeKind::NW),
            build_chains(EscapeKind::SE),
            build_chains(EscapeKind::SW),
        ];
        let mut vertex_id = HashMap::with_capacity(vertices.len());
        for (i, &p) in vertices.iter().enumerate() {
            vertex_id.entry(p).or_insert(i);
        }
        PathLengthOracle { obstacles: obstacles.clone(), apsp, index, chains, vertex_id }
    }

    /// Convenience constructor from an [`Instance`].
    pub fn build_for(instance: &Instance) -> Self {
        Self::build(instance.obstacles())
    }

    /// The underlying vertex matrix.
    pub fn apsp(&self) -> &VertexApsp {
        &self.apsp
    }

    /// Number of obstacles.
    pub fn n(&self) -> usize {
        self.obstacles.len()
    }

    /// The obstacle set the oracle was built for.
    pub fn obstacles(&self) -> &ObstacleSet {
        &self.obstacles
    }

    /// The precomputed escape staircase of vertex `vertex_index` into
    /// quadrant `quadrant` (0 = NE, 1 = NW, 2 = SE, 3 = SW) — the `X(v)`
    /// paths of Section 6.1, reused by the shortest-path trees of Section 8.
    pub fn escape_chain(&self, vertex_index: usize, quadrant: usize) -> &Chain {
        &self.chains[quadrant][vertex_index]
    }

    /// Shared ray-shooting index.
    pub(crate) fn shoot_index(&self) -> &ShootIndex {
        &self.index
    }

    /// If some one-bend (L-shaped) path between `a` and `b` is clear of
    /// obstacle interiors, return its bend point.
    pub fn l_connection(&self, a: Point, b: Point) -> Option<Point> {
        [Point::new(b.x, a.y), Point::new(a.x, b.y)]
            .into_iter()
            .find(|&bend| self.segment_clear(a, bend) && self.segment_clear(bend, b))
    }

    fn segment_clear(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let dir = if a.x == b.x {
            if b.y > a.y {
                Dir::North
            } else {
                Dir::South
            }
        } else if b.x > a.x {
            Dir::East
        } else {
            Dir::West
        };
        match self.index.shoot(a, dir) {
            None => true,
            Some(hit) => hit.distance_from(a) >= a.l1(b),
        }
    }

    /// O(1) query for two obstacle vertices.  `None` if either point is not
    /// an obstacle vertex.
    pub fn vertex_distance(&self, a: Point, b: Point) -> Option<Dist> {
        if self.vertex_id.contains_key(&a) && self.vertex_id.contains_key(&b) {
            Some(self.apsp.distance_between(a, b))
        } else {
            None
        }
    }

    /// Length of a shortest obstacle-avoiding path between two arbitrary
    /// points (`INF` if either lies strictly inside an obstacle).
    pub fn distance(&self, p: Point, q: Point) -> Dist {
        if self.obstacles.containing_obstacle(p).is_some() || self.obstacles.containing_obstacle(q).is_some() {
            return INF;
        }
        self.distance_clear(p, q)
    }

    /// [`PathLengthOracle::distance`] without the O(n) containment scan, for
    /// callers (the `Router`) that have already verified neither endpoint
    /// lies strictly inside an obstacle.
    pub(crate) fn distance_clear(&self, p: Point, q: Point) -> Dist {
        if p == q {
            return 0;
        }
        if let Some(&qi) = self.vertex_id.get(&q) {
            if self.vertex_id.contains_key(&p) {
                return self.apsp.distance_between(p, q);
            }
            return self.distance_to_vertex(p, qi);
        }
        if let Some(&pi) = self.vertex_id.get(&p) {
            return self.distance_to_vertex(q, pi);
        }
        // both arbitrary: assemble q's escape staircase on the fly and reduce
        let chain = self.on_the_fly_chain(q, quadrant_of(q, p));
        self.reduce(p, q, &chain, |v| self.distance_to_vertex(q, self.vertex_id[&v]))
    }

    /// Distance from an arbitrary point `p` to vertex number `qi`.
    fn distance_to_vertex(&self, p: Point, qi: usize) -> Dist {
        let q = self.apsp.vertices()[qi];
        if p == q {
            return 0;
        }
        let chain = &self.chains[quadrant_of(q, p)][qi];
        self.reduce(p, q, chain, |v| self.apsp.distance_between(v, q))
    }

    /// The core reduction of Section 6.4: from `p`, shoot towards `q` both
    /// horizontally and vertically; each shot yields either the direct
    /// distance (if the staircase `chain` emanating from `q` is reached
    /// before any obstacle) or a detour through the endpoints of the blocking
    /// edge, whose distances to `q` are supplied by `to_q`.
    fn reduce(&self, p: Point, q: Point, chain: &Chain, to_q: impl Fn(Point) -> Dist) -> Dist {
        let mut best = INF;
        // Horizontal shot.
        let hdir = if q.x <= p.x { Dir::West } else { Dir::East };
        best = best.min(self.one_shot(p, q, chain, hdir, &to_q));
        // Vertical shot.
        let vdir = if q.y <= p.y { Dir::South } else { Dir::North };
        best = best.min(self.one_shot(p, q, chain, vdir, &to_q));
        best
    }

    fn one_shot(&self, p: Point, q: Point, chain: &Chain, dir: Dir, to_q: &impl Fn(Point) -> Dist) -> Dist {
        let hit = self.index.shoot(p, dir);
        let obstacle_distance = hit.map(|h| h.distance_from(p));
        // distance along the ray at which the chain is first met
        let chain_distance: Option<Dist> = match dir {
            Dir::West | Dir::East => chain.intersect_horizontal(p.y).and_then(|(lo, hi)| {
                if dir == Dir::West {
                    if hi <= p.x {
                        Some(p.x - hi)
                    } else if lo <= p.x {
                        Some(0)
                    } else {
                        None
                    }
                } else if lo >= p.x {
                    Some(lo - p.x)
                } else if hi >= p.x {
                    Some(0)
                } else {
                    None
                }
            }),
            Dir::North | Dir::South => chain.intersect_vertical(p.x).and_then(|(lo, hi)| {
                if dir == Dir::South {
                    if hi <= p.y {
                        Some(p.y - hi)
                    } else if lo <= p.y {
                        Some(0)
                    } else {
                        None
                    }
                } else if lo >= p.y {
                    Some(lo - p.y)
                } else if hi >= p.y {
                    Some(0)
                } else {
                    None
                }
            }),
        };
        match (chain_distance, obstacle_distance) {
            (Some(cd), od) if od.is_none_or(|o| cd <= o) => p.l1(q),
            (_, Some(_)) => {
                let hitinfo = hit.unwrap();
                let r = self.obstacles.rect(hitinfo.rect);
                let (v1, v2) = match dir {
                    Dir::West => (r.lr(), r.ur()),
                    Dir::East => (r.ll(), r.ul()),
                    Dir::South => (r.ul(), r.ur()),
                    Dir::North => (r.ll(), r.lr()),
                };
                let mut best = INF;
                for v in [v1, v2] {
                    let tail = to_q(v);
                    if tail < INF {
                        best = best.min(p.l1(v) + tail);
                    }
                }
                best
            }
            _ => INF,
        }
    }

    /// Assemble the escape staircase of an arbitrary point `q` into quadrant
    /// `quad`: shoot the primary direction once; if an obstacle is hit, walk
    /// along it to the corner and continue with that corner's precomputed
    /// staircase.
    fn on_the_fly_chain(&self, q: Point, quad: usize) -> Chain {
        let kind = kind_for_quadrant(quad);
        match self.index.shoot(q, kind.primary) {
            None => extend_to_far(&Chain::singleton(q), kind.primary),
            Some(hit) => {
                let r = self.obstacles.rect(hit.rect);
                let corner = r.corner(
                    if kind.primary.is_vertical() { kind.primary.opposite() } else { kind.policy },
                    if kind.primary.is_vertical() { kind.policy } else { kind.primary.opposite() },
                );
                let prefix = Chain::new(vec![q, hit.point, corner]);
                let corner_chain = &self.chains[quad][self.vertex_id[&corner]];
                prefix.concat(corner_chain)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_geom::hanan::ground_truth_distance;
    use rsp_workload::{query_pairs, uniform_disjoint};

    #[test]
    fn vertex_queries_are_exact() {
        let w = uniform_disjoint(10, 3);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let verts = w.obstacles.vertices();
        for i in (0..verts.len()).step_by(3) {
            for j in (0..verts.len()).step_by(5) {
                let expect = ground_truth_distance(&w.obstacles, verts[i], verts[j]);
                assert_eq!(oracle.vertex_distance(verts[i], verts[j]), Some(expect));
                assert_eq!(oracle.distance(verts[i], verts[j]), expect);
            }
        }
    }

    #[test]
    fn arbitrary_point_queries_match_ground_truth() {
        for seed in 0..4 {
            let w = uniform_disjoint(8, seed);
            let oracle = PathLengthOracle::build(&w.obstacles);
            for (a, b) in query_pairs(&w.obstacles, 40, false, seed + 100) {
                let expect = ground_truth_distance(&w.obstacles, a, b);
                assert_eq!(oracle.distance(a, b), expect, "seed {seed}: {:?} -> {:?}", a, b);
            }
        }
    }

    #[test]
    fn mixed_vertex_and_arbitrary_queries() {
        let w = uniform_disjoint(9, 11);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let verts = w.obstacles.vertices();
        for (a, _) in query_pairs(&w.obstacles, 25, false, 5) {
            for &v in verts.iter().step_by(7) {
                let expect = ground_truth_distance(&w.obstacles, a, v);
                assert_eq!(oracle.distance(a, v), expect, "{:?} -> {:?}", a, v);
                assert_eq!(oracle.distance(v, a), expect, "{:?} -> {:?}", v, a);
            }
        }
    }

    #[test]
    fn query_inside_obstacle_is_inf() {
        let obs = ObstacleSet::new(vec![Rect::new(0, 0, 10, 10)]);
        let oracle = PathLengthOracle::build(&obs);
        assert_eq!(oracle.distance(Point::new(5, 5), Point::new(20, 20)), INF);
        assert_eq!(oracle.vertex_distance(Point::new(5, 5), Point::new(0, 0)), None);
    }

    #[test]
    fn identical_and_simple_pairs() {
        let obs = ObstacleSet::new(vec![Rect::new(5, 5, 8, 8)]);
        let oracle = PathLengthOracle::build(&obs);
        assert_eq!(oracle.distance(Point::new(1, 1), Point::new(1, 1)), 0);
        assert_eq!(oracle.distance(Point::new(0, 0), Point::new(4, 9)), 13);
        // around the square: opposite edge midpoints
        assert_eq!(oracle.distance(Point::new(4, 6), Point::new(9, 6)), 5 + 2);
        // corner to corner along the boundary
        assert_eq!(oracle.distance(Point::new(5, 5), Point::new(8, 8)), 6);
    }
}
