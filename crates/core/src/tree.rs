//! Section 6.1: the recursion tree `T`.
//!
//! The paper's Section 6 keeps the whole divide-and-conquer recursion tree
//! around: every node stores its obstacle subset, its region, its separator
//! and the per-node path-length matrices, and the `V_R`-to-`V_R` computation
//! pipelines "flows" through this tree.  Our `V_R`-to-`V_R` construction uses
//! the source-parallel schedule (see `apsp`, DESIGN.md §3 item 4), so the
//! tree is not needed for correctness; this module materialises it anyway for
//! inspection, statistics and the figure gallery (F3): node sizes, separator
//! chains, balance factors and depths.

use crate::separator::find_separator;
use rsp_geom::rayshoot::ShootIndex;
use rsp_geom::{Chain, ObstacleSet, Rect, StairRegion};

/// One node of the recursion tree.
pub struct RecursionNode {
    /// Obstacle ids (into the root obstacle set) handled by this node.
    pub obstacle_ids: Vec<usize>,
    /// The node's region.
    pub region: StairRegion,
    /// The separator chain used to split this node (`None` for leaves).
    pub separator: Option<Chain>,
    /// Children indices in [`RecursionTree::nodes`].
    pub children: Vec<usize>,
    /// Depth of the node (root = 0).
    pub depth: usize,
}

/// The materialised recursion tree of Section 6.1.
pub struct RecursionTree {
    /// All nodes, root first, children after their parent.
    pub nodes: Vec<RecursionNode>,
}

impl RecursionTree {
    /// Build the tree for an obstacle set inside its expanded bounding box.
    pub fn build(obstacles: &ObstacleSet) -> Self {
        let bbox = obstacles.bbox().unwrap_or(Rect::new(0, 0, 1, 1)).expand(4);
        let region = StairRegion::from_rect(bbox);
        let mut tree = RecursionTree { nodes: Vec::new() };
        let all_ids: Vec<usize> = (0..obstacles.len()).collect();
        tree.grow(obstacles, all_ids, region, 0);
        tree
    }

    fn grow(&mut self, obstacles: &ObstacleSet, ids: Vec<usize>, region: StairRegion, depth: usize) -> usize {
        let my_index = self.nodes.len();
        self.nodes.push(RecursionNode {
            obstacle_ids: ids.clone(),
            region: region.clone(),
            separator: None,
            children: Vec::new(),
            depth,
        });
        if ids.len() < 2 {
            return my_index;
        }
        let subset = obstacles.subset(&ids);
        let index = ShootIndex::build(&subset);
        let sep = match find_separator(&subset, &index, &region) {
            Some(s) => s,
            None => return my_index,
        };
        let (piece_a, piece_b) = match region.try_split_by_chain(&sep.chain) {
            Some(pieces) => pieces,
            None => return my_index,
        };
        let above_ids: Vec<usize> = sep.above.iter().map(|&i| ids[i]).collect();
        let below_ids: Vec<usize> = sep.below.iter().map(|&i| ids[i]).collect();
        let above_obs = obstacles.subset(&above_ids);
        let (region_above, region_below) = {
            let a_count = above_obs.iter().filter(|r| piece_a.contains_rect(r)).count();
            let b_count = above_obs.iter().filter(|r| piece_b.contains_rect(r)).count();
            if a_count >= b_count {
                (piece_a, piece_b)
            } else {
                (piece_b, piece_a)
            }
        };
        self.nodes[my_index].separator = Some(sep.chain.clone());
        let left = self.grow(obstacles, above_ids, region_above, depth + 1);
        let right = self.grow(obstacles, below_ids, region_below, depth + 1);
        self.nodes[my_index].children = vec![left, right];
        my_index
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Worst balance factor over internal nodes: `max_child / node_size`.
    /// Theorem 2 guarantees at most `7/8` for the canonical separator.
    pub fn worst_balance(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| !n.children.is_empty())
            .map(|n| {
                let largest = n.children.iter().map(|&c| self.nodes[c].obstacle_ids.len()).max().unwrap_or(0);
                largest as f64 / n.obstacle_ids.len() as f64
            })
            .fold(0.0, f64::max)
    }

    /// A compact textual summary (used by the figure gallery, F3).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "{:indent$}node {i}: |R|={}, |Q|={} vertices, sep={} segments, depth {}\n",
                "",
                node.obstacle_ids.len(),
                node.region.num_vertices(),
                node.separator.as_ref().map_or(0, |c| c.num_segments()),
                node.depth,
                indent = 2 * node.depth
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workload::uniform_disjoint;

    #[test]
    fn tree_covers_all_obstacles_and_is_balanced() {
        let w = uniform_disjoint(40, 13);
        let tree = RecursionTree::build(&w.obstacles);
        assert!(!tree.is_empty());
        assert_eq!(tree.nodes[0].obstacle_ids.len(), 40);
        // every leaf holds at least one obstacle and leaves partition the set
        let leaf_total: usize = tree.nodes.iter().filter(|n| n.children.is_empty()).map(|n| n.obstacle_ids.len()).sum();
        assert_eq!(leaf_total, 40);
        // balance no worse than Theorem 2's bound (with a little slack for
        // the clipped-region fallback separators)
        assert!(tree.worst_balance() <= 0.95, "balance {}", tree.worst_balance());
        assert!(tree.height() >= 3);
        assert!(tree.summary().contains("node 0"));
    }

    #[test]
    fn tiny_trees() {
        let w = uniform_disjoint(1, 1);
        let tree = RecursionTree::build(&w.obstacles);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 0);
    }
}
