//! Batch query planning: canonicalise, group, deduplicate.
//!
//! A batch against an implicit [`DistanceStore`](crate::store::DistanceStore)
//! is only as fast as the number of single-source sweeps it triggers.  A
//! naive per-query loop under eviction pressure re-sweeps a row *per query*
//! (the E13 cold path); the planner instead rewrites a batch into:
//!
//! 1. **Canonical rows** — the rectilinear metric is symmetric, so `(u, v)`
//!    and `(v, u)` are answered by the single row `min(u, v)`.  Each
//!    unordered pair names exactly one *providing row*.
//! 2. **Row-major order** — lookups are grouped per providing row and the
//!    distinct rows listed in ascending order, so the store can materialise
//!    (and pin) each row exactly once for the whole batch, and the lazy
//!    multi-row kernels downstream see adjacent rows together.
//! 3. **Deduplication** — identical queries collapse to one lookup whose
//!    result is scattered back to every originating batch slot.
//!
//! The planner is pure bookkeeping over indices: it never touches the store,
//! so its output is trivially deterministic and the answers it scatters are
//! bitwise-identical to per-call answers by construction.

use rsp_geom::Point;
use std::collections::HashMap;

/// One deduplicated vertex-pair lookup: read `row`'s entry at `col` and
/// scatter it to every listed output slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedLookup {
    /// The providing (canonical) row: `min(u, v)` of the original pair.
    pub row: usize,
    /// The column to read: `max(u, v)` of the original pair.
    pub col: usize,
    /// Output slots of every batch query this lookup answers.
    pub slots: Vec<usize>,
}

/// A planned vertex-pair batch: the distinct providing rows (ascending) and
/// the deduplicated lookups in row-major order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexBatchPlan {
    /// Distinct providing rows, ascending — the working set to materialise
    /// (and pin) once for the batch.
    pub rows: Vec<usize>,
    /// Deduplicated lookups ordered row-major (by `(row, col)`).
    pub lookups: Vec<PlannedLookup>,
}

impl VertexBatchPlan {
    /// Total batch queries this plan answers (sum of slot counts).
    pub fn query_count(&self) -> usize {
        self.lookups.iter().map(|l| l.slots.len()).sum()
    }
}

/// Plan a batch of vertex-index pairs.  Each item is `(u, v, slot)`: answer
/// `d(u, v)` into output slot `slot`.  See the module docs for what the
/// plan guarantees.
pub fn plan_vertex_pairs(items: &[(usize, usize, usize)]) -> VertexBatchPlan {
    let mut groups: HashMap<(usize, usize), Vec<usize>> = HashMap::with_capacity(items.len());
    for &(u, v, slot) in items {
        let key = if u <= v { (u, v) } else { (v, u) };
        groups.entry(key).or_default().push(slot);
    }
    let mut lookups: Vec<PlannedLookup> =
        groups.into_iter().map(|((row, col), slots)| PlannedLookup { row, col, slots }).collect();
    lookups.sort_unstable_by_key(|l| (l.row, l.col));
    let mut rows: Vec<usize> = lookups.iter().map(|l| l.row).collect();
    rows.dedup(); // already sorted: row-major lookup order
    VertexBatchPlan { rows, lookups }
}

/// Identical point pairs of a batch, collapsed: `unique[g]` is evaluated
/// once and its answer scattered to every slot in `slots[g]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DedupedPairs {
    /// The distinct `(src, dst)` pairs, in first-appearance order.
    pub unique: Vec<(Point, Point)>,
    /// `slots[g]`: the output slots answered by `unique[g]`.
    pub slots: Vec<Vec<usize>>,
}

/// Deduplicate the selected `slots` of a point-pair batch by exact
/// `(src, dst)` equality.  (Deliberately *not* by unordered pair: arbitrary
/// point queries go through the ray-shooting reduction, and only identical
/// inputs are guaranteed bit-identical outputs without invoking symmetry.)
pub fn dedupe_point_pairs(pairs: &[(Point, Point)], selected: &[usize]) -> DedupedPairs {
    let mut index: HashMap<(Point, Point), usize> = HashMap::with_capacity(selected.len());
    let mut out = DedupedPairs::default();
    for &slot in selected {
        let pair = pairs[slot];
        match index.get(&pair) {
            Some(&g) => out.slots[g].push(slot),
            None => {
                index.insert(pair, out.unique.len());
                out.unique.push(pair);
                out.slots.push(vec![slot]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_duplicate_pairs_collapse_to_one_row_major_lookup() {
        // (7,2), (2,7) and a duplicate (7,2) are one lookup on row 2; the
        // diagonal (5,5) is its own row; everything comes out row-major.
        let items = [(7, 2, 0), (5, 5, 1), (2, 7, 2), (7, 2, 3), (9, 1, 4)];
        let plan = plan_vertex_pairs(&items);
        assert_eq!(plan.rows, vec![1, 2, 5]);
        assert_eq!(plan.query_count(), 5);
        assert_eq!(
            plan.lookups,
            vec![
                PlannedLookup { row: 1, col: 9, slots: vec![4] },
                PlannedLookup { row: 2, col: 7, slots: vec![0, 2, 3] },
                PlannedLookup { row: 5, col: 5, slots: vec![1] },
            ]
        );
    }

    #[test]
    fn empty_batches_plan_to_nothing() {
        let plan = plan_vertex_pairs(&[]);
        assert!(plan.rows.is_empty() && plan.lookups.is_empty());
        assert_eq!(plan.query_count(), 0);
        assert_eq!(dedupe_point_pairs(&[], &[]), DedupedPairs::default());
    }

    #[test]
    fn point_pair_dedupe_is_exact_and_order_preserving() {
        let a = Point::new(0, 0);
        let b = Point::new(5, 3);
        let c = Point::new(2, 2);
        let pairs = [(a, b), (b, a), (a, b), (c, c), (a, b)];
        let deduped = dedupe_point_pairs(&pairs, &[0, 1, 2, 3, 4]);
        // (b, a) is NOT merged with (a, b): dedupe is by ordered pair.
        assert_eq!(deduped.unique, vec![(a, b), (b, a), (c, c)]);
        assert_eq!(deduped.slots, vec![vec![0, 2, 4], vec![1], vec![3]]);
        // Subset selection only considers the chosen slots.
        let partial = dedupe_point_pairs(&pairs, &[4, 1]);
        assert_eq!(partial.unique, vec![(a, b), (b, a)]);
        assert_eq!(partial.slots, vec![vec![4], vec![1]]);
    }
}
