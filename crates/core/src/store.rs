//! The distance storage layer behind [`VertexApsp`](crate::apsp::VertexApsp):
//! a pluggable [`DistanceStore`] with a dense and an implicit backend.
//!
//! The dense backend is the classic trade of the paper — pay `O(n^2)` memory
//! once, answer every vertex-pair query with one array read.  At `n = 2048`
//! obstacles that matrix is `(4n)^2` entries ≈ 512 MiB, which walls off
//! exactly the scenes where the `O(n^2)`-work construction would shine.
//!
//! The implicit backend never materialises the matrix.  It keeps the row
//! *generator* instead — the Section 9 single-source engine (or the
//! Hanan-grid Dijkstra for the baseline comparator) — and materialises
//! distance rows on demand into a byte-budgeted LRU
//! [`BlockCache`](rsp_monge::BlockCache).  A row is the natural block
//! granularity here: every generator is a whole-source sweep, so a single
//! entry costs exactly as much as its row, and caching the row makes the
//! follow-up queries of a scan free.
//!
//! **Bitwise equality is by construction**: both backends obtain row `i` by
//! calling the *same* per-source routine on the *same* source vertex, so an
//! implicit store returns bit-for-bit the numbers the dense matrix holds —
//! independent of materialisation order, eviction history or thread count.
//! (The lazy SMAWK product machinery of
//! [`ImplicitMongeMatrix`](rsp_monge::ImplicitMongeMatrix) plays the
//! analogous role one level down, for boundary-matrix blocks; Lemma 1's
//! Monge guarantee holds for boundary portions of convex clear regions, not
//! for the scattered vertex set `V_R`, which is why the vertex store caches
//! generator rows rather than SMAWK minima.)

use crate::seq::SingleSourceEngine;
use rsp_geom::hanan::HananGrid;
use rsp_geom::{Dist, ObstacleSet, Point};
use rsp_monge::{BlockCache, MinPlusMatrix};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

const ENTRY_BYTES: usize = std::mem::size_of::<Dist>();

/// Obstacle count at which [`StoreKind::Auto`] switches from the dense
/// matrix to the implicit store (the dense matrix crosses 32 MiB here).
pub const IMPLICIT_AUTO_THRESHOLD: usize = 512;

/// Bytes the dense `V_R`-to-`V_R` matrix costs for `n` obstacles
/// (`(4n)^2` entries), computed without building anything.
pub fn dense_bytes_for(n_obstacles: usize) -> usize {
    let dim = 4 * n_obstacles;
    dim * dim * ENTRY_BYTES
}

/// The default implicit row budget for `n` obstacles: 1/16 of the dense
/// matrix (room for `dim/16` resident rows), floored at 1 MiB so small
/// scenes never thrash.
pub fn default_budget_bytes(n_obstacles: usize) -> usize {
    (dense_bytes_for(n_obstacles) / 16).max(1 << 20)
}

/// Which distance storage backend a router/oracle uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreKind {
    /// Pick by scene size: [`StoreKind::Dense`] below
    /// [`IMPLICIT_AUTO_THRESHOLD`] obstacles, otherwise
    /// [`StoreKind::Implicit`] with [`default_budget_bytes`].
    #[default]
    Auto,
    /// The full `(4n) x (4n)` matrix: `O(n^2)` bytes, lock-free and
    /// allocation-free `O(1)` reads.
    Dense,
    /// Rows materialised on demand into a byte-budgeted LRU cache:
    /// `O(budget)` bytes, `O(1)` reads for resident rows, one single-source
    /// sweep per miss.
    Implicit {
        /// Bytes the resident rows may occupy (a budget below one row keeps
        /// exactly one row and recomputes on every miss — slow but correct).
        budget_bytes: usize,
    },
}

impl StoreKind {
    /// Resolve [`StoreKind::Auto`] for a scene of `n_obstacles`; the other
    /// variants pass through unchanged.
    pub fn resolve(self, n_obstacles: usize) -> StoreKind {
        match self {
            StoreKind::Auto => {
                if n_obstacles >= IMPLICIT_AUTO_THRESHOLD {
                    StoreKind::Implicit { budget_bytes: default_budget_bytes(n_obstacles) }
                } else {
                    StoreKind::Dense
                }
            }
            other => other,
        }
    }
}

/// Memory accounting snapshot of a [`DistanceStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes the store currently holds resident (the whole matrix for the
    /// dense backend, the cached rows for the implicit one).
    pub resident_bytes: usize,
    /// Bytes a dense matrix of the same dimensions costs (the baseline the
    /// implicit backend is saving against).
    pub dense_bytes: usize,
    /// The configured byte budget (equals `dense_bytes` for the dense
    /// backend, which has no eviction).
    pub budget_bytes: usize,
    /// Row requests served from a resident row (implicit backend only).
    pub row_hits: u64,
    /// Row requests that ran a single-source sweep (implicit backend only).
    pub row_misses: u64,
    /// Rows evicted to respect the budget (implicit backend only).
    pub row_evictions: u64,
    /// Bytes currently pinned against eviction by an in-flight batch plan
    /// (implicit backend only; see [`ImplicitStore::pin_rows`]).
    pub pinned_bytes: usize,
}

/// How the implicit store generates a distance row for source `i`.
enum RowProvider {
    /// The Section 9 single-source engine — the same routine the dense
    /// builders fan out over, so rows are bitwise-identical to theirs.
    Sweep(SingleSourceEngine),
    /// Hanan-grid Dijkstra per source — the same routine
    /// [`dijkstra_sssp_matrix`](crate::baseline::dijkstra_sssp_matrix) fans
    /// out over, for the baseline-comparator engine.
    Hanan { grid: HananGrid, vertices: Vec<Point> },
}

impl RowProvider {
    fn row(&self, i: usize) -> Vec<Dist> {
        match self {
            RowProvider::Sweep(engine) => engine.distances_from(engine.vertices()[i]),
            RowProvider::Hanan { grid, vertices } => grid.distances_to(vertices[i], vertices),
        }
    }
}

/// A [`RowProvider`] whose skeleton (the four case-transformed ray-shooting
/// views, or the Hanan grid) is built on the first *sweep*, not at store
/// construction.
///
/// The skeleton only matters on a row miss, and its build is the dominant
/// fixed cost of an implicit store at large `n`.  Deferring it keeps a fresh
/// store's construction O(1), and — the case it exists for — lets a
/// delta-carried store ([`DistanceStore::implicit_delta`]) whose first batch
/// is answered entirely from carried rows skip the skeleton build outright,
/// which is what makes edit→first-query genuinely sublinear.  Values are
/// unaffected: whenever a sweep does run, it runs the same routine on the
/// same scene.
struct LazyProvider {
    obstacles: Arc<ObstacleSet>,
    hanan: bool,
    cell: OnceLock<RowProvider>,
}

impl LazyProvider {
    fn deferred(obstacles: Arc<ObstacleSet>, hanan: bool) -> Self {
        LazyProvider { obstacles, hanan, cell: OnceLock::new() }
    }

    /// The built provider.  Callers that fan sweeps out over rayon force
    /// this *before* going parallel, so the one-time build never runs under
    /// a worker that peers would have to block on.
    fn force(&self) -> &RowProvider {
        self.cell.get_or_init(|| {
            if self.hanan {
                let vertices = self.obstacles.vertices();
                let grid = HananGrid::build(&self.obstacles, &vertices);
                RowProvider::Hanan { grid, vertices }
            } else {
                RowProvider::Sweep(SingleSourceEngine::new(&self.obstacles))
            }
        })
    }

    fn row(&self, i: usize) -> Vec<Dist> {
        self.force().row(i)
    }
}

/// The implicit backend: a row generator plus a byte-budgeted LRU of
/// materialised rows.
pub struct ImplicitStore {
    provider: LazyProvider,
    dim: usize,
    cache: Mutex<BlockCache>,
}

impl ImplicitStore {
    fn new(provider: LazyProvider, dim: usize, budget_bytes: usize) -> Self {
        ImplicitStore { provider, dim, cache: Mutex::new(BlockCache::new(budget_bytes)) }
    }

    /// Row `i` (all distances from source vertex `i`), materialised on first
    /// use and resident while the byte budget allows.
    pub fn row(&self, i: usize) -> Arc<[Dist]> {
        debug_assert!(i < self.dim, "row out of range");
        let mut cache = self.cache.lock().expect("distance row cache poisoned");
        cache.get_or_insert_with(i as u64, || self.provider.row(i))
    }

    /// Entry `(i, j)`, served from *either* endpoint's row.
    ///
    /// The rectilinear metric is symmetric (`d(i, j) == d(j, i)`, a property
    /// the store test suite pins bitwise), so a resident row `j` answers a
    /// query about row `i` for free.  Only when neither row is resident does
    /// a sweep run — for the *canonical* row `min(i, j)`, so `(u, v)` and
    /// `(v, u)` always materialise the same row and a batch planner can
    /// count on one sweep per unordered pair.  Exactly one hit or miss is
    /// counted per call, as before.
    pub fn distance(&self, i: usize, j: usize) -> Dist {
        debug_assert!(i < self.dim && j < self.dim, "index out of range");
        let mut cache = self.cache.lock().expect("distance row cache poisoned");
        if let Some(row) = cache.peek(i as u64) {
            return row[j];
        }
        if i != j {
            if let Some(row) = cache.peek(j as u64) {
                return row[i];
            }
        }
        let (canon, other) = if i <= j { (i, j) } else { (j, i) };
        cache.get_or_insert_with(canon as u64, || self.provider.row(canon))[other]
    }

    /// Matrix dimension (`4n`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Materialise and pin a working set of rows for a batch's lifetime.
    ///
    /// Resident rows are reused (one hit each); the missing ones are swept
    /// in parallel *outside* the cache lock, then inserted (one miss each) —
    /// so a batch over `r` distinct rows costs at most `r` sweeps no matter
    /// how many queries it answers.  Rows are pinned against eviction only
    /// while the pinned total stays within the byte budget; rows past that
    /// point are held alive by the guard's own `Arc` handles instead, which
    /// keeps the answers correct (and still one-sweep) under arbitrarily
    /// small budgets at the price of letting the cache churn them.  Dropping
    /// the guard unpins everything and lets deferred evictions run.
    pub fn pin_rows(&self, rows: &[usize]) -> PinnedRows<'_> {
        use rayon::prelude::*;
        let mut distinct: Vec<usize> = rows.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if let Some(&max) = distinct.last() {
            assert!(max < self.dim, "row out of range");
        }
        let row_bytes = self.dim * ENTRY_BYTES;
        let mut handles: HashMap<usize, Arc<[Dist]>> = HashMap::with_capacity(distinct.len());
        let mut pinned: Vec<usize> = Vec::with_capacity(distinct.len());
        let missing: Vec<usize> = {
            let mut cache = self.cache.lock().expect("distance row cache poisoned");
            let budget = cache.stats().budget_bytes;
            distinct
                .into_iter()
                .filter(|&i| match cache.peek(i as u64) {
                    Some(row) => {
                        if cache.pinned_bytes() + row_bytes <= budget && cache.pin(i as u64) {
                            pinned.push(i);
                        }
                        handles.insert(i, row);
                        false
                    }
                    None => true,
                })
                .collect()
        };
        // Sweeps run unlocked and in parallel: they dominate cold-batch cost
        // and must not serialise behind (or block) concurrent readers.  The
        // provider is forced up front so the skeleton build happens once,
        // outside the fan-out.
        let built: Vec<(usize, Vec<Dist>)> = if missing.is_empty() {
            Vec::new()
        } else {
            let provider = self.provider.force();
            missing.par_iter().map(|&i| (i, provider.row(i))).collect()
        };
        let mut cache = self.cache.lock().expect("distance row cache poisoned");
        let budget = cache.stats().budget_bytes;
        for (i, row) in built {
            let handle = cache.get_or_insert_with(i as u64, || row);
            if cache.pinned_bytes() + row_bytes <= budget && cache.pin(i as u64) {
                pinned.push(i);
            }
            handles.insert(i, handle);
        }
        drop(cache);
        PinnedRows { store: self, pinned, rows: handles }
    }

    /// Memory accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        let cache = self.cache.lock().expect("distance row cache poisoned").stats();
        StoreStats {
            resident_bytes: cache.resident_bytes,
            dense_bytes: self.dim * self.dim * ENTRY_BYTES,
            budget_bytes: cache.budget_bytes,
            row_hits: cache.hits,
            row_misses: cache.misses,
            row_evictions: cache.evictions,
            pinned_bytes: cache.pinned_bytes,
        }
    }
}

/// A batch's pinned working set of distance rows (see
/// [`ImplicitStore::pin_rows`]).  Answers row and pair lookups without
/// touching the cache; dropping it releases every pin.
pub struct PinnedRows<'a> {
    store: &'a ImplicitStore,
    pinned: Vec<usize>,
    rows: HashMap<usize, Arc<[Dist]>>,
}

impl PinnedRows<'_> {
    /// The held row `i`, if it was part of the pinned set.
    pub fn row(&self, i: usize) -> Option<&[Dist]> {
        self.rows.get(&i).map(|r| &r[..])
    }

    /// Distance `(i, j)` answered from the held rows via either endpoint
    /// (the metric is symmetric).  Panics if neither row was requested from
    /// [`ImplicitStore::pin_rows`] — the planner guarantees coverage.
    pub fn distance(&self, i: usize, j: usize) -> Dist {
        if let Some(row) = self.rows.get(&i) {
            return row[j];
        }
        self.rows.get(&j).map(|row| row[i]).expect("planned batch covers every queried row")
    }

    /// Number of distinct rows held by this guard.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the guard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Drop for PinnedRows<'_> {
    fn drop(&mut self) {
        let mut cache = self.store.cache.lock().expect("distance row cache poisoned");
        for &i in &self.pinned {
            cache.unpin(i as u64);
        }
    }
}

/// Accounting of a delta-carried implicit store build
/// ([`DistanceStore::implicit_delta`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCarry {
    /// Resident rows carried over from the previous epoch's cache (keep-test
    /// passed; entries bitwise-identical to a fresh sweep).
    pub rows_carried: usize,
    /// Resident rows the keep-test invalidated (re-swept lazily on demand).
    pub rows_dropped: usize,
    /// Fresh sweeps run for inserted-corner sources during the carry.
    pub corner_sweeps: usize,
}

/// Pluggable distance storage for the `V_R`-to-`V_R` length structure.
///
/// The dense arm keeps the lock-free, allocation-free `O(1)` read the
/// vertex-pair fast path is benchmarked on (E10); the implicit arm trades
/// a mutex-guarded row cache for an `O(budget)` footprint.  Both arms
/// return bitwise-identical distances (see the module docs).
pub enum DistanceStore {
    /// The full matrix.
    Dense(MinPlusMatrix),
    /// Budgeted on-demand rows (boxed: the provider is large, and keeping
    /// the enum small keeps the dense arm's reads cheap).
    Implicit(Box<ImplicitStore>),
}

impl DistanceStore {
    /// Wrap an already materialised matrix.
    pub fn dense(matrix: MinPlusMatrix) -> Self {
        DistanceStore::Dense(matrix)
    }

    /// An implicit store over the Section 9 single-source engine — the
    /// backend behind every non-baseline engine.
    pub fn implicit_sweep(obstacles: &ObstacleSet, budget_bytes: usize) -> Self {
        let dim = obstacles.vertices().len();
        let provider = LazyProvider::deferred(Arc::new(obstacles.clone()), false);
        DistanceStore::Implicit(Box::new(ImplicitStore::new(provider, dim, budget_bytes)))
    }

    /// An implicit store over the Hanan-grid Dijkstra — the backend behind
    /// the baseline-comparator engine.
    pub fn implicit_hanan(obstacles: &ObstacleSet, budget_bytes: usize) -> Self {
        let dim = obstacles.vertices().len();
        let provider = LazyProvider::deferred(Arc::new(obstacles.clone()), true);
        DistanceStore::Implicit(Box::new(ImplicitStore::new(provider, dim, budget_bytes)))
    }

    /// An implicit store for an *edited* scene that carries over every
    /// resident row of the previous epoch's store that the edit provably
    /// cannot change.
    ///
    /// Soundness of the keep-test: engine rows hold *true* shortest-path
    /// distances, so for an inserted or removed rectangle `R` the distance
    /// `d(u, v)` can only change if some optimal (or newly optimal) path
    /// passes through `int(R)` — and any path through `int(R)` has length
    /// `> l1(u, R) + l1(v, R)` (the nearest points of a closed rectangle to
    /// a non-interior point lie on its boundary).  Hence
    /// `l1(u, R) + l1(v, R) >= d_old(u, v)` certifies `d_new == d_old`; the
    /// test composes over multi-rectangle deltas by induction, and `INF`
    /// entries conservatively fail it.  Columns of inserted vertices are
    /// filled exactly from fresh corner-source sweeps via metric symmetry
    /// (`row_u[j_new] = row_{j_new}[u]`).  A row failing the test for *any*
    /// surviving column is dropped whole ([`BlockCache::invalidate_if`]) and
    /// re-swept lazily if requested again.
    ///
    /// `old_to_new` / `new_to_old` map **vertex** indices across the id
    /// compaction (`None` = removed / inserted); `edited` holds the
    /// geometries of all inserted and removed rectangles.  A provider-kind
    /// mismatch (sweep vs Hanan) carries nothing.
    pub fn implicit_delta(
        obstacles: &ObstacleSet,
        budget_bytes: usize,
        hanan: bool,
        old: &ImplicitStore,
        old_to_new: &[Option<usize>],
        new_to_old: &[Option<usize>],
        edited: &[rsp_geom::Rect],
    ) -> (Self, RowCarry) {
        use rayon::prelude::*;
        let vertices = obstacles.vertices();
        let dim = vertices.len();
        // Deferred on purpose: for an edit whose keep-test carries the whole
        // resident set (and that inserts nothing), the skeleton build never
        // runs at all — the child store is ready in O(carried rows).
        let provider = LazyProvider::deferred(Arc::new(obstacles.clone()), hanan);
        let store = ImplicitStore::new(provider, dim, budget_bytes);
        let kinds_match = hanan == old.provider.hanan;
        // Candidate rows: resident in the old cache with a surviving source.
        let mut candidates: Vec<(usize, Arc<[Dist]>)> = if kinds_match {
            let old_cache = old.cache.lock().expect("distance row cache poisoned");
            old_cache
                .snapshot()
                .into_iter()
                .filter_map(|(k, row)| {
                    let new_i = (*old_to_new.get(k as usize)?)?;
                    Some((new_i, row))
                })
                .collect()
        } else {
            Vec::new()
        };
        if candidates.is_empty() || dim == 0 {
            return (DistanceStore::Implicit(Box::new(store)), RowCarry::default());
        }
        candidates.sort_by_key(|&(new_i, _)| new_i);
        // Exact rows for the inserted corners, swept in the new scene; they
        // both seed the cache and fill the inserted columns of carried rows.
        let inserted: Vec<usize> = (0..dim).filter(|&j| new_to_old[j].is_none()).collect();
        let corner_rows: Vec<(usize, Vec<Dist>)> = if inserted.is_empty() {
            Vec::new()
        } else {
            let provider = store.provider.force();
            inserted.par_iter().map(|&j| (j, provider.row(j))).collect()
        };
        let corner_of: HashMap<usize, &[Dist]> = corner_rows.iter().map(|&(j, ref r)| (j, &r[..])).collect();
        let remapped: Vec<(usize, Vec<Dist>)> = candidates
            .par_iter()
            .map(|&(new_i, ref old_row)| {
                let row = (0..dim)
                    .map(|j| match new_to_old[j] {
                        Some(old_j) => old_row[old_j],
                        None => corner_of[&j][new_i],
                    })
                    .collect();
                (new_i, row)
            })
            .collect();
        // Per-edited-rect vertex gaps, shared by every row's keep-test.
        let gaps: Vec<Vec<Dist>> =
            edited.iter().map(|r| vertices.iter().map(|&v| r.l1_distance_to(v)).collect()).collect();
        let carried: std::collections::HashSet<u64> = remapped.iter().map(|&(i, _)| i as u64).collect();
        let candidate_count = carried.len();
        let mut cache = store.cache.lock().expect("distance row cache poisoned");
        for (i, row) in remapped {
            cache.seed(i as u64, row.into());
        }
        let corner_sweeps = corner_rows.len();
        for (j, row) in corner_rows {
            cache.seed(j as u64, row.into());
        }
        cache.invalidate_if(|k, row| {
            if !carried.contains(&k) {
                return true; // fresh corner rows are exact by construction
            }
            let u = k as usize;
            gaps.iter().all(|gap| {
                let through_edit = gap[u];
                (0..dim).all(|j| new_to_old[j].is_none() || through_edit.saturating_add(gap[j]) >= row[j])
            })
        });
        // Count what actually stayed resident, so budget evictions during
        // seeding are charged as drops too, not claimed as reuse.
        let rows_carried = cache.snapshot().iter().filter(|(k, _)| carried.contains(k)).count();
        drop(cache);
        let carry = RowCarry { rows_carried, rows_dropped: candidate_count - rows_carried, corner_sweeps };
        (DistanceStore::Implicit(Box::new(store)), carry)
    }

    /// A dense store for an *edited* scene that carries every row of the
    /// previous epoch's matrix the edit provably cannot change and re-sweeps
    /// only the rest (inserted-corner sources plus keep-test failures).
    /// Same keep-test and column-fill scheme as
    /// [`DistanceStore::implicit_delta`]; the result is bitwise-identical to
    /// an eager fresh build.
    pub fn dense_delta(
        obstacles: &ObstacleSet,
        hanan: bool,
        old: &MinPlusMatrix,
        new_to_old: &[Option<usize>],
        edited: &[rsp_geom::Rect],
    ) -> (Self, RowCarry) {
        use rayon::prelude::*;
        let vertices = obstacles.vertices();
        let dim = vertices.len();
        // Deferred like the implicit arm's: a full-carry edit needs no sweeps
        // and therefore never builds the skeleton.
        let provider = LazyProvider::deferred(Arc::new(obstacles.clone()), hanan);
        let gaps: Vec<Vec<Dist>> =
            edited.iter().map(|r| vertices.iter().map(|&v| r.l1_distance_to(v)).collect()).collect();
        // Decide per row: carry (survivor passing the keep-test on every
        // surviving column) or sweep.
        let keeps: Vec<Option<usize>> = (0..dim)
            .into_par_iter()
            .map(|i| {
                let old_i = new_to_old[i]?;
                let old_row = old.row(old_i);
                gaps.iter()
                    .all(|gap| {
                        let through_edit = gap[i];
                        (0..dim).all(|j| match new_to_old[j] {
                            Some(old_j) => through_edit.saturating_add(gap[j]) >= old_row[old_j],
                            None => true,
                        })
                    })
                    .then_some(old_i)
            })
            .collect();
        let sweep_list: Vec<usize> = (0..dim).filter(|&i| keeps[i].is_none()).collect();
        let swept: HashMap<usize, Vec<Dist>> = if sweep_list.is_empty() {
            HashMap::new()
        } else {
            let provider = provider.force();
            sweep_list.par_iter().map(|&i| (i, provider.row(i))).collect()
        };
        let rows: Vec<Vec<Dist>> = (0..dim)
            .into_par_iter()
            .map(|i| match keeps[i] {
                Some(old_i) => {
                    let old_row = old.row(old_i);
                    (0..dim)
                        .map(|j| match new_to_old[j] {
                            Some(old_j) => old_row[old_j],
                            // Inserted column: exact by symmetry from the
                            // freshly swept inserted-corner row.
                            None => swept[&j][i],
                        })
                        .collect()
                }
                None => swept[&i].clone(),
            })
            .collect();
        let rows_carried = keeps.iter().filter(|k| k.is_some()).count();
        let corner_sweeps = (0..dim).filter(|&i| new_to_old[i].is_none()).count();
        let carry = RowCarry { rows_carried, rows_dropped: dim - rows_carried - corner_sweeps, corner_sweeps };
        (DistanceStore::dense(MinPlusMatrix::from_rows(rows)), carry)
    }

    /// Entry `(i, j)`: one array read for the dense arm, a cache probe (and
    /// possibly a single-source sweep) for the implicit arm.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> Dist {
        match self {
            DistanceStore::Dense(m) => m.get(i, j),
            DistanceStore::Implicit(s) => s.distance(i, j),
        }
    }

    /// Matrix dimension (`4n`).
    pub fn dim(&self) -> usize {
        match self {
            DistanceStore::Dense(m) => m.rows(),
            DistanceStore::Implicit(s) => s.dim(),
        }
    }

    /// The dense matrix, when this store has one (expert consumers — E8's
    /// matrix comparison, the recursion inspector — need the raw matrix and
    /// accept that an implicit store cannot provide it).
    pub fn as_dense(&self) -> Option<&MinPlusMatrix> {
        match self {
            DistanceStore::Dense(m) => Some(m),
            DistanceStore::Implicit(_) => None,
        }
    }

    /// The implicit backend, when this store has one (the batch planner
    /// pins rows on it; the dense arm needs no planning).
    pub fn as_implicit(&self) -> Option<&ImplicitStore> {
        match self {
            DistanceStore::Dense(_) => None,
            DistanceStore::Implicit(s) => Some(s),
        }
    }

    /// Which backend this is, with the implicit arm's configured budget.
    pub fn kind(&self) -> StoreKind {
        match self {
            DistanceStore::Dense(_) => StoreKind::Dense,
            DistanceStore::Implicit(s) => StoreKind::Implicit { budget_bytes: s.stats().budget_bytes },
        }
    }

    /// Memory accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        match self {
            DistanceStore::Dense(m) => {
                let bytes = m.rows() * m.cols() * ENTRY_BYTES;
                StoreStats { resident_bytes: bytes, dense_bytes: bytes, budget_bytes: bytes, ..StoreStats::default() }
            }
            DistanceStore::Implicit(s) => s.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workload::uniform_disjoint;

    #[test]
    fn auto_resolution_picks_by_scene_size() {
        assert_eq!(StoreKind::Auto.resolve(8), StoreKind::Dense);
        assert_eq!(
            StoreKind::Auto.resolve(IMPLICIT_AUTO_THRESHOLD),
            StoreKind::Implicit { budget_bytes: default_budget_bytes(IMPLICIT_AUTO_THRESHOLD) }
        );
        assert_eq!(StoreKind::Dense.resolve(10_000), StoreKind::Dense);
        let pinned = StoreKind::Implicit { budget_bytes: 123 };
        assert_eq!(pinned.resolve(1), pinned);
    }

    #[test]
    fn budget_arithmetic() {
        // n = 2048: dense is (8192)^2 * 8 = 512 MiB; the default budget is
        // 1/16 of that = 32 MiB, comfortably under the 10% acceptance bar.
        assert_eq!(dense_bytes_for(2048), 512 << 20);
        assert_eq!(default_budget_bytes(2048), 32 << 20);
        assert!(default_budget_bytes(2048) * 10 <= dense_bytes_for(2048));
        // tiny scenes get the 1 MiB floor
        assert_eq!(default_budget_bytes(4), 1 << 20);
    }

    #[test]
    fn implicit_sweep_matches_dense_bitwise() {
        let w = uniform_disjoint(9, 17);
        let engine = SingleSourceEngine::new(&w.obstacles);
        let rows: Vec<Vec<Dist>> = engine.vertices().to_vec().iter().map(|&v| engine.distances_from(v)).collect();
        let dense = DistanceStore::dense(MinPlusMatrix::from_rows(rows));
        // A budget of three rows forces heavy churn; answers must not move.
        let row_bytes = dense.dim() * ENTRY_BYTES;
        let implicit = DistanceStore::implicit_sweep(&w.obstacles, 3 * row_bytes);
        assert_eq!(implicit.dim(), dense.dim());
        for i in 0..dense.dim() {
            for j in 0..dense.dim() {
                assert_eq!(implicit.at(i, j), dense.at(i, j), "({i},{j})");
            }
        }
        let stats = implicit.stats();
        assert!(stats.resident_bytes <= 3 * row_bytes);
        assert!(stats.row_evictions > 0, "a 3-row budget over {} rows must evict", dense.dim());
        assert_eq!(stats.dense_bytes, dense.stats().dense_bytes);
        // Dense accounting: resident == dense == budget, no cache traffic.
        let d = dense.stats();
        assert_eq!(d.resident_bytes, d.dense_bytes);
        assert_eq!((d.row_hits, d.row_misses, d.row_evictions), (0, 0, 0));
    }

    #[test]
    fn implicit_hanan_matches_the_dijkstra_baseline() {
        let w = uniform_disjoint(6, 5);
        let baseline = crate::baseline::dijkstra_sssp_matrix(&w.obstacles);
        let implicit = DistanceStore::implicit_hanan(&w.obstacles, usize::MAX);
        assert_eq!(implicit.kind(), StoreKind::Implicit { budget_bytes: usize::MAX });
        for i in 0..baseline.rows() {
            for j in 0..baseline.cols() {
                assert_eq!(implicit.at(i, j), baseline.get(i, j), "({i},{j})");
            }
        }
        assert!(implicit.as_dense().is_none());
    }

    #[test]
    fn symmetric_accessor_answers_from_either_resident_row() {
        let w = uniform_disjoint(5, 3);
        let store = DistanceStore::implicit_sweep(&w.obstacles, usize::MAX);
        let dim = store.dim();
        // Materialise row 2, then ask (7, 2): the resident row must answer
        // (one hit), with no second sweep for row 7.
        let d_direct = store.at(2, 7);
        let before = store.stats();
        let d_sym = store.at(7, 2);
        let after = store.stats();
        assert_eq!(d_sym, d_direct, "metric symmetry");
        assert_eq!(after.row_misses, before.row_misses, "no extra sweep");
        assert_eq!(after.row_hits, before.row_hits + 1);
        // A fresh unordered pair materialises its canonical (min) row only.
        let _ = store.at(9, 4);
        let implicit = store.as_implicit().expect("implicit store");
        assert!(implicit.row(4).len() == dim, "canonical row 4 is resident");
        assert_eq!(store.stats().row_misses, after.row_misses + 1);
    }

    #[test]
    fn pinned_rows_answer_batches_with_one_sweep_per_row() {
        let w = uniform_disjoint(6, 11);
        let engine = SingleSourceEngine::new(&w.obstacles);
        let rows: Vec<Vec<Dist>> = engine.vertices().to_vec().iter().map(|&v| engine.distances_from(v)).collect();
        let dense = DistanceStore::dense(MinPlusMatrix::from_rows(rows));
        let dim = dense.dim();
        let row_bytes = dim * ENTRY_BYTES;
        let store = DistanceStore::implicit_sweep(&w.obstacles, 2 * row_bytes);
        let implicit = store.as_implicit().expect("implicit store");
        {
            let pins = implicit.pin_rows(&[3, 0, 7, 3, 0]);
            assert_eq!(pins.len(), 3);
            assert!(!pins.is_empty());
            // Only two rows fit the pin budget; the third is held by handle.
            let stats = store.stats();
            assert_eq!(stats.pinned_bytes, 2 * row_bytes);
            assert_eq!(stats.row_misses, 3, "one sweep per distinct row");
            for j in 0..dim {
                assert_eq!(pins.distance(0, j), dense.at(0, j), "(0,{j})");
                assert_eq!(pins.distance(j, 7), dense.at(j, 7), "({j},7) via symmetry");
            }
            assert_eq!(pins.row(3).expect("requested row")[5], dense.at(3, 5));
            assert!(pins.row(9).is_none());
            // Answering from pins generated no further cache traffic.
            assert_eq!(store.stats().row_misses, 3);
            assert_eq!(store.stats().row_hits, 0);
        }
        // The guard dropped: pins released, budget enforcement resumes.
        let stats = store.stats();
        assert_eq!(stats.pinned_bytes, 0);
        assert!(stats.resident_bytes <= 2 * row_bytes);
        // Pinning a still-resident row costs a hit, not a sweep.
        let pins = implicit.pin_rows(&[0]);
        assert!(pins.row(0).is_some());
        assert_eq!(store.stats().row_misses, 3);
        assert_eq!(store.stats().row_hits, 1);
    }

    #[test]
    fn row_cache_counts_hits_after_first_touch() {
        let w = uniform_disjoint(4, 2);
        let store = DistanceStore::implicit_sweep(&w.obstacles, usize::MAX);
        let dim = store.dim();
        for j in 0..dim {
            let _ = store.at(0, j);
        }
        let stats = store.stats();
        assert_eq!(stats.row_misses, 1, "one sweep serves the whole row scan");
        assert_eq!(stats.row_hits as usize, dim - 1);
        assert_eq!(stats.row_evictions, 0);
        assert_eq!(stats.resident_bytes, dim * ENTRY_BYTES);
    }
}
