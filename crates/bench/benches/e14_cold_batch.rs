//! E14 — the cold-batch planner: row-reuse batch serving vs per-call churn.
//!
//! E13's `implicit_churn` arm priced the PR 8 cold path: a 256-query batch
//! against a two-row budget re-materialised a row *per query* — 192 ms /
//! 366 ms / 902 ms per batch at n = 256 / 512 / 1024.  PR 9's planner
//! rewrites a batch into one sweep per distinct *canonical* row (the L1
//! metric is symmetric, so `(u, v)` and `(v, u)` share `min(u, v)`'s row),
//! pins the working set for the batch's lifetime, and scatters the answers.
//! This bench charts what that buys on the session shape that motivated it —
//! a cold tenant fanning a few hot sources out to many targets:
//!
//! * `planned` — one 256-query mixed batch (192 vertex pairs across 8 hot
//!   sources in alternating orientation + 64 arbitrary-point pairs) through
//!   `Router::distances` under a two-row budget.  The planner collapses the
//!   vertex queries to 8 sweeps; the arbitrary pairs ride on rows pinned up
//!   front.
//! * `planned_8rows` — the same batch with an 8-row budget, so every hot
//!   row can stay pinned at once (the budget-sensitivity axis).
//! * `per_call` — the same batch served query-by-query via
//!   `Router::distance` at the two-row budget: the PR 8 churn replica, and
//!   the baseline the ≥5x acceptance bar is measured against.
//!
//! Between iterations the starved cache retains at most two rows, so every
//! planned batch is genuinely cold apart from that sliver — the same
//! steady-state E13's churn arm measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::router::Router;
use rsp_core::store::StoreKind;
use rsp_geom::{Dist, ObstacleSet, Point};
use rsp_workload::{query_pairs, uniform_disjoint};

const HOT_SOURCES: usize = 8;
const VERTEX_QUERIES: usize = 192;
const POINT_QUERIES: usize = 64;

fn router(obstacles: &ObstacleSet, budget_rows: usize, n: usize) -> Router {
    let row_bytes = 4 * n * std::mem::size_of::<Dist>();
    Router::builder(obstacles.clone())
        .store(StoreKind::Implicit { budget_bytes: budget_rows * row_bytes })
        .build()
        .expect("workload scenes are valid")
}

/// The cold-tenant batch: a few hot sources fanned out to many targets in
/// both orientations (so symmetry canonicalisation is load-bearing), plus a
/// tail of arbitrary-point queries.
fn mixed_batch(obstacles: &ObstacleSet) -> Vec<(Point, Point)> {
    let verts = obstacles.vertices();
    let m = verts.len();
    let mut pairs = Vec::with_capacity(VERTEX_QUERIES + POINT_QUERIES);
    for k in 0..VERTEX_QUERIES {
        let s = verts[k % HOT_SOURCES];
        let t = verts[HOT_SOURCES + (k * 131 + 17) % (m - HOT_SOURCES)];
        pairs.push(if k % 2 == 0 { (s, t) } else { (t, s) });
    }
    pairs.extend(query_pairs(obstacles, POINT_QUERIES, false, 2));
    pairs
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_cold_batch");
    group.sample_size(10); // the harness honours CRITERION_BUDGET_MS per arm
    for &n in &[256usize, 512, 1024] {
        let w = uniform_disjoint(n, 5);
        let batch = mixed_batch(&w.obstacles);

        let planned = router(&w.obstacles, 2, n);
        let _ = planned.distances(&batch).unwrap(); // pay the engine's one-time build
        group.bench_with_input(BenchmarkId::new("planned", n), &n, |b, _| {
            b.iter(|| planned.distances(&batch).unwrap().iter().sum::<Dist>())
        });
        let stats = planned.memory_stats();
        eprintln!(
            "e14 n={n}: planned batch resident {} KiB of {} KiB budget, {} sweeps so far",
            stats.resident_bytes >> 10,
            stats.budget_bytes >> 10,
            stats.row_misses
        );

        let roomy = router(&w.obstacles, HOT_SOURCES, n);
        let _ = roomy.distances(&batch).unwrap();
        group.bench_with_input(BenchmarkId::new("planned_8rows", n), &n, |b, _| {
            b.iter(|| roomy.distances(&batch).unwrap().iter().sum::<Dist>())
        });

        // The PR 8 replica: the identical batch, one query at a time, same
        // starved budget — every vertex query churns its row back in.
        let per_call = router(&w.obstacles, 2, n);
        let _ = per_call.distance(batch[0].0, batch[0].1).unwrap();
        group.bench_with_input(BenchmarkId::new("per_call", n), &n, |b, _| {
            b.iter(|| batch.iter().map(|&(a, b)| per_call.distance(a, b).unwrap()).sum::<Dist>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
