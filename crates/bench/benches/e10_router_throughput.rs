//! E10 — the `Router` serving path: batch query throughput.
//!
//! The session API exists so that heavy query traffic can be served from one
//! set of shared substructures.  This bench measures batch `distances`
//! throughput (512-query batches; divide the reported per-iteration time by
//! 512 for per-query latency / queries-per-second) as `n` grows, for three
//! serving modes:
//!
//! * `batch_vertex_pairs` — every pair hits the O(1) matrix fast path;
//! * `batch_mixed` — half vertex pairs, half arbitrary points (the fast-path
//!   routing inside one batch);
//! * `batch_arbitrary_points` — every pair takes the §6.4 arbitrary-point
//!   path (after ISSUE 5: indexed containment probes + binary-searched
//!   staircases + borrowed `ChainView`, so the series should be near-flat
//!   on a log scale instead of linear in n);
//! * `per_call_vertex_pairs` — the same vertex pairs served by individual
//!   `distance` calls, to expose the batch layer's overhead/benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::router::Router;
use rsp_geom::Point;
use rsp_workload::{query_pairs, uniform_disjoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_router_throughput");
    for &n in &[32usize, 64, 128, 256] {
        let w = uniform_disjoint(n, 5);
        let router = Router::new(w.obstacles.clone()).expect("workload scenes are valid");
        let _ = router.oracle(); // pay the one-time build outside the timer
        let vertex_batch = query_pairs(&w.obstacles, 512, true, 1);
        let mut mixed_batch: Vec<(Point, Point)> = query_pairs(&w.obstacles, 256, true, 2);
        mixed_batch.extend(query_pairs(&w.obstacles, 256, false, 3));
        let arbitrary_batch = query_pairs(&w.obstacles, 512, false, 4);

        group.bench_with_input(BenchmarkId::new("batch_vertex_pairs", n), &n, |b, _| {
            b.iter(|| router.distances(&vertex_batch).unwrap().iter().sum::<i64>())
        });
        group.bench_with_input(BenchmarkId::new("batch_mixed", n), &n, |b, _| {
            b.iter(|| router.distances(&mixed_batch).unwrap().iter().sum::<i64>())
        });
        group.bench_with_input(BenchmarkId::new("batch_arbitrary_points", n), &n, |b, _| {
            b.iter(|| router.distances(&arbitrary_batch).unwrap().iter().sum::<i64>())
        });
        group.bench_with_input(BenchmarkId::new("per_call_vertex_pairs", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &vertex_batch {
                    acc += router.distance(p, q).unwrap();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
