//! E9 — Brent's theorem in practice: wall-clock speedup of the parallel
//! builders as a function of the number of worker threads.
//! Paper claim: with W work and T depth, p processors give O(W/p + T);
//! the curve should be near-linear until p approaches the memory bandwidth
//! or the critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::apsp::VertexApsp;
use rsp_core::dnc::{build_boundary_matrix_bbox, DncOptions};
use rsp_pram::pool::run_on_pool;
use rsp_workload::uniform_disjoint;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_thread_scaling");
    group.sample_size(10);
    let w = uniform_disjoint(96, 21);
    for &threads in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("vertex_apsp", threads), &threads, |b, &p| {
            b.iter(|| run_on_pool(p, || VertexApsp::build(&w.obstacles).len()))
        });
        group.bench_with_input(BenchmarkId::new("boundary_dnc", threads), &threads, |b, &p| {
            b.iter(|| {
                run_on_pool(p, || build_boundary_matrix_bbox(&w.obstacles, 3, &DncOptions::default()).stats.nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
