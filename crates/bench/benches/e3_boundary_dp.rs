//! E3 — Section 5 / Theorem 3: building the boundary matrix D_Q.
//! Paper claim: O(log^2 n) time, O(n^2) work.  The bench sweeps n and also
//! runs the ablation with the Monge product disabled (general product in the
//! conquer step), showing what the Monge machinery buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::dnc::{build_boundary_matrix_bbox, DncOptions};
use rsp_workload::uniform_disjoint;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_boundary_matrix");
    group.sample_size(10);
    for &n in &[16usize, 32, 64, 96] {
        let w = uniform_disjoint(n, 7);
        group.bench_with_input(BenchmarkId::new("dnc_monge", n), &w.obstacles, |b, obs| {
            b.iter(|| build_boundary_matrix_bbox(obs, 3, &DncOptions::default()).stats.nodes)
        });
        group.bench_with_input(BenchmarkId::new("dnc_no_monge", n), &w.obstacles, |b, obs| {
            b.iter(|| {
                build_boundary_matrix_bbox(obs, 3, &DncOptions { use_monge: false, ..DncOptions::default() })
                    .stats
                    .nodes
            })
        });
        group.bench_with_input(BenchmarkId::new("dnc_sequential_schedule", n), &w.obstacles, |b, obs| {
            b.iter(|| {
                build_boundary_matrix_bbox(obs, 3, &DncOptions { parallel: false, ..DncOptions::default() }).stats.nodes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
