//! E8 — Section 9: the O(n^2)-style sequential construction vs the
//! "apply the single-source algorithm n times" baseline and the naive
//! per-source Dijkstra baseline.
//! Paper claim: the dedicated sequential construction beats repeated
//! single-source computation by roughly a log factor, and both beat the
//! quadratic-graph Dijkstra by a wide margin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::apsp::VertexApsp;
use rsp_core::baseline::{dijkstra_sssp_matrix, repeated_sssp_matrix};
use rsp_workload::uniform_disjoint;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_sequential_construction");
    group.sample_size(10);
    for &n in &[16usize, 32, 64, 128] {
        let w = uniform_disjoint(n, 17);
        group.bench_with_input(BenchmarkId::new("section9_sequential", n), &w.obstacles, |b, obs| {
            b.iter(|| VertexApsp::build_sequential(obs).len())
        });
        group.bench_with_input(BenchmarkId::new("repeated_sssp", n), &w.obstacles, |b, obs| {
            b.iter(|| repeated_sssp_matrix(obs).rows())
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("hanan_dijkstra_per_source", n), &w.obstacles, |b, obs| {
                b.iter(|| dijkstra_sssp_matrix(obs).rows())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
