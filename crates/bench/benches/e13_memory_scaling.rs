//! E13 — breaking the O(n²) memory wall: dense vs implicit distance store.
//!
//! The dense APSP matrix costs `(4n)² × 8` bytes — 512 MiB at n = 2048, 2 GiB
//! at n = 4096 — while the implicit store holds only the staircase sweep
//! structures plus a byte-budgeted LRU of materialised rows.  This bench
//! charts what that trade costs at query time as `n` grows:
//!
//! * `implicit_warm` — 256 vertex-pair queries against an implicit store
//!   whose touched rows are already resident (the steady-state hot-tenant
//!   path; should track the dense fast path to within the row-cache lookup).
//! * `implicit_churn` — the same batch against a two-row budget, so nearly
//!   every query re-materialises its row via an on-demand sweep (the
//!   worst-case cold-tenant path; this is the price of fitting in memory).
//!   Only run at n ≤ 1024 — a single churned batch is ~n sweeps, seconds of
//!   wall clock at n = 4096, and three points already chart the slope.
//! * `dense` — the `MinPlusMatrix` fast path, as the floor.  Only run at
//!   n ≤ 1024: beyond that the dense build itself is the wall this
//!   experiment exists to avoid.
//!
//! Resident-set arithmetic (store bytes vs dense bytes) is printed per size
//! outside the timers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::router::Router;
use rsp_core::store::{default_budget_bytes, StoreKind};
use rsp_geom::{Dist, ObstacleSet};
use rsp_workload::{query_pairs, uniform_disjoint};

fn router(obstacles: &ObstacleSet, store: StoreKind) -> Router {
    Router::builder(obstacles.clone()).store(store).build().expect("workload scenes are valid")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_memory_scaling");
    for &n in &[256usize, 512, 1024, 2048, 4096] {
        let w = uniform_disjoint(n, 5);
        let batch = query_pairs(&w.obstacles, 256, true, 1);

        // "Warm" must mean warm: the batch touches up to 256 distinct source
        // rows, and below n = 1024 the default budget holds fewer than that,
        // which would turn this arm into a thrash benchmark.  Size the budget
        // to keep the batch resident (never below the deployment default).
        let row_bytes = 4 * n * std::mem::size_of::<Dist>();
        let warm_budget = default_budget_bytes(n).max(260 * row_bytes);
        let warm = router(&w.obstacles, StoreKind::Implicit { budget_bytes: warm_budget });
        let _ = warm.distances(&batch).unwrap(); // materialise the touched rows outside the timer
        group.bench_with_input(BenchmarkId::new("implicit_warm", n), &n, |b, _| {
            b.iter(|| warm.distances(&batch).unwrap().iter().sum::<Dist>())
        });
        let stats = warm.memory_stats();
        eprintln!(
            "e13 n={n}: implicit resident {} KiB of {} KiB budget; dense would be {} KiB",
            stats.resident_bytes >> 10,
            stats.budget_bytes >> 10,
            stats.dense_bytes >> 10
        );

        if n <= 1024 {
            let churn = router(&w.obstacles, StoreKind::Implicit { budget_bytes: 2 * row_bytes });
            let _ = churn.distances(&batch).unwrap(); // pay the engine's one-time build
            group.bench_with_input(BenchmarkId::new("implicit_churn", n), &n, |b, _| {
                b.iter(|| churn.distances(&batch).unwrap().iter().sum::<Dist>())
            });

            let dense = router(&w.obstacles, StoreKind::Dense);
            let _ = dense.distances(&batch).unwrap(); // pay the dense APSP build
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
                b.iter(|| dense.distances(&batch).unwrap().iter().sum::<Dist>())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
