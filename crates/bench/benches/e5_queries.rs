//! E5 — Section 6.4: query latency.
//! Paper claim: O(1) per vertex-pair query, O(log n) per arbitrary-point
//! query.  The bench measures per-query latency for both kinds as n grows
//! (512-query batches; divide the per-iteration time by 512 for per-query
//! latency).  The vertex-pair series should stay flat; after ISSUE 5 the two
//! arbitrary-point series must grow only logarithmically as well — every
//! per-query primitive (ray shot, containment probe, staircase/line
//! intersection) is indexed, and the hot path allocates nothing.
//!
//! * `vertex_pair` — both endpoints obstacle vertices: one matrix lookup.
//! * `point_to_vertex` — one arbitrary endpoint: the §6.4 reduction against
//!   a precomputed escape staircase (binary-searched).
//! * `arbitrary_points` — both endpoints arbitrary: adds the on-the-fly
//!   `ChainView` staircase and the recursion into `point_to_vertex`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::query::PathLengthOracle;
use rsp_geom::Point;
use rsp_workload::{query_pairs, uniform_disjoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_queries");
    for &n in &[32usize, 64, 128, 256] {
        let w = uniform_disjoint(n, 5);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let vertex_queries = query_pairs(&w.obstacles, 512, true, 1);
        let point_queries = query_pairs(&w.obstacles, 512, false, 2);
        let mixed_queries: Vec<(Point, Point)> =
            point_queries.iter().zip(&vertex_queries).map(|(&(p, _), &(v, _))| (p, v)).collect();
        group.bench_with_input(BenchmarkId::new("vertex_pair", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &vertex_queries {
                    acc += oracle.vertex_distance(p, q).unwrap_or(0);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("point_to_vertex", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &mixed_queries {
                    acc += oracle.distance(p, q);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("arbitrary_points", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &point_queries {
                    acc += oracle.distance(p, q);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
