//! E5 — Section 6.4: query latency.
//! Paper claim: O(1) per vertex-pair query, O(log n) per arbitrary-point
//! query.  The bench measures per-query latency for both kinds as n grows;
//! the vertex-pair latency should stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::query::PathLengthOracle;
use rsp_workload::{query_pairs, uniform_disjoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_queries");
    for &n in &[32usize, 64, 128, 256] {
        let w = uniform_disjoint(n, 5);
        let oracle = PathLengthOracle::build(&w.obstacles);
        let vertex_queries = query_pairs(&w.obstacles, 512, true, 1);
        let point_queries = query_pairs(&w.obstacles, 512, false, 2);
        group.bench_with_input(BenchmarkId::new("vertex_pair", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &vertex_queries {
                    acc += oracle.vertex_distance(p, q).unwrap_or(0);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("arbitrary_points", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0i64;
                for &(p, q) in &point_queries {
                    acc += oracle.distance(p, q);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
