//! E11 — time-vs-p at fixed problem size, now that the vendored rayon is a
//! real work-stealing scheduler.  Where E9 sweeps the builders, E11 pins
//! the two parallel kernels the paper's speedup claims rest on — the Monge
//! (min,+) product (Lemmas 3-5) and the vertex-to-vertex oracle build — at
//! one `n` each, and varies only the worker count.  The p=1 over p=max
//! ratio is the workspace's measured parallel speedup; the sequential shim
//! this scheduler replaced held that ratio at exactly 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::apsp::VertexApsp;
use rsp_monge::monge::distance_monge;
use rsp_monge::multiply::min_plus_parallel;
use rsp_pram::pool::run_on_pool;
use rsp_workload::uniform_disjoint;

fn monge_factors(n: usize, seed: u64) -> (rsp_monge::MinPlusMatrix, rsp_monge::MinPlusMatrix) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = |k: usize| {
        let mut v: Vec<i64> = (0..k).map(|_| rng.gen_range(-10_000..10_000)).collect();
        v.sort();
        v
    };
    let xs = coords(n);
    let ys = coords(n);
    let zs = coords(n);
    (distance_monge(&xs, &ys, 17), distance_monge(&ys, &zs, 11))
}

/// Thread counts: 1, 2, then doubling up to the machine width, always
/// including the width itself so the p=1 vs p=max ratio is on the chart.
/// p=2 is measured even on a single-core machine — there it quantifies the
/// scheduler's oversubscription overhead instead of speedup.
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let mut counts = vec![1usize, 2];
    let mut p = 4;
    while p < max {
        counts.push(p);
        p *= 2;
    }
    if max > 2 {
        counts.push(max);
    }
    counts
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_thread_scaling");
    group.sample_size(10);

    // Kernel 1: the parallel Monge (min,+) product at fixed n = 512
    // (column-parallel SMAWK, ~8 pieces per worker).
    let (a, b) = monge_factors(512, 3);
    for &p in &thread_counts() {
        group.bench_with_input(BenchmarkId::new("monge_parallel_n512", p), &p, |bch, &p| {
            bch.iter(|| run_on_pool(p, || min_plus_parallel(&a, &b)))
        });
    }

    // Kernel 2: the oracle build (per-vertex shortest-path fan-out) on a
    // fixed 96-obstacle scene.
    let w = uniform_disjoint(96, 21);
    for &p in &thread_counts() {
        group.bench_with_input(BenchmarkId::new("oracle_build_n96", p), &p, |bch, &p| {
            bch.iter(|| run_on_pool(p, || VertexApsp::build(&w.obstacles).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
