//! E15 — incremental scene editing: epoch-versioned delta rebuilds vs
//! rebuilding from scratch.
//!
//! The edit→first-query path is the one interactive scene editing lives on:
//! an obstacle changes, and the session must answer its next query batch.
//! Before PR 10 the only option was a from-scratch `Router` build — skeleton
//! indexes rebuilt, escape staircases retraced, every needed distance row
//! re-swept — even when the edit was one small rectangle among a thousand.
//! `Router::apply_delta` derives the next epoch from the warm session
//! instead, carrying every substructure the edit provably cannot affect.
//!
//! The scene is a dense n-obstacle cluster plus two small fixture blocks far
//! to its east (the farther one pins the bounding box).  The edit removes
//! the nearer fixture: a single-obstacle change whose keep-test distance
//! bound (≥ 8000) dwarfs every in-cluster distance, so the delta build
//! carries the resident rows, every escape staircase (bbox unchanged) and
//! all but a handful of slab columns — and, having nothing to sweep, never
//! builds the row-provider skeleton at all.
//!
//! * `delta_edit` — the warm session absorbs the removal via `apply_delta`,
//!   then re-estimates the same 64 vertex nets it served before the edit.
//! * `full_rebuild` — the edited scene built from scratch, then the same
//!   64-net batch: the pre-PR 10 baseline and the arm the ≥10x acceptance
//!   bar is measured against at n = 1024.
//!
//! The reuse counters printed per n certify the delta arm is carrying
//! substructures, not quietly rebuilding them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::router::Router;
use rsp_core::store::StoreKind;
use rsp_geom::{Dist, ObstacleSet, Rect, SceneDelta};
use rsp_workload::{edit_stream, query_pairs, uniform_disjoint};

fn router(obstacles: &ObstacleSet, n: usize) -> Router {
    let row_bytes = 4 * n * std::mem::size_of::<Dist>();
    Router::builder(obstacles.clone())
        .store(StoreKind::Implicit { budget_bytes: 192 * row_bytes })
        .build()
        .expect("workload scenes are valid")
}

/// An n-obstacle scene: a dense (n-2)-block cluster plus two far fixture
/// blocks east of it.  The removable fixture sits at the bbox y-floor; the
/// bbox-pinning one is farther out and offset in y, so removing the first
/// leaves the bounding box (and with it every escape staircase) unchanged.
fn cluster_with_fixtures(n: usize) -> (ObstacleSet, SceneDelta, Vec<(rsp_geom::Point, rsp_geom::Point)>) {
    let cluster = uniform_disjoint(n - 2, 5).obstacles;
    let bbox = cluster.bbox().expect("non-empty scene");
    let removable = Rect::new(bbox.xmax + 4000, bbox.ymin, bbox.xmax + 4006, bbox.ymin + 6);
    let pin = Rect::new(bbox.xmax + 4100, bbox.ymin + 200, bbox.xmax + 4106, bbox.ymin + 206);
    let mut rects = cluster.rects().to_vec();
    rects.push(removable);
    rects.push(pin);
    // The nets the session keeps serving: vertex pairs of the cluster core,
    // present at unchanged coordinates in both epochs.  Nets hugging the
    // bbox y-floor are skipped — the removable fixture sits on that floor,
    // so their rows land in the keep-test's (correctly) conservative band.
    let batch: Vec<_> = query_pairs(&cluster, 256, true, 3)
        .into_iter()
        .filter(|&(a, b)| a.y >= bbox.ymin + 48 && b.y >= bbox.ymin + 48)
        .take(64)
        .collect();
    (ObstacleSet::new(rects), SceneDelta::removing(vec![n - 2]), batch)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_incremental_edit");
    group.sample_size(10); // the harness honours CRITERION_BUDGET_MS per arm
    for &n in &[256usize, 1024] {
        let (obstacles, delta, batch) = cluster_with_fixtures(n);
        let edited = obstacles.apply_delta(&delta).expect("fixture removal is valid").obstacles;

        // The warm base session every delta iteration derives from.
        let parent = router(&obstacles, n);
        let _ = parent.distances(&batch).unwrap();

        group.bench_with_input(BenchmarkId::new("delta_edit", n), &n, |b, _| {
            b.iter(|| {
                let child = parent.apply_delta(&delta).unwrap();
                child.distances(&batch).unwrap().iter().sum::<Dist>()
            })
        });
        let child = parent.apply_delta(&delta).unwrap();
        let _ = child.distances(&batch).unwrap();
        let counts = child.build_counts();
        eprintln!(
            "e15 n={n}: delta epoch {} reused {} rows / {} chains / {} slab cols \
             (rebuilt {} / {} / {})",
            child.epoch(),
            counts.rows_reused,
            counts.chains_reused,
            counts.slab_columns_reused,
            counts.rows_rebuilt,
            counts.chains_rebuilt,
            counts.slab_columns_rebuilt,
        );

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let fresh = router(&edited, n);
                fresh.distances(&batch).unwrap().iter().sum::<Dist>()
            })
        });
    }

    // ECO churn: a generic seeded 4-edit stream (insert/remove/move inside
    // the scene, from `rsp_workload::edit_stream`) with 16 nets re-estimated
    // per revision.  In-scene edits land inside many pairs' spanning
    // rectangles, so the keep-test conservatively drops most rows — this
    // pair charts the *unfavourable* edit shape, where the honest answer is
    // that epoch chaining costs about the same as the naive
    // rebuild-per-edit loop (the keep-test and carry bookkeeping are cheap
    // even when they salvage little); the big wins above need edits outside
    // the hot region's spans.
    let n = 256usize;
    let base = uniform_disjoint(n, 7).obstacles;
    let stream = edit_stream(&base, 4, 11);
    let mut scenes: Vec<ObstacleSet> = Vec::with_capacity(stream.len());
    let mut scene = base.clone();
    for delta in &stream {
        scene = scene.apply_delta(delta).expect("stream deltas stay valid").obstacles;
        scenes.push(scene.clone());
    }
    let nets: Vec<_> = (0..stream.len()).map(|i| query_pairs(&scenes[i], 16, true, 40 + i as u64)).collect();
    let parent = router(&base, n);
    let _ = parent.distances(&query_pairs(&base, 16, true, 4)).unwrap();
    group.bench_with_input(BenchmarkId::new("churn_4edit_delta", n), &n, |b, _| {
        b.iter(|| {
            let mut session = parent.apply_delta(&stream[0]).unwrap();
            let mut total = session.distances(&nets[0]).unwrap().iter().sum::<Dist>();
            for i in 1..stream.len() {
                session = session.apply_delta(&stream[i]).unwrap();
                total += session.distances(&nets[i]).unwrap().iter().sum::<Dist>();
            }
            total
        })
    });
    group.bench_with_input(BenchmarkId::new("churn_4edit_rebuild", n), &n, |b, _| {
        b.iter(|| {
            let mut total = 0;
            for i in 0..stream.len() {
                let fresh = router(&scenes[i], n);
                total += fresh.distances(&nets[i]).unwrap().iter().sum::<Dist>();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
