//! E6 — Section 8: reporting actual paths.
//! Paper claim: a k-segment path is reported with O(log n + k) work, or in
//! O(log n) time by ceil(k / log n) processors.  The bench stratifies queries
//! by path complexity (corridor workloads force large k) and measures both
//! whole-path extraction and chunked parallel extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::query::PathLengthOracle;
use rsp_core::sptree::ShortestPathTrees;
use rsp_workload::corridors;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_report_path");
    group.sample_size(20);
    for &walls in &[4usize, 8, 16, 32] {
        let w = corridors(walls, 120, 3);
        let verts = w.obstacles.vertices();
        let source = verts[0];
        let target = *verts.last().unwrap();
        let trees = ShortestPathTrees::from_oracle(Arc::new(PathLengthOracle::build(&w.obstacles)), Some(&[source]));
        let k = trees.path_between(source, target).unwrap().num_segments();
        group.bench_with_input(BenchmarkId::new(format!("full_path_k{k}"), walls), &walls, |b, _| {
            b.iter(|| trees.path_between(source, target).unwrap().num_segments())
        });
        group.bench_with_input(BenchmarkId::new(format!("chunked_k{k}"), walls), &walls, |b, _| {
            b.iter(|| trees.path_chunks(source, target, 8).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
