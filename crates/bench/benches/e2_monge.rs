//! E2 — Lemmas 3-5: Monge (min,+) product vs the naive product.
//! Paper claim: O(alpha*beta) work instead of O(alpha*beta*gamma); the bench
//! shows the widening gap and the parallel speedup of the SMAWK-based product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_monge::monge::distance_monge;
use rsp_monge::multiply::{min_plus_general_parallel, min_plus_monge, min_plus_naive, min_plus_parallel};

fn factors(n: usize, seed: u64) -> (rsp_monge::MinPlusMatrix, rsp_monge::MinPlusMatrix) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = |k: usize| {
        let mut v: Vec<i64> = (0..k).map(|_| rng.gen_range(-10_000..10_000)).collect();
        v.sort();
        v
    };
    let xs = coords(n);
    let ys = coords(n);
    let zs = coords(n);
    (distance_monge(&xs, &ys, 17), distance_monge(&ys, &zs, 11))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_monge_product");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512] {
        let (a, b) = factors(n, 3);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| bch.iter(|| min_plus_naive(&a, &b)));
        group.bench_with_input(BenchmarkId::new("monge_smawk", n), &n, |bch, _| bch.iter(|| min_plus_monge(&a, &b)));
        group.bench_with_input(BenchmarkId::new("monge_parallel", n), &n, |bch, _| {
            bch.iter(|| min_plus_parallel(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("general_parallel", n), &n, |bch, _| {
            bch.iter(|| min_plus_general_parallel(&a, &b))
        });
    }
    // one larger size where the naive product is no longer measured
    for &n in &[1024usize, 2048] {
        let (a, b) = factors(n, 4);
        group.bench_with_input(BenchmarkId::new("monge_parallel", n), &n, |bch, _| {
            bch.iter(|| min_plus_parallel(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
