//! E7 — Section 7: the |P| = N >> n case.
//! Paper claim: O(N) instead of O(N^2) extra work by representing the
//! boundary-to-boundary lengths implicitly.  The bench grows N with n fixed
//! and measures construction time and the size of the implicit structure
//! (the explicit N x N matrix is reported analytically — materialising it is
//! exactly what the paper avoids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::bigp::BigPolygonStructure;
use rsp_workload::uniform_disjoint;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_big_polygon");
    group.sample_size(10);
    for &big_n in &[10_000usize, 100_000, 1_000_000] {
        for &n in &[64usize, 256] {
            let w = uniform_disjoint(n, 9);
            let container = w.obstacles.bbox().unwrap().expand(1000);
            group.bench_with_input(BenchmarkId::new(format!("implicit_n{n}"), big_n), &big_n, |b, &nn| {
                b.iter(|| {
                    let s = BigPolygonStructure::build(&w.obstacles, container, nn);
                    assert!(s.implicit_entries() < nn.saturating_mul(nn));
                    s.implicit_entries()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
