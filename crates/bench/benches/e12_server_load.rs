//! E12 — the `rsp-server` serving path under mixed concurrent load.
//!
//! A custom harness (the vendored criterion reports means only; a serving
//! layer is judged by its *tail*): four in-process client threads drive an
//! [`RspService`] with mixed traffic — coalesced single `distance` calls
//! interleaved with pre-batched 16-query `batch_distances` calls over four
//! resident scenes — and every call's wall-clock latency is recorded.  For
//! each (shards, admission window) configuration the bench reports
//! throughput (QPS) and the p50 / p99 / p999 latency percentiles.
//!
//! The per-configuration measurement time honours `CRITERION_BUDGET_MS`
//! (default 300 ms, matching the vendored criterion), so the CI smoke run
//! (`=10`) finishes in well under a second.
//!
//! Caveat for reading the numbers: shard scaling needs cores.  On a 1-CPU
//! container the shard counts mostly measure the coalescer's windowing, not
//! parallel dispatch.

use rsp_server::{RspService, SceneId, ServiceConfig};
use rsp_workload::{query_pairs, uniform_disjoint};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const SCENES: usize = 4;
const BATCH: usize = 16;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Loaded {
    service: Arc<RspService>,
    scenes: Vec<(SceneId, Vec<(rsp_geom::Point, rsp_geom::Point)>)>,
}

/// Build a service, load and pre-warm every scene (builds happen outside
/// the timed section), and pre-generate each scene's mixed query pairs.
fn setup(shards: usize, window: Duration) -> Loaded {
    let config = ServiceConfig { shards, batch_window: window, ..ServiceConfig::default() };
    let service = Arc::new(RspService::new(config));
    let mut scenes = Vec::new();
    for seed in 0..SCENES as u64 {
        let w = uniform_disjoint(24, 40 + seed);
        let id = service.load_scene(&w.obstacles).expect("workload scenes are valid");
        let mut pairs = query_pairs(&w.obstacles, 64, true, seed + 1);
        pairs.extend(query_pairs(&w.obstacles, 64, false, seed + 11));
        // Pre-warm: pay the lazy oracle build before the measurement.
        let _ = service.batch_distances(id, &pairs[..4]).expect("pre-warm");
        scenes.push((id, pairs));
    }
    Loaded { service, scenes }
}

/// Drive one configuration with `CLIENTS` closed-loop threads for the
/// budget; returns (ops, elapsed, sorted per-op latencies in ns).
fn drive(loaded: &Loaded, measure: Duration) -> (u64, Duration, Vec<u64>) {
    let deadline = Instant::now() + measure;
    let start = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..CLIENTS {
        let service = Arc::clone(&loaded.service);
        let scenes = loaded.scenes.clone();
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::new();
            let mut ops = 0u64;
            let mut step = worker; // stagger scene/pair choice across clients
            while Instant::now() < deadline {
                let (scene, pairs) = &scenes[step % SCENES];
                let t0 = Instant::now();
                if step % 4 == 3 {
                    // One in four ops is a pre-batched 16-query call.
                    let lo = (step * BATCH) % (pairs.len() - BATCH);
                    service.batch_distances(*scene, &pairs[lo..lo + BATCH]).expect("valid batch");
                } else {
                    let (a, b) = pairs[step % pairs.len()];
                    service.distance(*scene, a, b).expect("valid query");
                }
                lat.push(t0.elapsed().as_nanos() as u64);
                ops += 1;
                step = step.wrapping_add(1);
            }
            (ops, lat)
        }));
    }
    let mut total_ops = 0u64;
    let mut latencies = Vec::new();
    for handle in handles {
        let (ops, lat) = handle.join().expect("bench client");
        total_ops += ops;
        latencies.extend(lat);
    }
    latencies.sort_unstable();
    (total_ops, start.elapsed(), latencies)
}

fn main() {
    let measure = budget();
    println!(
        "e12_server_load: {CLIENTS} clients, {SCENES} scenes, mixed traffic (3:1 single:batch16), {} ms/config",
        measure.as_millis()
    );
    println!("{:<28} {:>10} {:>10} {:>10} {:>10}", "config", "qps", "p50_us", "p99_us", "p999_us");
    for &shards in &[1usize, 2, 4] {
        for &window_us in &[0u64, 200] {
            let loaded = setup(shards, Duration::from_micros(window_us));
            let (ops, elapsed, lat) = drive(&loaded, measure);
            let qps = ops as f64 / elapsed.as_secs_f64();
            println!(
                "{:<28} {:>10.0} {:>10.1} {:>10.1} {:>10.1}",
                format!("shards={shards}/window={window_us}us"),
                qps,
                percentile(&lat, 0.50) as f64 / 1e3,
                percentile(&lat, 0.99) as f64 / 1e3,
                percentile(&lat, 0.999) as f64 / 1e3,
            );
        }
    }
}
