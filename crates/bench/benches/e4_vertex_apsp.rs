//! E4 — Section 6: the V_R-to-V_R and B(P)-to-V_R structures.
//! Paper claim: O(n^2 log n)-ish work overall; the bench sweeps n for the
//! parallel builder and the boundary-to-vertex structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::apsp::{BoundaryToVertex, VertexApsp};
use rsp_geom::Point;
use rsp_workload::uniform_disjoint;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_vertex_apsp");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let w = uniform_disjoint(n, 13);
        group.bench_with_input(BenchmarkId::new("vr_to_vr_parallel", n), &w.obstacles, |b, obs| {
            b.iter(|| VertexApsp::build(obs).len())
        });
        let bbox = w.obstacles.bbox().unwrap().expand(5);
        let boundary: Vec<Point> =
            (0..32).map(|i| Point::new(bbox.xmin + (bbox.width() * i as i64) / 32, bbox.ymin)).collect();
        group.bench_with_input(BenchmarkId::new("bp_to_vr", n), &w.obstacles, |b, obs| {
            b.iter(|| BoundaryToVertex::build(obs, &boundary).vertices().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
