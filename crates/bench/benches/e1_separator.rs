//! E1 — Theorem 2: staircase separator construction.
//! Paper claim: O(log n) time, O(n) work, balance within [n/8, 7n/8], O(n) segments.
//! The bench sweeps n and records wall-clock time; balance/size are asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsp_core::separator::find_separator_unbounded;
use rsp_workload::{clustered, uniform_disjoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_separator");
    for &n in &[128usize, 512, 2048, 8192] {
        let w = uniform_disjoint(n, 1);
        group.bench_with_input(BenchmarkId::new("uniform", n), &w.obstacles, |b, obs| {
            b.iter(|| {
                let sep = find_separator_unbounded(obs).unwrap();
                assert!(sep.is_theorem2_balanced(obs.len()));
                assert!(sep.chain.num_segments() <= 2 * obs.len() + 4);
                sep.max_side()
            })
        });
        let w = clustered(n, 4, 2);
        group.bench_with_input(BenchmarkId::new("clustered", n), &w.obstacles, |b, obs| {
            b.iter(|| find_separator_unbounded(obs).map(|s| s.max_side()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
