//! Criterion benchmark harness (see benches/).
