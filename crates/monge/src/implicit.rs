//! Implicit (min,+) matrices: lazy SMAWK entry evaluation behind a
//! byte-budgeted block cache.
//!
//! A dense `α x β` product costs `O(αβ)` memory whether or not anyone ever
//! reads most of it.  [`ImplicitMongeMatrix`] stores only its two factors
//! and materialises *blocks* (rows) on demand — one SMAWK pass per row when
//! the right factor is Monge ([`min_plus_product_row`]) — keeping the
//! resident footprint bounded by a caller-chosen byte budget.  Hot query
//! regions stay materialised; cold rows are recomputed if they come back.
//!
//! The cache itself, [`BlockCache`], is deliberately generic (blocks are
//! `Arc<[Entry]>` keyed by `u64`): `rsp-core`'s distance store reuses it to
//! cache single-source distance rows, so eviction policy and byte accounting
//! live in exactly one place.

use crate::matrix::Entry;
use crate::multiply::{min_plus_product_row, min_plus_product_row_general, min_plus_product_rows};
use crate::view::MatrixAccess;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counter snapshot of a [`BlockCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block requests served from a resident block.
    pub hits: u64,
    /// Block requests that had to build the block.
    pub misses: u64,
    /// Blocks dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently held by resident blocks.
    pub resident_bytes: usize,
    /// Bytes held by blocks currently pinned against eviction.
    pub pinned_bytes: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

struct Block {
    data: Arc<[Entry]>,
    bytes: usize,
    last_used: u64,
    pins: u32,
}

/// A byte-budgeted LRU cache of `Arc<[Entry]>` blocks keyed by `u64`.
///
/// Inserting past the budget evicts least-recently-used blocks until the
/// resident total fits again — except the block just inserted, which always
/// survives its own insertion so a request can never return an evicted
/// block.  A budget smaller than one block therefore degenerates to
/// "recompute every time, keep exactly one block", which is still correct.
///
/// Blocks can additionally be *pinned* ([`BlockCache::pin`]): a pinned block
/// is never chosen as an eviction victim, which lets a batch planner
/// materialise a working set once and answer many queries against it without
/// the queries in between churning it out.  All counters use saturating
/// arithmetic so mismatched pin/unpin sequences can only stall eviction
/// accounting, never underflow it.
pub struct BlockCache {
    budget_bytes: usize,
    blocks: HashMap<u64, Block>,
    tick: u64,
    resident_bytes: usize,
    pinned_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        BlockCache {
            budget_bytes,
            blocks: HashMap::new(),
            tick: 0,
            resident_bytes: 0,
            pinned_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Resolve the block for `key`, building (and caching) it on a miss.
    pub fn get_or_insert_with(&mut self, key: u64, build: impl FnOnce() -> Vec<Entry>) -> Arc<[Entry]> {
        self.tick += 1;
        if let Some(block) = self.blocks.get_mut(&key) {
            block.last_used = self.tick;
            self.hits = self.hits.saturating_add(1);
            return Arc::clone(&block.data);
        }
        self.misses = self.misses.saturating_add(1);
        let data: Arc<[Entry]> = build().into();
        let bytes = std::mem::size_of_val(&data[..]);
        self.resident_bytes = self.resident_bytes.saturating_add(bytes);
        self.blocks.insert(key, Block { data: Arc::clone(&data), bytes, last_used: self.tick, pins: 0 });
        self.enforce_budget(key);
        data
    }

    /// Return the block for `key` if it is resident, touching its LRU slot
    /// and counting a hit; an absent key counts nothing (a probe is not a
    /// failed request — the caller decides whether to build).
    pub fn peek(&mut self, key: u64) -> Option<Arc<[Entry]>> {
        self.tick += 1;
        let block = self.blocks.get_mut(&key)?;
        block.last_used = self.tick;
        self.hits = self.hits.saturating_add(1);
        Some(Arc::clone(&block.data))
    }

    /// Pin the resident block for `key` against eviction.  Returns whether a
    /// block was pinned (false if the key is not resident).  Pins nest: each
    /// [`BlockCache::pin`] needs a matching [`BlockCache::unpin`].
    pub fn pin(&mut self, key: u64) -> bool {
        let Some(block) = self.blocks.get_mut(&key) else { return false };
        if block.pins == 0 {
            self.pinned_bytes = self.pinned_bytes.saturating_add(block.bytes);
        }
        block.pins = block.pins.saturating_add(1);
        true
    }

    /// Release one pin on `key`.  Unpinning an absent or unpinned block is a
    /// no-op (saturating), never an underflow.
    pub fn unpin(&mut self, key: u64) {
        let Some(block) = self.blocks.get_mut(&key) else { return };
        let was_pinned = block.pins > 0;
        block.pins = block.pins.saturating_sub(1);
        let now_unpinned = was_pinned && block.pins == 0;
        if now_unpinned {
            self.pinned_bytes = self.pinned_bytes.saturating_sub(block.bytes);
            // Deferred evictions: pins may have held the cache over budget.
            self.enforce_budget(key);
        }
    }

    /// Evict unpinned LRU blocks (sparing `protect`) until the resident
    /// total fits the budget or no victim remains.
    fn enforce_budget(&mut self, protect: u64) {
        while self.resident_bytes > self.budget_bytes && self.blocks.len() > 1 {
            let Some(victim) = self
                .blocks
                .iter()
                .filter(|&(&k, b)| k != protect && b.pins == 0)
                .min_by_key(|(_, b)| b.last_used)
                .map(|(&k, _)| k)
            else {
                break; // everything else is pinned; stay over budget for now
            };
            let gone = self.blocks.remove(&victim).expect("victim key was just observed");
            self.resident_bytes = self.resident_bytes.saturating_sub(gone.bytes);
            self.evictions = self.evictions.saturating_add(1);
        }
    }

    /// Seed the cache with an already-built block, without counting a hit or
    /// a miss (the block was not requested — it was *carried over*, e.g. from
    /// a previous epoch's cache during a scene edit).  Replaces any resident
    /// block under the same key, then enforces the budget.
    pub fn seed(&mut self, key: u64, data: Arc<[Entry]>) {
        self.tick += 1;
        let bytes = std::mem::size_of_val(&data[..]);
        if let Some(old) = self.blocks.insert(key, Block { data, bytes, last_used: self.tick, pins: 0 }) {
            self.resident_bytes = self.resident_bytes.saturating_sub(old.bytes);
            if old.pins > 0 {
                self.pinned_bytes = self.pinned_bytes.saturating_sub(old.bytes);
            }
        }
        self.resident_bytes = self.resident_bytes.saturating_add(bytes);
        self.enforce_budget(key);
    }

    /// Drop every resident block for which `keep` returns false.  Returns
    /// how many blocks were dropped.  Invalidations are not evictions (the
    /// blocks did not lose a budget race — they became wrong) so the
    /// eviction counter is untouched.
    pub fn invalidate_if(&mut self, mut keep: impl FnMut(u64, &[Entry]) -> bool) -> usize {
        let doomed: Vec<u64> = self.blocks.iter().filter(|&(&k, b)| !keep(k, &b.data)).map(|(&k, _)| k).collect();
        for k in &doomed {
            let gone = self.blocks.remove(k).expect("doomed key was just observed");
            self.resident_bytes = self.resident_bytes.saturating_sub(gone.bytes);
            if gone.pins > 0 {
                self.pinned_bytes = self.pinned_bytes.saturating_sub(gone.bytes);
            }
        }
        doomed.len()
    }

    /// Snapshot of every resident block (key, data), in unspecified order.
    /// Cheap: clones the `Arc`s, not the entries.  Does not touch LRU slots
    /// or counters — enumeration is not a request.
    pub fn snapshot(&self) -> Vec<(u64, Arc<[Entry]>)> {
        self.blocks.iter().map(|(&k, b)| (k, Arc::clone(&b.data))).collect()
    }

    /// Bytes currently held by resident blocks.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Bytes currently pinned against eviction.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            pinned_bytes: self.pinned_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

/// A lazily evaluated (min,+) product `A * B` that never materialises
/// itself: rows are computed on demand by one SMAWK pass each (when `B` is
/// Monge) and cached in a byte-budgeted [`BlockCache`].  Entries are
/// bitwise-identical to the eager [`min_plus_parallel`]
/// (see [`min_plus_product_row`] for why).
///
/// [`min_plus_parallel`]: crate::multiply::min_plus_parallel
pub struct ImplicitMongeMatrix<A, B> {
    a: A,
    b: B,
    monge: bool,
    cache: Mutex<BlockCache>,
}

impl<A: MatrixAccess, B: MatrixAccess> ImplicitMongeMatrix<A, B> {
    /// The lazy product of two factors the caller certifies as Monge (the
    /// situation Lemma 3 creates: both factors are boundary path-length
    /// matrices across a separator).
    pub fn product(a: A, b: B, budget_bytes: usize) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        ImplicitMongeMatrix { a, b, monge: true, cache: Mutex::new(BlockCache::new(budget_bytes)) }
    }

    /// The lazy product of factors with no Monge guarantee: rows cost a full
    /// `O(cols(B) · cols(A))` scan instead of a SMAWK pass.
    pub fn product_general(a: A, b: B, budget_bytes: usize) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        ImplicitMongeMatrix { a, b, monge: false, cache: Mutex::new(BlockCache::new(budget_bytes)) }
    }

    /// Number of rows of the (never materialised) product.
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of columns of the product.
    pub fn cols(&self) -> usize {
        self.b.cols()
    }

    /// Row `i` of the product, materialised on first use and cached while
    /// the byte budget allows.
    pub fn row(&self, i: usize) -> Arc<[Entry]> {
        assert!(i < self.rows(), "row out of range");
        let mut cache = self.cache.lock().expect("implicit product cache poisoned");
        cache.get_or_insert_with(i as u64, || {
            if self.monge {
                min_plus_product_row(&self.a, &self.b, i)
            } else {
                min_plus_product_row_general(&self.a, &self.b, i)
            }
        })
    }

    /// Entry `(i, j)` of the product.
    pub fn at(&self, i: usize, j: usize) -> Entry {
        assert!(j < self.cols(), "column out of range");
        self.row(i)[j]
    }

    /// Materialise a batch of rows at once, in request order.
    ///
    /// Resident rows are served from the cache (counting hits); the missing
    /// ones are computed together through [`min_plus_product_rows`], which
    /// reuses the SMAWK-reduced column set between adjacent rows instead of
    /// re-reducing from scratch per row, then inserted (counting one miss
    /// each).  The returned `Arc`s keep every requested row alive even when
    /// the byte budget forces some of them straight back out of the cache,
    /// so correctness never depends on the budget.
    pub fn rows_batch(&self, rows: &[usize]) -> Vec<Arc<[Entry]>> {
        for &i in rows {
            assert!(i < self.rows(), "row out of range");
        }
        let mut distinct: Vec<usize> = rows.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut cache = self.cache.lock().expect("implicit product cache poisoned");
        let mut handles: HashMap<usize, Arc<[Entry]>> = HashMap::with_capacity(distinct.len());
        let missing: Vec<usize> = distinct
            .into_iter()
            .filter(|&i| match cache.peek(i as u64) {
                Some(data) => {
                    handles.insert(i, data);
                    false
                }
                None => true,
            })
            .collect();
        let built = if self.monge {
            min_plus_product_rows(&self.a, &self.b, &missing)
        } else {
            missing.iter().map(|&i| min_plus_product_row_general(&self.a, &self.b, i)).collect()
        };
        for (&i, data) in missing.iter().zip(built) {
            let handle = cache.get_or_insert_with(i as u64, || data);
            handles.insert(i, handle);
        }
        rows.iter().map(|i| Arc::clone(&handles[i])).collect()
    }

    /// Cache counter snapshot (resident bytes, hit/miss/eviction counts).
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.cache.lock().expect("implicit product cache poisoned").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MinPlusMatrix;
    use crate::monge::distance_monge;
    use crate::multiply::{min_plus_naive, min_plus_parallel};

    fn random_monge(rows: usize, cols: usize, seed: u64) -> MinPlusMatrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(-200..200)).collect();
        let mut ys: Vec<i64> = (0..cols).map(|_| rng.gen_range(-200..200)).collect();
        xs.sort();
        ys.sort();
        distance_monge(&xs, &ys, rng.gen_range(0..30))
    }

    #[test]
    fn implicit_product_is_bitwise_equal_to_eager() {
        for seed in 0..6 {
            let a = random_monge(10, 7, seed);
            let b = random_monge(7, 12, seed + 31);
            let eager = min_plus_parallel(&a, &b);
            let lazy = ImplicitMongeMatrix::product(&a, &b, usize::MAX);
            assert_eq!((lazy.rows(), lazy.cols()), (eager.rows(), eager.cols()));
            for i in 0..eager.rows() {
                for j in 0..eager.cols() {
                    assert_eq!(lazy.at(i, j), eager.get(i, j), "seed {seed} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn general_mode_handles_non_monge_factors() {
        // The (min,+) identity is not Monge; the general row scan still
        // multiplies it correctly.
        let a = random_monge(5, 4, 3);
        let id = MinPlusMatrix::from_fn(4, 4, |i, j| if i == j { 0 } else { crate::matrix::INF });
        let lazy = ImplicitMongeMatrix::product_general(&a, &id, usize::MAX);
        let truth = min_plus_naive(&a, &id);
        for i in 0..a.rows() {
            for j in 0..id.cols() {
                assert_eq!(lazy.at(i, j), truth.get(i, j));
            }
        }
    }

    #[test]
    fn budget_bounds_residency_and_counts_evictions() {
        let a = random_monge(16, 8, 7);
        let b = random_monge(8, 64, 8);
        let row_bytes = 64 * std::mem::size_of::<Entry>();
        // Room for three rows.
        let lazy = ImplicitMongeMatrix::product(&a, &b, 3 * row_bytes);
        for i in 0..16 {
            let _ = lazy.row(i);
        }
        let stats = lazy.cache_stats();
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 13, "16 rows through a 3-row budget");
        assert!(stats.resident_bytes <= 3 * row_bytes);
        // Re-reading a resident row is a hit; values survive eviction.
        let _ = lazy.row(15);
        assert_eq!(lazy.cache_stats().hits, 1);
        let eager = min_plus_parallel(&a, &b);
        for i in 0..16 {
            assert_eq!(&lazy.row(i)[..], eager.row(i), "row {i} after churn");
        }
    }

    #[test]
    fn batched_rows_match_single_rows_and_count_one_miss_each() {
        let a = random_monge(20, 9, 21);
        let b = random_monge(9, 33, 22);
        let row_bytes = 33 * std::mem::size_of::<Entry>();
        let lazy = ImplicitMongeMatrix::product(&a, &b, 2 * row_bytes);
        let eager = min_plus_parallel(&a, &b);
        // Duplicates and arbitrary order are allowed; results in request order.
        let request = [5usize, 2, 17, 2, 9, 5];
        let batch = lazy.rows_batch(&request);
        for (out, &i) in batch.iter().zip(&request) {
            assert_eq!(&out[..], eager.row(i), "row {i}");
        }
        let stats = lazy.cache_stats();
        assert_eq!(stats.misses, 4, "one sweep per distinct row");
        assert!(stats.resident_bytes <= 2 * row_bytes, "budget still enforced");
        // General (non-Monge) mode goes through the per-row scan but must
        // agree bitwise as well.
        let general = ImplicitMongeMatrix::product_general(&a, &b, usize::MAX);
        for (out, &i) in general.rows_batch(&request).iter().zip(&request) {
            assert_eq!(&out[..], eager.row(i), "general row {i}");
        }
    }

    #[test]
    fn pinned_blocks_survive_churn_and_unpin_restores_eviction() {
        let row_bytes = 4 * std::mem::size_of::<Entry>();
        let mut cache = BlockCache::new(2 * row_bytes);
        let _ = cache.get_or_insert_with(0, || vec![0; 4]);
        assert!(cache.pin(0), "resident block must pin");
        assert_eq!(cache.stats().pinned_bytes, row_bytes);
        // Churn many other blocks through the remaining single-row headroom:
        // the pinned block must never be the victim.
        for k in 1..10u64 {
            let _ = cache.get_or_insert_with(k, || vec![k as Entry; 4]);
        }
        assert!(cache.peek(0).is_some(), "pinned block evicted under churn");
        assert!(cache.resident_bytes() <= 2 * row_bytes);
        cache.unpin(0);
        assert_eq!(cache.stats().pinned_bytes, 0);
        // With the pin gone the block is evictable again.
        for k in 10..14u64 {
            let _ = cache.get_or_insert_with(k, || vec![k as Entry; 4]);
        }
        assert!(cache.peek(0).is_none(), "unpinned LRU block should churn out");
    }

    #[test]
    fn pins_past_budget_stall_eviction_without_underflow() {
        let row_bytes = 4 * std::mem::size_of::<Entry>();
        let mut cache = BlockCache::new(row_bytes); // budget: one row
        for k in 0..3u64 {
            let _ = cache.get_or_insert_with(k, || vec![k as Entry; 4]);
            cache.pin(k);
        }
        // Everything is pinned: over budget, but nothing evictable.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().pinned_bytes, 3 * row_bytes);
        // Redundant unpins saturate instead of underflowing.
        for _ in 0..5 {
            cache.unpin(7); // absent key
            cache.unpin(2);
        }
        assert!(cache.stats().pinned_bytes <= 2 * row_bytes);
        cache.unpin(0);
        cache.unpin(1);
        assert_eq!(cache.stats().pinned_bytes, 0);
        assert!(cache.resident_bytes() <= 2 * row_bytes, "deferred evictions ran");
    }

    #[test]
    fn seed_and_invalidate_carry_blocks_without_counting_requests() {
        let row_bytes = 4 * std::mem::size_of::<Entry>();
        let mut cache = BlockCache::new(8 * row_bytes);
        for k in 0..4u64 {
            cache.seed(k, vec![k as Entry; 4].into());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 0, 0));
        assert_eq!(cache.resident_bytes(), 4 * row_bytes);
        // Re-seeding a key replaces without double counting bytes.
        cache.seed(2, vec![9; 4].into());
        assert_eq!(cache.resident_bytes(), 4 * row_bytes);
        assert_eq!(cache.peek(2).unwrap()[0], 9);
        // Snapshot enumerates everything without touching counters.
        let mut keys: Vec<u64> = cache.snapshot().into_iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        // Invalidate odd keys; stale blocks leave residency but are not
        // "evictions".
        let dropped = cache.invalidate_if(|k, _| k % 2 == 0);
        assert_eq!(dropped, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.resident_bytes(), 2 * row_bytes);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn invalidating_a_pinned_block_releases_its_pinned_bytes() {
        let row_bytes = 4 * std::mem::size_of::<Entry>();
        let mut cache = BlockCache::new(8 * row_bytes);
        cache.seed(0, vec![0; 4].into());
        cache.pin(0);
        assert_eq!(cache.pinned_bytes(), row_bytes);
        assert_eq!(cache.invalidate_if(|_, _| false), 1);
        assert_eq!(cache.pinned_bytes(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn seeding_past_the_budget_still_enforces_it() {
        let row_bytes = 4 * std::mem::size_of::<Entry>();
        let mut cache = BlockCache::new(2 * row_bytes);
        for k in 0..6u64 {
            cache.seed(k, vec![k as Entry; 4].into());
        }
        assert!(cache.resident_bytes() <= 2 * row_bytes);
        assert!(cache.peek(5).is_some(), "the newest seed survives its own insertion");
    }

    #[test]
    fn peek_counts_hits_only_for_resident_blocks() {
        let mut cache = BlockCache::new(usize::MAX);
        assert!(cache.peek(3).is_none());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
        let _ = cache.get_or_insert_with(3, || vec![1, 2, 3]);
        assert!(cache.peek(3).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sub_row_budget_keeps_exactly_one_block() {
        let a = random_monge(6, 5, 11);
        let b = random_monge(5, 40, 12);
        let lazy = ImplicitMongeMatrix::product(&a, &b, 1);
        for i in 0..6 {
            let _ = lazy.row(i);
        }
        let stats = lazy.cache_stats();
        assert_eq!(stats.evictions, 5);
        assert_eq!(lazy.cache_stats().misses, 6);
        // The most recent block is pinned through its own insertion.
        let eager = min_plus_parallel(&a, &b);
        assert_eq!(&lazy.row(5)[..], eager.row(5));
    }
}
