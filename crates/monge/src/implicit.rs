//! Implicit (min,+) matrices: lazy SMAWK entry evaluation behind a
//! byte-budgeted block cache.
//!
//! A dense `α x β` product costs `O(αβ)` memory whether or not anyone ever
//! reads most of it.  [`ImplicitMongeMatrix`] stores only its two factors
//! and materialises *blocks* (rows) on demand — one SMAWK pass per row when
//! the right factor is Monge ([`min_plus_product_row`]) — keeping the
//! resident footprint bounded by a caller-chosen byte budget.  Hot query
//! regions stay materialised; cold rows are recomputed if they come back.
//!
//! The cache itself, [`BlockCache`], is deliberately generic (blocks are
//! `Arc<[Entry]>` keyed by `u64`): `rsp-core`'s distance store reuses it to
//! cache single-source distance rows, so eviction policy and byte accounting
//! live in exactly one place.

use crate::matrix::Entry;
use crate::multiply::{min_plus_product_row, min_plus_product_row_general};
use crate::view::MatrixAccess;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counter snapshot of a [`BlockCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block requests served from a resident block.
    pub hits: u64,
    /// Block requests that had to build the block.
    pub misses: u64,
    /// Blocks dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently held by resident blocks.
    pub resident_bytes: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

struct Block {
    data: Arc<[Entry]>,
    bytes: usize,
    last_used: u64,
}

/// A byte-budgeted LRU cache of `Arc<[Entry]>` blocks keyed by `u64`.
///
/// Inserting past the budget evicts least-recently-used blocks until the
/// resident total fits again — except the block just inserted, which always
/// survives its own insertion so a request can never return an evicted
/// block.  A budget smaller than one block therefore degenerates to
/// "recompute every time, keep exactly one block", which is still correct.
pub struct BlockCache {
    budget_bytes: usize,
    blocks: HashMap<u64, Block>,
    tick: u64,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        BlockCache {
            budget_bytes,
            blocks: HashMap::new(),
            tick: 0,
            resident_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Resolve the block for `key`, building (and caching) it on a miss.
    pub fn get_or_insert_with(&mut self, key: u64, build: impl FnOnce() -> Vec<Entry>) -> Arc<[Entry]> {
        self.tick += 1;
        if let Some(block) = self.blocks.get_mut(&key) {
            block.last_used = self.tick;
            self.hits += 1;
            return Arc::clone(&block.data);
        }
        self.misses += 1;
        let data: Arc<[Entry]> = build().into();
        let bytes = std::mem::size_of_val(&data[..]);
        self.resident_bytes += bytes;
        self.blocks.insert(key, Block { data: Arc::clone(&data), bytes, last_used: self.tick });
        while self.resident_bytes > self.budget_bytes && self.blocks.len() > 1 {
            let victim = self
                .blocks
                .iter()
                .filter(|&(&k, _)| k != key)
                .min_by_key(|(_, b)| b.last_used)
                .map(|(&k, _)| k)
                .expect("len > 1 guarantees a victim besides the protected key");
            let gone = self.blocks.remove(&victim).expect("victim key was just observed");
            self.resident_bytes -= gone.bytes;
            self.evictions += 1;
        }
        data
    }

    /// Bytes currently held by resident blocks.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

/// A lazily evaluated (min,+) product `A * B` that never materialises
/// itself: rows are computed on demand by one SMAWK pass each (when `B` is
/// Monge) and cached in a byte-budgeted [`BlockCache`].  Entries are
/// bitwise-identical to the eager [`min_plus_parallel`]
/// (see [`min_plus_product_row`] for why).
///
/// [`min_plus_parallel`]: crate::multiply::min_plus_parallel
pub struct ImplicitMongeMatrix<A, B> {
    a: A,
    b: B,
    monge: bool,
    cache: Mutex<BlockCache>,
}

impl<A: MatrixAccess, B: MatrixAccess> ImplicitMongeMatrix<A, B> {
    /// The lazy product of two factors the caller certifies as Monge (the
    /// situation Lemma 3 creates: both factors are boundary path-length
    /// matrices across a separator).
    pub fn product(a: A, b: B, budget_bytes: usize) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        ImplicitMongeMatrix { a, b, monge: true, cache: Mutex::new(BlockCache::new(budget_bytes)) }
    }

    /// The lazy product of factors with no Monge guarantee: rows cost a full
    /// `O(cols(B) · cols(A))` scan instead of a SMAWK pass.
    pub fn product_general(a: A, b: B, budget_bytes: usize) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        ImplicitMongeMatrix { a, b, monge: false, cache: Mutex::new(BlockCache::new(budget_bytes)) }
    }

    /// Number of rows of the (never materialised) product.
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of columns of the product.
    pub fn cols(&self) -> usize {
        self.b.cols()
    }

    /// Row `i` of the product, materialised on first use and cached while
    /// the byte budget allows.
    pub fn row(&self, i: usize) -> Arc<[Entry]> {
        assert!(i < self.rows(), "row out of range");
        let mut cache = self.cache.lock().expect("implicit product cache poisoned");
        cache.get_or_insert_with(i as u64, || {
            if self.monge {
                min_plus_product_row(&self.a, &self.b, i)
            } else {
                min_plus_product_row_general(&self.a, &self.b, i)
            }
        })
    }

    /// Entry `(i, j)` of the product.
    pub fn at(&self, i: usize, j: usize) -> Entry {
        assert!(j < self.cols(), "column out of range");
        self.row(i)[j]
    }

    /// Cache counter snapshot (resident bytes, hit/miss/eviction counts).
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.cache.lock().expect("implicit product cache poisoned").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MinPlusMatrix;
    use crate::monge::distance_monge;
    use crate::multiply::{min_plus_naive, min_plus_parallel};

    fn random_monge(rows: usize, cols: usize, seed: u64) -> MinPlusMatrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(-200..200)).collect();
        let mut ys: Vec<i64> = (0..cols).map(|_| rng.gen_range(-200..200)).collect();
        xs.sort();
        ys.sort();
        distance_monge(&xs, &ys, rng.gen_range(0..30))
    }

    #[test]
    fn implicit_product_is_bitwise_equal_to_eager() {
        for seed in 0..6 {
            let a = random_monge(10, 7, seed);
            let b = random_monge(7, 12, seed + 31);
            let eager = min_plus_parallel(&a, &b);
            let lazy = ImplicitMongeMatrix::product(&a, &b, usize::MAX);
            assert_eq!((lazy.rows(), lazy.cols()), (eager.rows(), eager.cols()));
            for i in 0..eager.rows() {
                for j in 0..eager.cols() {
                    assert_eq!(lazy.at(i, j), eager.get(i, j), "seed {seed} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn general_mode_handles_non_monge_factors() {
        // The (min,+) identity is not Monge; the general row scan still
        // multiplies it correctly.
        let a = random_monge(5, 4, 3);
        let id = MinPlusMatrix::from_fn(4, 4, |i, j| if i == j { 0 } else { crate::matrix::INF });
        let lazy = ImplicitMongeMatrix::product_general(&a, &id, usize::MAX);
        let truth = min_plus_naive(&a, &id);
        for i in 0..a.rows() {
            for j in 0..id.cols() {
                assert_eq!(lazy.at(i, j), truth.get(i, j));
            }
        }
    }

    #[test]
    fn budget_bounds_residency_and_counts_evictions() {
        let a = random_monge(16, 8, 7);
        let b = random_monge(8, 64, 8);
        let row_bytes = 64 * std::mem::size_of::<Entry>();
        // Room for three rows.
        let lazy = ImplicitMongeMatrix::product(&a, &b, 3 * row_bytes);
        for i in 0..16 {
            let _ = lazy.row(i);
        }
        let stats = lazy.cache_stats();
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 13, "16 rows through a 3-row budget");
        assert!(stats.resident_bytes <= 3 * row_bytes);
        // Re-reading a resident row is a hit; values survive eviction.
        let _ = lazy.row(15);
        assert_eq!(lazy.cache_stats().hits, 1);
        let eager = min_plus_parallel(&a, &b);
        for i in 0..16 {
            assert_eq!(&lazy.row(i)[..], eager.row(i), "row {i} after churn");
        }
    }

    #[test]
    fn sub_row_budget_keeps_exactly_one_block() {
        let a = random_monge(6, 5, 11);
        let b = random_monge(5, 40, 12);
        let lazy = ImplicitMongeMatrix::product(&a, &b, 1);
        for i in 0..6 {
            let _ = lazy.row(i);
        }
        let stats = lazy.cache_stats();
        assert_eq!(stats.evictions, 5);
        assert_eq!(lazy.cache_stats().misses, 6);
        // The most recent block is pinned through its own insertion.
        let eager = min_plus_parallel(&a, &b);
        assert_eq!(&lazy.row(5)[..], eager.row(5));
    }
}
