//! Borrowing views over (min,+) matrices.
//!
//! The divide-and-conquer merge used to extract its (min,+) product factors
//! with [`MinPlusMatrix::submatrix`], copying `O(|rows| · |cols|)` entries
//! per recursion node even though the Monge check and the product read each
//! entry only a handful of times.  These views make block extraction free:
//!
//! * [`MatrixAccess`] — the read-only matrix interface everything in this
//!   crate is generic over (the Monge predicate, SMAWK-based products, the
//!   implicit product of [`implicit`](crate::implicit));
//! * [`SubmatrixView`] — a borrowed block `(row_ids × col_ids)` of a base
//!   matrix, resolving `(i, j)` through the index slices on the fly;
//! * [`PaddedView`] — a matrix conceptually extended with `INF` entries
//!   (the Lemma 4 padding trick) without materialising the padding.

use crate::matrix::{Entry, MinPlusMatrix, INF};

/// Read-only access to an `rows x cols` (min,+) matrix.  Implemented by the
/// dense [`MinPlusMatrix`] and by the borrowing views of this module, so
/// algorithms written against it work on owned matrices and views alike.
pub trait MatrixAccess {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Entry at `(i, j)`.
    fn at(&self, i: usize, j: usize) -> Entry;
    /// Row `i` as a contiguous slice, when the representation stores one.
    ///
    /// The default is `None` (views resolve entries through index
    /// indirection and have no contiguous storage); dense matrices return
    /// their backing row so blocked kernels can stream it without per-entry
    /// bounds checks.  Implementations must return exactly
    /// `at(i, 0..cols())` — callers treat the slice as a pure fast path.
    #[inline]
    fn row_slice(&self, _i: usize) -> Option<&[Entry]> {
        None
    }
}

impl MatrixAccess for MinPlusMatrix {
    fn rows(&self) -> usize {
        MinPlusMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        MinPlusMatrix::cols(self)
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> Entry {
        self.get(i, j)
    }
    #[inline]
    fn row_slice(&self, i: usize) -> Option<&[Entry]> {
        Some(self.row(i))
    }
}

impl<M: MatrixAccess + ?Sized> MatrixAccess for &M {
    fn rows(&self) -> usize {
        (**self).rows()
    }
    fn cols(&self) -> usize {
        (**self).cols()
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> Entry {
        (**self).at(i, j)
    }
    #[inline]
    fn row_slice(&self, i: usize) -> Option<&[Entry]> {
        (**self).row_slice(i)
    }
}

/// A borrowed submatrix: row `i` of the view is row `row_ids[i]` of the base
/// matrix, and likewise for columns.  Construction validates the index
/// slices once; every access is then two slice lookups plus the base access.
pub struct SubmatrixView<'a> {
    base: &'a MinPlusMatrix,
    row_ids: &'a [usize],
    col_ids: &'a [usize],
}

impl<'a> SubmatrixView<'a> {
    /// View the block of `base` selected by `row_ids` and `col_ids` (both
    /// must be in range; duplicates and arbitrary order are allowed, as in
    /// [`MinPlusMatrix::submatrix`]).
    pub fn new(base: &'a MinPlusMatrix, row_ids: &'a [usize], col_ids: &'a [usize]) -> Self {
        assert!(row_ids.iter().all(|&i| i < base.rows()), "row id out of range");
        assert!(col_ids.iter().all(|&j| j < base.cols()), "col id out of range");
        SubmatrixView { base, row_ids, col_ids }
    }

    /// Materialise the view as an owned matrix (rarely needed; the point of
    /// the view is *not* doing this on hot paths).
    pub fn to_matrix(&self) -> MinPlusMatrix {
        MinPlusMatrix::from_fn(self.rows(), self.cols(), |i, j| self.at(i, j))
    }
}

impl MatrixAccess for SubmatrixView<'_> {
    fn rows(&self) -> usize {
        self.row_ids.len()
    }
    fn cols(&self) -> usize {
        self.col_ids.len()
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> Entry {
        self.base.get(self.row_ids[i], self.col_ids[j])
    }
}

/// A matrix conceptually padded with `INF` up to `rows x cols` (Lemma 4);
/// the padding entries are computed, never stored.
pub struct PaddedView<'a, M: MatrixAccess> {
    base: &'a M,
    rows: usize,
    cols: usize,
}

impl<'a, M: MatrixAccess> PaddedView<'a, M> {
    /// Pad `base` to `rows x cols` (must each be at least the base size).
    pub fn new(base: &'a M, rows: usize, cols: usize) -> Self {
        assert!(rows >= base.rows() && cols >= base.cols(), "padding cannot shrink the matrix");
        PaddedView { base, rows, cols }
    }
}

impl<M: MatrixAccess> MatrixAccess for PaddedView<'_, M> {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> Entry {
        if i < self.base.rows() && j < self.base.cols() {
            self.base.at(i, j)
        } else {
            INF
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monge::is_monge;

    #[test]
    fn submatrix_view_matches_owned_extraction() {
        let m = MinPlusMatrix::from_fn(5, 6, |i, j| (i * 6 + j) as Entry);
        let rows = [0usize, 2, 4];
        let cols = [1usize, 1, 5];
        let view = SubmatrixView::new(&m, &rows, &cols);
        let owned = m.submatrix(&rows, &cols);
        assert_eq!((view.rows(), view.cols()), (owned.rows(), owned.cols()));
        for i in 0..view.rows() {
            for j in 0..view.cols() {
                assert_eq!(view.at(i, j), owned.get(i, j));
            }
        }
        assert_eq!(view.to_matrix(), owned);
    }

    #[test]
    fn padded_view_matches_pad_to() {
        let m = MinPlusMatrix::from_rows(vec![vec![1, 9], vec![7, 3]]);
        let view = PaddedView::new(&m, 4, 3);
        let owned = m.pad_to(4, 3);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(view.at(i, j), owned.get(i, j));
            }
        }
        // Padding preserves the Monge property (Lemma 4), checked through
        // the generic predicate without materialising anything.
        let monge = crate::monge::distance_monge(&[0, 3, 7], &[1, 5], 2);
        assert!(is_monge(&PaddedView::new(&monge, 5, 4)));
    }

    #[test]
    fn row_slice_is_dense_only_and_agrees_with_at() {
        let m = MinPlusMatrix::from_fn(4, 5, |i, j| (3 * i + j) as Entry);
        let by_ref = &m;
        for i in 0..4 {
            let slice = m.row_slice(i).expect("dense matrices expose rows");
            let via_ref =
                <&MinPlusMatrix as MatrixAccess>::row_slice(&by_ref, i).expect("references forward the slice");
            assert_eq!(slice, via_ref);
            for (j, &v) in slice.iter().enumerate() {
                assert_eq!(v, m.at(i, j));
            }
        }
        let rows = [0usize, 2];
        let cols = [1usize, 3];
        let view = SubmatrixView::new(&m, &rows, &cols);
        assert!(view.row_slice(0).is_none(), "views have no contiguous rows");
        assert!(PaddedView::new(&m, 6, 6).row_slice(0).is_none());
    }

    #[test]
    #[should_panic(expected = "row id out of range")]
    fn submatrix_view_validates_indices() {
        let m = MinPlusMatrix::infinity(2, 2);
        let _ = SubmatrixView::new(&m, &[2], &[0]);
    }
}
