//! SMAWK row minima of totally monotone matrices.
//!
//! This is the classical ingredient behind Lemma 3 of the paper (fast
//! multiplication of Monge matrices, via Aggarwal–Park [1] / Apostolico et
//! al. [3]): the row-minima of an `n x m` totally monotone matrix can be
//! found with `O(n + m)` evaluations.  The matrix is given implicitly by an
//! evaluation closure so that the product matrices `A(i,k) + B(k,j)` never
//! need to be materialised.

use crate::matrix::Entry;

/// Compute, for each row `i` of an implicitly defined `rows x cols` totally
/// monotone matrix, the index of the leftmost column attaining the row
/// minimum.
pub fn smawk_row_minima(rows: usize, cols: usize, eval: &impl Fn(usize, usize) -> Entry) -> Vec<usize> {
    if rows == 0 {
        return Vec::new();
    }
    assert!(cols > 0, "matrix must have at least one column");
    let all_rows: Vec<usize> = (0..rows).collect();
    let all_cols: Vec<usize> = (0..cols).collect();
    let mut result = vec![0usize; rows];
    smawk_rec(&all_rows, &all_cols, eval, &mut result);
    result
}

fn smawk_rec(rows: &[usize], cols: &[usize], eval: &impl Fn(usize, usize) -> Entry, result: &mut [usize]) {
    if rows.is_empty() {
        return;
    }
    // REDUCE: prune columns that cannot contain any row minimum, keeping at
    // most |rows| columns.
    let cols = reduce(rows, cols, eval);
    if rows.len() == 1 {
        let r = rows[0];
        let mut best = cols[0];
        for &c in &cols[1..] {
            if eval(r, c) < eval(r, best) {
                best = c;
            }
        }
        result[r] = best;
        return;
    }
    // Recurse on the even-indexed rows.
    let even_rows: Vec<usize> = rows.iter().copied().step_by(2).collect();
    smawk_rec(&even_rows, &cols, eval, result);
    // INTERPOLATE: fill in the odd rows, scanning between the minima of the
    // neighbouring even rows.
    let col_pos: Vec<usize> = cols.to_vec();
    let mut start_idx = 0usize;
    for (odd_i, &r) in rows.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
        // column of the previous even row's minimum
        let lo_col = result[rows[odd_i - 1]];
        let hi_col = if odd_i + 1 < rows.len() { result[rows[odd_i + 1]] } else { *col_pos.last().unwrap() };
        // advance start_idx to lo_col
        while col_pos[start_idx] != lo_col {
            start_idx += 1;
        }
        let mut best = col_pos[start_idx];
        let mut k = start_idx;
        while col_pos[k] != hi_col {
            k += 1;
            let c = col_pos[k];
            if eval(r, c) < eval(r, best) {
                best = c;
            }
        }
        result[r] = best;
    }
}

/// The REDUCE step of SMAWK: returns a subset of `cols` of size at most
/// `|rows|` that still contains every row's minimum column.
fn reduce(rows: &[usize], cols: &[usize], eval: &impl Fn(usize, usize) -> Entry) -> Vec<usize> {
    let n = rows.len();
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    for &c in cols {
        loop {
            if stack.is_empty() {
                break;
            }
            let r = rows[stack.len() - 1];
            let top = *stack.last().unwrap();
            // If the new column beats the stack top in the row where the top
            // was still allowed to win, the top can never be a minimum.
            if eval(r, c) < eval(r, top) {
                stack.pop();
            } else {
                break;
            }
        }
        if stack.len() < n {
            stack.push(c);
        }
    }
    stack
}

/// Reference implementation: brute-force leftmost row minima.  Used by tests
/// and as a fallback for matrices that are not totally monotone.
pub fn brute_force_row_minima(rows: usize, cols: usize, eval: &impl Fn(usize, usize) -> Entry) -> Vec<usize> {
    (0..rows)
        .map(|i| {
            let mut best = 0usize;
            for j in 1..cols {
                if eval(i, j) < eval(i, best) {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monge::distance_monge;

    #[test]
    fn simple_monge_matrix() {
        let m = distance_monge(&[0, 2, 4, 9, 13], &[1, 3, 5, 6, 10, 14], 0);
        let eval = |i: usize, j: usize| m.get(i, j);
        let fast = smawk_row_minima(m.rows(), m.cols(), &eval);
        let brute = brute_force_row_minima(m.rows(), m.cols(), &eval);
        for i in 0..m.rows() {
            assert_eq!(eval(i, fast[i]), eval(i, brute[i]));
        }
    }

    #[test]
    fn single_row_and_column() {
        let eval = |_i: usize, j: usize| [5, 3, 9][j];
        assert_eq!(smawk_row_minima(1, 3, &eval), vec![1]);
        let eval1 = |i: usize, _j: usize| [(5), (3), (9)][i];
        assert_eq!(smawk_row_minima(3, 1, &eval1), vec![0, 0, 0]);
        assert!(smawk_row_minima(0, 3, &eval).is_empty());
    }

    #[test]
    fn wide_and_tall_random_monge() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let rows = rng.gen_range(1..40);
            let cols = rng.gen_range(1..40);
            let mut xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(-100..100)).collect();
            let mut ys: Vec<i64> = (0..cols).map(|_| rng.gen_range(-100..100)).collect();
            xs.sort();
            ys.sort();
            let m = distance_monge(&xs, &ys, rng.gen_range(0..5));
            let eval = |i: usize, j: usize| m.get(i, j);
            let fast = smawk_row_minima(rows, cols, &eval);
            let brute = brute_force_row_minima(rows, cols, &eval);
            for i in 0..rows {
                assert_eq!(eval(i, fast[i]), eval(i, brute[i]), "row {i} minima differ: {} vs {}", fast[i], brute[i]);
            }
        }
    }

    #[test]
    fn sum_of_monge_matrices_row_minima() {
        // the use-case inside the (min,+) product: A(i,k) + B(k,j) for fixed j
        let a = distance_monge(&[0, 3, 7, 12], &[1, 5, 9], 4);
        let b = distance_monge(&[1, 5, 9], &[2, 6], 3);
        for j in 0..b.cols() {
            let eval = |i: usize, k: usize| a.get(i, k) + b.get(k, j);
            let fast = smawk_row_minima(a.rows(), a.cols(), &eval);
            let brute = brute_force_row_minima(a.rows(), a.cols(), &eval);
            for i in 0..a.rows() {
                assert_eq!(eval(i, fast[i]), eval(i, brute[i]));
            }
        }
    }
}
