//! Dense (min,+) matrices of path lengths.

use std::ops::{Index, IndexMut};

/// Distance entry type (same convention as `rsp-geom`): `i64` with a large
/// sentinel for "no path / padded entry".
pub type Entry = i64;

/// The `+∞` sentinel.  Safe to add to itself without overflow.
pub const INF: Entry = i64::MAX / 4;

/// A dense row-major matrix over the (min,+) semiring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinPlusMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Entry>,
}

impl MinPlusMatrix {
    /// A matrix filled with `INF`.
    pub fn infinity(rows: usize, cols: usize) -> Self {
        MinPlusMatrix { rows, cols, data: vec![INF; rows * cols] }
    }

    /// A matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: Entry) -> Self {
        MinPlusMatrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Entry) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        MinPlusMatrix { rows, cols, data }
    }

    /// Build from nested vectors (each inner vector is a row).
    pub fn from_rows(rows: Vec<Vec<Entry>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        MinPlusMatrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row slice.
    pub fn row(&self, i: usize) -> &[Entry] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable raw row slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [Entry] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor (bounds-checked in debug builds).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Entry {
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Entry) {
        self.data[i * self.cols + j] = v;
    }

    /// Transpose.
    pub fn transpose(&self) -> MinPlusMatrix {
        MinPlusMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise minimum with another matrix of the same shape.
    pub fn pointwise_min(&self, other: &MinPlusMatrix) -> MinPlusMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        MinPlusMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a.min(b)).collect(),
        }
    }

    /// Extract the submatrix with the given row and column indices.
    pub fn submatrix(&self, row_ids: &[usize], col_ids: &[usize]) -> MinPlusMatrix {
        MinPlusMatrix::from_fn(row_ids.len(), col_ids.len(), |i, j| self.get(row_ids[i], col_ids[j]))
    }

    /// Pad to `new_rows x new_cols` with `INF` (Lemma 4's padding trick).
    pub fn pad_to(&self, new_rows: usize, new_cols: usize) -> MinPlusMatrix {
        assert!(new_rows >= self.rows && new_cols >= self.cols);
        MinPlusMatrix::from_fn(
            new_rows,
            new_cols,
            |i, j| {
                if i < self.rows && j < self.cols {
                    self.get(i, j)
                } else {
                    INF
                }
            },
        )
    }

    /// Are all entries finite (smaller than `INF`)?
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|&x| x < INF)
    }

    /// Maximum finite entry, if any.
    pub fn max_finite(&self) -> Option<Entry> {
        self.data.iter().copied().filter(|&x| x < INF).max()
    }
}

impl Index<(usize, usize)> for MinPlusMatrix {
    type Output = Entry;
    fn index(&self, (i, j): (usize, usize)) -> &Entry {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for MinPlusMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Entry {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = MinPlusMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as Entry);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 12);
        assert_eq!(m[(0, 1)], 1);
        assert_eq!(m.row(1), &[10, 11, 12]);
        let mut m = m;
        m.set(0, 0, -5);
        assert_eq!(m[(0, 0)], -5);
        m[(0, 0)] = 7;
        assert_eq!(m.get(0, 0), 7);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = MinPlusMatrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn pointwise_min_and_padding() {
        let a = MinPlusMatrix::from_rows(vec![vec![1, 9], vec![7, 3]]);
        let b = MinPlusMatrix::from_rows(vec![vec![5, 2], vec![8, 8]]);
        let m = a.pointwise_min(&b);
        assert_eq!(m, MinPlusMatrix::from_rows(vec![vec![1, 2], vec![7, 3]]));
        let p = a.pad_to(3, 4);
        assert_eq!(p.get(0, 0), 1);
        assert_eq!(p.get(2, 3), INF);
        assert!(!p.is_finite());
        assert!(a.is_finite());
        assert_eq!(p.max_finite(), Some(9));
    }

    #[test]
    fn submatrix_extraction() {
        let m = MinPlusMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as Entry);
        let s = m.submatrix(&[0, 2], &[1, 3]);
        assert_eq!(s, MinPlusMatrix::from_rows(vec![vec![1, 3], vec![9, 11]]));
    }

    #[test]
    fn infinity_matrix() {
        let m = MinPlusMatrix::infinity(2, 2);
        assert_eq!(m.max_finite(), None);
        let f = MinPlusMatrix::filled(2, 2, 7);
        assert_eq!(f.max_finite(), Some(7));
    }
}
