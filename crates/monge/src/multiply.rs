//! (min,+) matrix products — Lemmas 3, 4 and 5 of the paper.
//!
//! * [`min_plus_naive`]: the definition, `O(αγβ)` work.  Used as a baseline
//!   (this is exactly the "super-quadratic work bottleneck" the paper's
//!   Monge machinery avoids) and as a correctness oracle in tests.
//! * [`min_plus_monge`]: `O(αβ + βγ)` work using SMAWK row minima per output
//!   column — the content of Lemma 3.
//! * [`min_plus_parallel`]: the same, parallelised over output columns with
//!   rayon (in the PRAM model this is the `O(log γ)`-time algorithm of
//!   Lemma 3 after applying Brent's theorem).
//! * [`min_plus_padded`]: Lemma 4 — pad with `+∞` so the size requirements of
//!   Lemma 3 hold, multiply, then strip the padding.  The padding is implicit
//!   here because our implementation does not need the matrices to be square.

use crate::matrix::{Entry, MinPlusMatrix, INF};
use crate::smawk::{brute_force_row_minima, smawk_row_minima};
use crate::view::MatrixAccess;
use rayon::prelude::*;

pub(crate) fn sat_add(a: Entry, b: Entry) -> Entry {
    if a >= INF || b >= INF {
        INF
    } else {
        a + b
    }
}

/// Naive (min,+) product: `C(i,j) = min_k A(i,k) + B(k,j)`.
pub fn min_plus_naive(a: &MinPlusMatrix, b: &MinPlusMatrix) -> MinPlusMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = MinPlusMatrix::infinity(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k);
            if aik >= INF {
                continue;
            }
            for j in 0..b.cols() {
                let v = sat_add(aik, b.get(k, j));
                if v < c.get(i, j) {
                    c.set(i, j, v);
                }
            }
        }
    }
    c
}

/// (min,+) product exploiting the Monge property of the factors (Lemma 3):
/// for every output column `j`, the matrix `D_j(i,k) = A(i,k) + B(k,j)` is
/// totally monotone, so its row minima — which are exactly column `j` of the
/// product — are found by SMAWK with `O(α + γ)` evaluations.  Total work
/// `O(β (α + γ))`, i.e. `O(αβ)` under the size hypotheses of Lemma 3.
/// Generic over [`MatrixAccess`], so borrowed submatrix views multiply
/// without being copied out first.
pub fn min_plus_monge<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B) -> MinPlusMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = MinPlusMatrix::infinity(a.rows(), b.cols());
    if a.rows() == 0 || b.cols() == 0 || a.cols() == 0 {
        return c;
    }
    for j in 0..b.cols() {
        let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
        let minima = smawk_row_minima(a.rows(), a.cols(), &eval);
        for (i, &k) in minima.iter().enumerate() {
            c.set(i, j, eval(i, k));
        }
    }
    c
}

/// Parallel Monge product: the per-column SMAWK calls of [`min_plus_monge`]
/// are independent, so they are distributed over the rayon pool.
pub fn min_plus_parallel<A, B>(a: &A, b: &B) -> MinPlusMatrix
where
    A: MatrixAccess + Sync,
    B: MatrixAccess + Sync,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    if a.rows() == 0 || b.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    if a.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    let cols: Vec<Vec<Entry>> = (0..b.cols())
        .into_par_iter()
        .map(|j| {
            let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
            let minima = smawk_row_minima(a.rows(), a.cols(), &eval);
            (0..a.rows()).map(|i| eval(i, minima[i])).collect()
        })
        .collect();
    MinPlusMatrix::from_fn(a.rows(), b.cols(), |i, j| cols[j][i])
}

/// Safe (min,+) product for matrices that are *not* guaranteed to be totally
/// monotone: per-column brute-force row minima, parallelised over columns.
/// Work `O(αγβ)` like the naive product but with better locality and
/// parallelism.  The divide-and-conquer uses this as a fallback when a
/// factor fails the Monge check (which the paper avoids by its partitioning
/// scheme; we keep the fallback so correctness never depends on it).
pub fn min_plus_general_parallel<A, B>(a: &A, b: &B) -> MinPlusMatrix
where
    A: MatrixAccess + Sync,
    B: MatrixAccess + Sync,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    if a.rows() == 0 || b.cols() == 0 || a.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    let cols: Vec<Vec<Entry>> = (0..b.cols())
        .into_par_iter()
        .map(|j| {
            let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
            let minima = brute_force_row_minima(a.rows(), a.cols(), &eval);
            (0..a.rows()).map(|i| eval(i, minima[i])).collect()
        })
        .collect();
    MinPlusMatrix::from_fn(a.rows(), b.cols(), |i, j| cols[j][i])
}

/// One row of the (min,+) product `A * B`, computed lazily with a single
/// SMAWK pass: for fixed output row `i`, the matrix
/// `E(j, k) = A(i, k) + B(k, j)` over rows `j` (the output columns) and
/// columns `k` (the inner index) satisfies the quadrangle inequality exactly
/// when `B` does — the `A(i, ·)` terms appear on both sides and cancel — so
/// when `B` is Monge the row minima of `E` are found with
/// `O(cols(B) + cols(A))` evaluations, and `E`'s row-`j` minimum value *is*
/// entry `(i, j)` of the product.  Because a minimum is a single
/// well-defined value, the returned entries are bitwise-identical to what
/// [`min_plus_parallel`] stores, regardless of which argmin SMAWK reports.
///
/// The caller must guarantee `B` is Monge (use
/// [`min_plus_product_row_general`] otherwise).
pub fn min_plus_product_row<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B, i: usize) -> Vec<Entry> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(i < a.rows(), "row out of range");
    if b.cols() == 0 {
        return Vec::new();
    }
    if a.cols() == 0 {
        return vec![INF; b.cols()];
    }
    let eval = |j: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
    let minima = smawk_row_minima(b.cols(), a.cols(), &eval);
    (0..b.cols()).map(|j| eval(j, minima[j])).collect()
}

/// One row of the (min,+) product without any Monge assumption: a direct
/// `O(cols(B) · cols(A))` scan.
pub fn min_plus_product_row_general<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B, i: usize) -> Vec<Entry> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(i < a.rows(), "row out of range");
    (0..b.cols()).map(|j| (0..a.cols()).map(|k| sat_add(a.at(i, k), b.at(k, j))).min().unwrap_or(INF)).collect()
}

/// Lemma 4: multiply matrices of unequal sizes by conceptually padding them
/// with `+∞` to compatible square-ish shapes.  Our dense representation never
/// requires the padding to be materialised, so this is a thin wrapper kept
/// for fidelity with the paper's statement; it asserts the dimension
/// relationship of the lemma in debug builds.
pub fn min_plus_padded(a: &MinPlusMatrix, b: &MinPlusMatrix) -> MinPlusMatrix {
    debug_assert!(a.cols() == b.rows());
    min_plus_parallel(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monge::{distance_monge, is_monge};

    fn random_monge(rows: usize, cols: usize, seed: u64) -> MinPlusMatrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(-200..200)).collect();
        let mut ys: Vec<i64> = (0..cols).map(|_| rng.gen_range(-200..200)).collect();
        xs.sort();
        ys.sort();
        distance_monge(&xs, &ys, rng.gen_range(0..30))
    }

    #[test]
    fn monge_product_matches_naive() {
        for seed in 0..10 {
            let a = random_monge(9, 7, seed);
            let b = random_monge(7, 11, seed + 100);
            let naive = min_plus_naive(&a, &b);
            let fast = min_plus_monge(&a, &b);
            let par = min_plus_parallel(&a, &b);
            let gen = min_plus_general_parallel(&a, &b);
            assert_eq!(naive, fast, "seed {seed}");
            assert_eq!(naive, par, "seed {seed}");
            assert_eq!(naive, gen, "seed {seed}");
        }
    }

    #[test]
    fn product_of_monge_matrices_is_monge() {
        // Lemma 3 also asserts closure of the Monge property under (min,+).
        for seed in 20..30 {
            let a = random_monge(8, 6, seed);
            let b = random_monge(6, 9, seed + 7);
            let c = min_plus_parallel(&a, &b);
            assert!(is_monge(&c), "product lost the Monge property (seed {seed})");
        }
    }

    #[test]
    fn identity_like_behaviour() {
        // multiplying by a "diagonal" of zeros (INF off-diagonal) is identity
        let a = random_monge(5, 4, 3);
        let id = MinPlusMatrix::from_fn(4, 4, |i, j| if i == j { 0 } else { INF });
        // the identity is not Monge, so use the general product
        let c = min_plus_general_parallel(&a, &id);
        assert_eq!(c, a);
        let naive = min_plus_naive(&a, &id);
        assert_eq!(naive, a);
    }

    #[test]
    fn inf_rows_and_columns_propagate() {
        let a = MinPlusMatrix::infinity(3, 3);
        let b = random_monge(3, 3, 5);
        let c = min_plus_naive(&a, &b);
        assert!(!c.is_finite());
        assert_eq!(c, MinPlusMatrix::infinity(3, 3));
        let cp = min_plus_parallel(&a, &b);
        assert_eq!(cp, c);
    }

    #[test]
    fn degenerate_dimensions() {
        let a = MinPlusMatrix::infinity(0, 5);
        let b = MinPlusMatrix::infinity(5, 3);
        assert_eq!(min_plus_parallel(&a, &b).rows(), 0);
        let a = MinPlusMatrix::infinity(2, 0);
        let b = MinPlusMatrix::infinity(0, 3);
        let c = min_plus_parallel(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!(!c.is_finite());
    }

    #[test]
    fn triangle_inequality_composition() {
        // composing X->Z with Z->Y distance matrices gives upper bounds on
        // X->Y distances through Z; with points on a line they are exact
        let xs = vec![0i64, 4, 9];
        let zs = vec![1i64, 6];
        let ys = vec![2i64, 8, 13];
        let axz = distance_monge(&xs, &zs, 0);
        let bzy = distance_monge(&zs, &ys, 0);
        let c = min_plus_parallel(&axz, &bzy);
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                let direct = (x - y).abs();
                assert!(c.get(i, j) >= direct);
                // going through the best z
                let best = zs.iter().map(|&z| (x - z).abs() + (z - y).abs()).min().unwrap();
                assert_eq!(c.get(i, j), best);
            }
        }
    }

    #[test]
    fn lazy_product_rows_match_the_eager_product() {
        for seed in 40..46 {
            let a = random_monge(11, 8, seed);
            let b = random_monge(8, 13, seed + 50);
            let eager = min_plus_parallel(&a, &b);
            for i in 0..a.rows() {
                assert_eq!(min_plus_product_row(&a, &b, i), eager.row(i), "seed {seed} row {i}");
                assert_eq!(min_plus_product_row_general(&a, &b, i), eager.row(i), "seed {seed} row {i} (general)");
            }
        }
        // Views multiply without being copied out.
        let a = random_monge(6, 5, 99);
        let b = random_monge(5, 7, 98);
        let rows: Vec<usize> = (0..a.rows()).collect();
        let inner: Vec<usize> = (0..a.cols()).collect();
        let view = crate::view::SubmatrixView::new(&a, &rows, &inner);
        assert_eq!(min_plus_parallel(&view, &b), min_plus_parallel(&a, &b));
    }

    #[test]
    fn larger_product_cross_check() {
        let a = random_monge(40, 35, 77);
        let b = random_monge(35, 50, 78);
        assert_eq!(min_plus_naive(&a, &b), min_plus_parallel(&a, &b));
    }
}
