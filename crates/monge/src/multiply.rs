//! (min,+) matrix products — Lemmas 3, 4 and 5 of the paper.
//!
//! * [`min_plus_naive`]: the definition, `O(αγβ)` work.  Used as a baseline
//!   (this is exactly the "super-quadratic work bottleneck" the paper's
//!   Monge machinery avoids) and as a correctness oracle in tests.
//! * [`min_plus_monge`]: `O(αβ + βγ)` work using SMAWK row minima per output
//!   column — the content of Lemma 3.
//! * [`min_plus_parallel`]: the same, parallelised over output columns with
//!   rayon (in the PRAM model this is the `O(log γ)`-time algorithm of
//!   Lemma 3 after applying Brent's theorem).
//! * [`min_plus_padded`]: Lemma 4 — pad with `+∞` so the size requirements of
//!   Lemma 3 hold, multiply, then strip the padding.  The padding is implicit
//!   here because our implementation does not need the matrices to be square.

use crate::matrix::{Entry, MinPlusMatrix, INF};
use crate::smawk::{brute_force_row_minima, smawk_row_minima};
use crate::view::MatrixAccess;
use rayon::prelude::*;

pub(crate) fn sat_add(a: Entry, b: Entry) -> Entry {
    if a >= INF || b >= INF {
        INF
    } else {
        a + b
    }
}

/// Naive (min,+) product: `C(i,j) = min_k A(i,k) + B(k,j)`.
pub fn min_plus_naive(a: &MinPlusMatrix, b: &MinPlusMatrix) -> MinPlusMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = MinPlusMatrix::infinity(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k);
            if aik >= INF {
                continue;
            }
            for j in 0..b.cols() {
                let v = sat_add(aik, b.get(k, j));
                if v < c.get(i, j) {
                    c.set(i, j, v);
                }
            }
        }
    }
    c
}

/// (min,+) product exploiting the Monge property of the factors (Lemma 3):
/// for every output column `j`, the matrix `D_j(i,k) = A(i,k) + B(k,j)` is
/// totally monotone, so its row minima — which are exactly column `j` of the
/// product — are found by SMAWK with `O(α + γ)` evaluations.  Total work
/// `O(β (α + γ))`, i.e. `O(αβ)` under the size hypotheses of Lemma 3.
/// Generic over [`MatrixAccess`], so borrowed submatrix views multiply
/// without being copied out first.
pub fn min_plus_monge<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B) -> MinPlusMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = MinPlusMatrix::infinity(a.rows(), b.cols());
    if a.rows() == 0 || b.cols() == 0 || a.cols() == 0 {
        return c;
    }
    for j in 0..b.cols() {
        let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
        let minima = smawk_row_minima(a.rows(), a.cols(), &eval);
        for (i, &k) in minima.iter().enumerate() {
            c.set(i, j, eval(i, k));
        }
    }
    c
}

/// Parallel Monge product: the per-column SMAWK calls of [`min_plus_monge`]
/// are independent, so they are distributed over the rayon pool.
pub fn min_plus_parallel<A, B>(a: &A, b: &B) -> MinPlusMatrix
where
    A: MatrixAccess + Sync,
    B: MatrixAccess + Sync,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    if a.rows() == 0 || b.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    if a.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    let cols: Vec<Vec<Entry>> = (0..b.cols())
        .into_par_iter()
        .map(|j| {
            let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
            let minima = smawk_row_minima(a.rows(), a.cols(), &eval);
            (0..a.rows()).map(|i| eval(i, minima[i])).collect()
        })
        .collect();
    MinPlusMatrix::from_fn(a.rows(), b.cols(), |i, j| cols[j][i])
}

/// Safe (min,+) product for matrices that are *not* guaranteed to be totally
/// monotone: per-column brute-force row minima, parallelised over columns.
/// Work `O(αγβ)` like the naive product but with better locality and
/// parallelism.  The divide-and-conquer uses this as a fallback when a
/// factor fails the Monge check (which the paper avoids by its partitioning
/// scheme; we keep the fallback so correctness never depends on it).
pub fn min_plus_general_parallel<A, B>(a: &A, b: &B) -> MinPlusMatrix
where
    A: MatrixAccess + Sync,
    B: MatrixAccess + Sync,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    if a.rows() == 0 || b.cols() == 0 || a.cols() == 0 {
        return MinPlusMatrix::infinity(a.rows(), b.cols());
    }
    let cols: Vec<Vec<Entry>> = (0..b.cols())
        .into_par_iter()
        .map(|j| {
            let eval = |i: usize, k: usize| sat_add(a.at(i, k), b.at(k, j));
            let minima = brute_force_row_minima(a.rows(), a.cols(), &eval);
            (0..a.rows()).map(|i| eval(i, minima[i])).collect()
        })
        .collect();
    MinPlusMatrix::from_fn(a.rows(), b.cols(), |i, j| cols[j][i])
}

/// Gather row `i` of a matrix into contiguous scratch so inner loops index a
/// slice instead of paying per-entry `MatrixAccess::at` dispatch.
fn gather_row<A: MatrixAccess>(a: &A, i: usize) -> Vec<Entry> {
    match a.row_slice(i) {
        Some(slice) => slice.to_vec(),
        None => (0..a.cols()).map(|k| a.at(i, k)).collect(),
    }
}

/// One row of the (min,+) product `A * B`, computed lazily with a single
/// SMAWK pass: for fixed output row `i`, the matrix
/// `E(j, k) = A(i, k) + B(k, j)` over rows `j` (the output columns) and
/// columns `k` (the inner index) satisfies the quadrangle inequality exactly
/// when `B` does — the `A(i, ·)` terms appear on both sides and cancel — so
/// when `B` is Monge the row minima of `E` are found with
/// `O(cols(B) + cols(A))` evaluations, and `E`'s row-`j` minimum value *is*
/// entry `(i, j)` of the product.  Because a minimum is a single
/// well-defined value, the returned entries are bitwise-identical to what
/// [`min_plus_parallel`] stores, regardless of which argmin SMAWK reports.
///
/// The caller must guarantee `B` is Monge (use
/// [`min_plus_product_row_general`] otherwise).
pub fn min_plus_product_row<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B, i: usize) -> Vec<Entry> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(i < a.rows(), "row out of range");
    if b.cols() == 0 {
        return Vec::new();
    }
    if a.cols() == 0 {
        return vec![INF; b.cols()];
    }
    let a_row = gather_row(a, i);
    let eval = |j: usize, k: usize| sat_add(a_row[k], b.at(k, j));
    let minima = smawk_row_minima(b.cols(), a.cols(), &eval);
    (0..b.cols()).map(|j| eval(j, minima[j])).collect()
}

/// Output-column block width of the general row kernel: big enough that the
/// per-block `A`-row replay is amortised, small enough that the output block
/// and the matching `B`-row segments stay cache-resident.
const GENERAL_ROW_BLOCK: usize = 2048;

/// One row of the (min,+) product without any Monge assumption, as a
/// cache-blocked `O(cols(B) · cols(A))` scan.
///
/// Instead of the textbook `j`-outer / `k`-inner order (which strides
/// through `B` column-wise, touching `cols(A)` different rows per output
/// entry), the output row is produced in blocks of [`GENERAL_ROW_BLOCK`]
/// columns with `k` outer and `j` inner, so each step streams a contiguous
/// segment of one `B` row against the accumulator block.  When `B` exposes
/// [`MatrixAccess::row_slice`] the inner loop is a branch-light
/// slice-to-slice zip (no bounds checks, no saturating branch beyond the
/// single `INF` guard).  The result is bitwise-identical to the naive scan:
/// every `(j, k)` candidate is still folded with `min`, whose value does not
/// depend on evaluation order.
pub fn min_plus_product_row_general<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B, i: usize) -> Vec<Entry> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(i < a.rows(), "row out of range");
    let (inner, out_cols) = (a.cols(), b.cols());
    if out_cols == 0 {
        return Vec::new();
    }
    if inner == 0 {
        return vec![INF; out_cols];
    }
    let a_row = gather_row(a, i);
    let mut out = vec![INF; out_cols];
    let mut j0 = 0;
    while j0 < out_cols {
        let j1 = (j0 + GENERAL_ROW_BLOCK).min(out_cols);
        let out_block = &mut out[j0..j1];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik >= INF {
                continue; // sat_add(aik, ·) is INF, which never improves
            }
            match b.row_slice(k) {
                Some(b_row) => {
                    for (acc, &bkj) in out_block.iter_mut().zip(&b_row[j0..j1]) {
                        let v = if bkj >= INF { INF } else { aik + bkj };
                        if v < *acc {
                            *acc = v;
                        }
                    }
                }
                None => {
                    for (dj, acc) in out_block.iter_mut().enumerate() {
                        let v = sat_add(aik, b.at(k, j0 + dj));
                        if v < *acc {
                            *acc = v;
                        }
                    }
                }
            }
        }
        j0 = j1;
    }
    out
}

/// Work cap (in `eval` calls per row) above which the banded scan of
/// [`min_plus_product_rows`] abandons the inherited argmin bounds and falls
/// back to a fresh SMAWK pass for that row.  SMAWK costs
/// `O(cols(B) + cols(A))` evaluations, so a cap of a small multiple keeps
/// the batch within a constant factor of per-row SMAWK even when the bounds
/// are loose.
const BANDED_SCAN_SLACK: usize = 4;

/// A batch of rows of the (min,+) product `A * B`, amortising SMAWK column
/// reduction across adjacent rows.  `rows` must be strictly ascending; the
/// caller must guarantee **both** factors are Monge (the situation
/// [`ImplicitMongeMatrix::product`] certifies — use per-row
/// [`min_plus_product_row_general`] otherwise).
///
/// Soundness of the amortisation: for a fixed output column `j`, the matrix
/// `D_j(i, k) = A(i, k) + B(k, j)` is Monge whenever `A` is (the `B(k, j)`
/// terms are column constants and cancel in the quadrangle inequality), so
/// its *leftmost* row argmins are nondecreasing in `i`.  Solving the first
/// and last requested rows with SMAWK therefore brackets, per output
/// column, where every intermediate row's argmin can live; the batch
/// recurses row-wise (solve the middle row inside the bracket, split) so
/// each level tightens the bands geometrically.  A row whose total band
/// width exceeds [`BANDED_SCAN_SLACK`]`·(cols(B) + cols(A))` is solved by a
/// fresh SMAWK pass instead, so the worst case stays `O(rows · (α + β))`
/// like per-row SMAWK while adjacent rows with correlated argmins share
/// almost all column reduction.  Minimum *values* are independent of which
/// argmin is reported, so every row is bitwise-identical to
/// [`min_plus_product_row`].
///
/// [`ImplicitMongeMatrix::product`]: crate::implicit::ImplicitMongeMatrix::product
pub fn min_plus_product_rows<A: MatrixAccess, B: MatrixAccess>(a: &A, b: &B, rows: &[usize]) -> Vec<Vec<Entry>> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be strictly ascending");
    if rows.is_empty() {
        return Vec::new();
    }
    assert!(*rows.last().expect("nonempty") < a.rows(), "row out of range");
    let (inner, out_cols) = (a.cols(), b.cols());
    if out_cols == 0 {
        return vec![Vec::new(); rows.len()];
    }
    if inner == 0 {
        return vec![vec![INF; out_cols]; rows.len()];
    }

    // Solve one row from scratch, recording values *and* leftmost argmins
    // (SMAWK already reports leftmost minima, which the banding needs).
    let solve_smawk = |i: usize| -> (Vec<Entry>, Vec<usize>) {
        let a_row = gather_row(a, i);
        let eval = |j: usize, k: usize| sat_add(a_row[k], b.at(k, j));
        let minima = smawk_row_minima(out_cols, inner, &eval);
        let values = (0..out_cols).map(|j| eval(j, minima[j])).collect();
        (values, minima)
    };

    let last = rows.len() - 1;
    let mut solved: Vec<Option<(Vec<Entry>, Vec<usize>)>> = (0..rows.len()).map(|_| None).collect();
    solved[0] = Some(solve_smawk(rows[0]));
    if last > 0 {
        solved[last] = Some(solve_smawk(rows[last]));
    }

    let mut stack = vec![(0usize, last)];
    while let Some((lo, hi)) = stack.pop() {
        if hi.saturating_sub(lo) <= 1 {
            continue;
        }
        let mid = lo + (hi - lo) / 2;
        let result = {
            let (_, klo) = solved[lo].as_ref().expect("bracket endpoints are solved");
            let (_, khi) = solved[hi].as_ref().expect("bracket endpoints are solved");
            let band: usize = klo.iter().zip(khi).map(|(&l, &h)| h - l + 1).sum();
            if band > BANDED_SCAN_SLACK * (out_cols + inner) {
                solve_smawk(rows[mid])
            } else {
                let a_row = gather_row(a, rows[mid]);
                let mut values = Vec::with_capacity(out_cols);
                let mut minima = Vec::with_capacity(out_cols);
                for j in 0..out_cols {
                    let (mut best, mut arg) = (INF, klo[j]);
                    for (k, &aik) in a_row.iter().enumerate().take(khi[j] + 1).skip(klo[j]) {
                        let v = sat_add(aik, b.at(k, j));
                        if v < best {
                            best = v;
                            arg = k;
                        }
                    }
                    values.push(best);
                    minima.push(arg);
                }
                (values, minima)
            }
        };
        solved[mid] = Some(result);
        stack.push((lo, mid));
        stack.push((mid, hi));
    }

    solved.into_iter().map(|r| r.expect("recursion solved every row").0).collect()
}

/// Lemma 4: multiply matrices of unequal sizes by conceptually padding them
/// with `+∞` to compatible square-ish shapes.  Our dense representation never
/// requires the padding to be materialised, so this is a thin wrapper kept
/// for fidelity with the paper's statement; it asserts the dimension
/// relationship of the lemma in debug builds.
pub fn min_plus_padded(a: &MinPlusMatrix, b: &MinPlusMatrix) -> MinPlusMatrix {
    debug_assert!(a.cols() == b.rows());
    min_plus_parallel(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monge::{distance_monge, is_monge};

    fn random_monge(rows: usize, cols: usize, seed: u64) -> MinPlusMatrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<i64> = (0..rows).map(|_| rng.gen_range(-200..200)).collect();
        let mut ys: Vec<i64> = (0..cols).map(|_| rng.gen_range(-200..200)).collect();
        xs.sort();
        ys.sort();
        distance_monge(&xs, &ys, rng.gen_range(0..30))
    }

    #[test]
    fn monge_product_matches_naive() {
        for seed in 0..10 {
            let a = random_monge(9, 7, seed);
            let b = random_monge(7, 11, seed + 100);
            let naive = min_plus_naive(&a, &b);
            let fast = min_plus_monge(&a, &b);
            let par = min_plus_parallel(&a, &b);
            let gen = min_plus_general_parallel(&a, &b);
            assert_eq!(naive, fast, "seed {seed}");
            assert_eq!(naive, par, "seed {seed}");
            assert_eq!(naive, gen, "seed {seed}");
        }
    }

    #[test]
    fn product_of_monge_matrices_is_monge() {
        // Lemma 3 also asserts closure of the Monge property under (min,+).
        for seed in 20..30 {
            let a = random_monge(8, 6, seed);
            let b = random_monge(6, 9, seed + 7);
            let c = min_plus_parallel(&a, &b);
            assert!(is_monge(&c), "product lost the Monge property (seed {seed})");
        }
    }

    #[test]
    fn identity_like_behaviour() {
        // multiplying by a "diagonal" of zeros (INF off-diagonal) is identity
        let a = random_monge(5, 4, 3);
        let id = MinPlusMatrix::from_fn(4, 4, |i, j| if i == j { 0 } else { INF });
        // the identity is not Monge, so use the general product
        let c = min_plus_general_parallel(&a, &id);
        assert_eq!(c, a);
        let naive = min_plus_naive(&a, &id);
        assert_eq!(naive, a);
    }

    #[test]
    fn inf_rows_and_columns_propagate() {
        let a = MinPlusMatrix::infinity(3, 3);
        let b = random_monge(3, 3, 5);
        let c = min_plus_naive(&a, &b);
        assert!(!c.is_finite());
        assert_eq!(c, MinPlusMatrix::infinity(3, 3));
        let cp = min_plus_parallel(&a, &b);
        assert_eq!(cp, c);
    }

    #[test]
    fn degenerate_dimensions() {
        let a = MinPlusMatrix::infinity(0, 5);
        let b = MinPlusMatrix::infinity(5, 3);
        assert_eq!(min_plus_parallel(&a, &b).rows(), 0);
        let a = MinPlusMatrix::infinity(2, 0);
        let b = MinPlusMatrix::infinity(0, 3);
        let c = min_plus_parallel(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!(!c.is_finite());
    }

    #[test]
    fn triangle_inequality_composition() {
        // composing X->Z with Z->Y distance matrices gives upper bounds on
        // X->Y distances through Z; with points on a line they are exact
        let xs = vec![0i64, 4, 9];
        let zs = vec![1i64, 6];
        let ys = vec![2i64, 8, 13];
        let axz = distance_monge(&xs, &zs, 0);
        let bzy = distance_monge(&zs, &ys, 0);
        let c = min_plus_parallel(&axz, &bzy);
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                let direct = (x - y).abs();
                assert!(c.get(i, j) >= direct);
                // going through the best z
                let best = zs.iter().map(|&z| (x - z).abs() + (z - y).abs()).min().unwrap();
                assert_eq!(c.get(i, j), best);
            }
        }
    }

    #[test]
    fn lazy_product_rows_match_the_eager_product() {
        for seed in 40..46 {
            let a = random_monge(11, 8, seed);
            let b = random_monge(8, 13, seed + 50);
            let eager = min_plus_parallel(&a, &b);
            for i in 0..a.rows() {
                assert_eq!(min_plus_product_row(&a, &b, i), eager.row(i), "seed {seed} row {i}");
                assert_eq!(min_plus_product_row_general(&a, &b, i), eager.row(i), "seed {seed} row {i} (general)");
            }
        }
        // Views multiply without being copied out.
        let a = random_monge(6, 5, 99);
        let b = random_monge(5, 7, 98);
        let rows: Vec<usize> = (0..a.rows()).collect();
        let inner: Vec<usize> = (0..a.cols()).collect();
        let view = crate::view::SubmatrixView::new(&a, &rows, &inner);
        assert_eq!(min_plus_parallel(&view, &b), min_plus_parallel(&a, &b));
    }

    #[test]
    fn larger_product_cross_check() {
        let a = random_monge(40, 35, 77);
        let b = random_monge(35, 50, 78);
        assert_eq!(min_plus_naive(&a, &b), min_plus_parallel(&a, &b));
    }

    #[test]
    fn batched_rows_match_per_row_smawk_bitwise() {
        for seed in 60..66 {
            let a = random_monge(24, 15, seed);
            let b = random_monge(15, 31, seed + 9);
            let eager = min_plus_parallel(&a, &b);
            // All rows, a sparse ascending subset, and singletons.
            let full: Vec<usize> = (0..a.rows()).collect();
            let sparse: Vec<usize> = vec![0, 3, 4, 11, 23];
            for rows in [&full[..], &sparse[..], &[7][..], &[][..]] {
                let batch = min_plus_product_rows(&a, &b, rows);
                assert_eq!(batch.len(), rows.len());
                for (out, &i) in batch.iter().zip(rows) {
                    assert_eq!(out.as_slice(), eager.row(i), "seed {seed} row {i}");
                }
            }
        }
    }

    #[test]
    fn batched_rows_handle_infinite_entries() {
        // Saturated entries exercise the INF guards in both the SMAWK
        // endpoints and the banded middle scans.
        let a = MinPlusMatrix::infinity(6, 4);
        let b = random_monge(4, 9, 81);
        let rows: Vec<usize> = (0..6).collect();
        for out in min_plus_product_rows(&a, &b, &rows) {
            assert!(out.iter().all(|&v| v >= INF));
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn batched_rows_reject_unsorted_requests() {
        let a = random_monge(4, 3, 1);
        let b = random_monge(3, 4, 2);
        let _ = min_plus_product_rows(&a, &b, &[2, 1]);
    }

    #[test]
    fn blocked_general_row_matches_naive_past_one_block() {
        // Wide enough to cross a block boundary (cols > GENERAL_ROW_BLOCK).
        let cols = GENERAL_ROW_BLOCK + 37;
        let a = MinPlusMatrix::from_fn(2, 3, |i, k| (i * 5 + k) as Entry);
        let b =
            MinPlusMatrix::from_fn(
                3,
                cols,
                |k, j| {
                    if (j + k) % 97 == 0 {
                        INF
                    } else {
                        ((j * 7 + k * 13) % 1000) as Entry
                    }
                },
            );
        for i in 0..2 {
            let got = min_plus_product_row_general(&a, &b, i);
            let want: Vec<Entry> =
                (0..cols).map(|j| (0..3).map(|k| sat_add(a.get(i, k), b.get(k, j))).min().unwrap()).collect();
            assert_eq!(got, want, "row {i}");
        }
        // Views take the slice-less fallback path and must agree too.
        let rows: Vec<usize> = (0..2).collect();
        let inner: Vec<usize> = (0..3).collect();
        let view = crate::view::SubmatrixView::new(&a, &rows, &inner);
        for i in 0..2 {
            assert_eq!(min_plus_product_row_general(&view, &b, i), min_plus_product_row_general(&a, &b, i));
        }
    }
}
