#![warn(missing_docs)]

//! # rsp-monge — (min,+) matrices, the Monge property and fast Monge products
//!
//! Section 2 of the paper (Lemmas 1–5) builds the "conquer" machinery of the
//! divide-and-conquer on matrix multiplication in the `(min, +)` closed
//! semiring:
//!
//! ```text
//! (M' * M'')(i, j) = min_k { M'(i, k) + M''(k, j) }
//! ```
//!
//! When the factor matrices are **Monge**
//! (`M(i,j) + M(i+1,j+1) <= M(i,j+1) + M(i+1,j)`), the product can be
//! computed with `O(|X||Y|)` work instead of `O(|X||Z||Y|)` (Lemma 3), the
//! product is again Monge, and padding / partitioning arguments extend this
//! to unequal dimensions (Lemma 4) and to matrices that are only piecewise
//! Monge (Lemma 5).  Path-length matrices between two disjoint boundary
//! pieces of a convex clear region are Monge (Lemma 1), which is exactly why
//! the paper's boundary-partitioning scheme works.
//!
//! This crate provides:
//!
//! * [`MinPlusMatrix`] — a dense `i64` matrix with an `INF` sentinel;
//! * [`monge`] — the Monge predicate and counter-example search;
//! * [`smawk`] — SMAWK row-minima of totally monotone matrices;
//! * [`multiply`] — naive, Monge (row-minima based) and rayon-parallel
//!   (min,+) products, plus the padded product of Lemma 4 and per-row lazy
//!   product evaluation;
//! * [`view`] — borrowing submatrix/padding views and the [`MatrixAccess`]
//!   trait the predicates and products are generic over;
//! * [`implicit`] — [`ImplicitMongeMatrix`], a lazy SMAWK-backed (min,+)
//!   product behind a byte-budgeted LRU [`BlockCache`](implicit::BlockCache).

pub mod implicit;
pub mod matrix;
pub mod monge;
pub mod multiply;
pub mod smawk;
pub mod view;

pub use implicit::{BlockCache, BlockCacheStats, ImplicitMongeMatrix};
pub use matrix::MinPlusMatrix;
pub use monge::{is_monge, monge_violation};
pub use multiply::{
    min_plus_monge, min_plus_naive, min_plus_parallel, min_plus_product_row, min_plus_product_row_general,
    min_plus_product_rows,
};
pub use view::{MatrixAccess, PaddedView, SubmatrixView};
