//! The Monge property (Section 2 of the paper).
//!
//! A matrix `M` is Monge iff for all adjacent rows `i, i+1` and columns
//! `j, j+1`:
//!
//! ```text
//! M(i, j) + M(i+1, j+1) <= M(i, j+1) + M(i+1, j)
//! ```
//!
//! Lemma 1 of the paper: the path-length matrix between two point sets lying
//! on disjoint portions of the boundary of a convex clear region is Monge
//! (with the natural boundary orderings).  Fig. 4(b) shows how non-Monge
//! length matrices arise when that condition is violated — this is exactly
//! what the paper's `U / U' / W / W'` partitioning scheme repairs.

use crate::matrix::{Entry, MinPlusMatrix, INF};
use crate::view::MatrixAccess;

/// Check the Monge condition on all adjacent 2x2 minors.  Entries equal to
/// `INF` are treated as genuinely infinite (the condition is considered
/// satisfied whenever it involves an `INF` on the "cheap" side), matching the
/// padding argument of Lemma 4.  Generic over [`MatrixAccess`], so borrowed
/// submatrix views are checked without materialising the block.
pub fn is_monge<M: MatrixAccess>(m: &M) -> bool {
    monge_violation(m).is_none()
}

/// Find a violating `(i, j)` pair, if any (the condition fails for rows
/// `i, i+1` and columns `j, j+1`).
pub fn monge_violation<M: MatrixAccess>(m: &M) -> Option<(usize, usize)> {
    for i in 0..m.rows().saturating_sub(1) {
        for j in 0..m.cols().saturating_sub(1) {
            let a = m.at(i, j);
            let b = m.at(i + 1, j + 1);
            let c = m.at(i, j + 1);
            let d = m.at(i + 1, j);
            let lhs = saturating(a, b);
            let rhs = saturating(c, d);
            if lhs > rhs {
                return Some((i, j));
            }
        }
    }
    None
}

fn saturating(a: Entry, b: Entry) -> Entry {
    if a >= INF || b >= INF {
        INF
    } else {
        a + b
    }
}

/// Check *total monotonicity* of a matrix (the weaker property SMAWK needs):
/// for every pair of rows `i < i'` and columns `j < j'`,
/// `M(i, j') < M(i, j)` implies `M(i', j') < M(i', j)`.
/// Every Monge matrix is totally monotone.
pub fn is_totally_monotone<M: MatrixAccess>(m: &M) -> bool {
    for i in 0..m.rows() {
        for i2 in (i + 1)..m.rows() {
            for j in 0..m.cols() {
                for j2 in (j + 1)..m.cols() {
                    if m.at(i, j2) < m.at(i, j) && m.at(i2, j2) >= m.at(i2, j) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// A convenient family of Monge matrices for tests and benchmarks: the
/// L1 distances between a row of points on a horizontal line and a row of
/// points on another horizontal line, both ordered by x (a special case of
/// Lemma 1 with the region being the slab between the two lines).
pub fn distance_monge(xs_top: &[i64], xs_bottom: &[i64], gap: i64) -> MinPlusMatrix {
    MinPlusMatrix::from_fn(xs_top.len(), xs_bottom.len(), |i, j| (xs_top[i] - xs_bottom[j]).abs() + gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_additive_matrices_are_monge() {
        let c = MinPlusMatrix::filled(4, 5, 3);
        assert!(is_monge(&c));
        let additive = MinPlusMatrix::from_fn(4, 5, |i, j| (i as i64) * 2 + (j as i64) * 7);
        assert!(is_monge(&additive));
    }

    #[test]
    fn distance_matrices_are_monge() {
        let m = distance_monge(&[0, 2, 5, 9], &[1, 3, 4, 8, 12], 6);
        assert!(is_monge(&m));
        assert!(is_totally_monotone(&m));
    }

    #[test]
    fn explicit_violation_is_found() {
        // the classic non-Monge 2x2: crossing is cheaper than non-crossing
        let m = MinPlusMatrix::from_rows(vec![vec![5, 1], vec![1, 5]]);
        assert!(!is_monge(&m));
        assert_eq!(monge_violation(&m), Some((0, 0)));
        assert!(!is_totally_monotone(&MinPlusMatrix::from_rows(vec![vec![2, 1], vec![1, 2]])));
    }

    #[test]
    fn padding_with_inf_preserves_monge_property() {
        let m = distance_monge(&[0, 3, 7], &[1, 5], 2);
        let padded = m.pad_to(5, 4);
        assert!(is_monge(&padded), "Lemma 4's padding must keep the matrix Monge");
    }

    #[test]
    fn monge_implies_totally_monotone_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let top: Vec<i64> = {
                let mut v: Vec<i64> = (0..8).map(|_| rng.gen_range(-50..50)).collect();
                v.sort();
                v
            };
            let bot: Vec<i64> = {
                let mut v: Vec<i64> = (0..9).map(|_| rng.gen_range(-50..50)).collect();
                v.sort();
                v
            };
            let m = distance_monge(&top, &bot, rng.gen_range(0..20));
            assert!(is_monge(&m));
            assert!(is_totally_monotone(&m));
        }
    }
}
