//! Facility-layout / robot-motion scenario — the other application family the
//! paper's introduction motivates (plant layout, urban transportation, robot
//! motion planning).
//!
//! A warehouse floor contains long shelving racks with narrow gaps (the
//! `corridors` workload).  An AGV (automated guided vehicle) repeatedly needs
//! shortest rectilinear routes between stations; one `Router` session serves
//! length estimates and actual routes, demonstrating the `O(log n + k)` path
//! reporting of Section 8.  The shortest-path trees for the docking stations
//! share the length oracle — nothing is built twice.
//!
//! Run with `cargo run --release --example facility_layout`.

use rectilinear_shortest_paths::render::Scene;
use rectilinear_shortest_paths::workload::corridors;
use rectilinear_shortest_paths::{Router, RspError};

fn main() -> Result<(), RspError> {
    // 12 shelving rows, each with a randomly placed gap.
    let warehouse = corridors(12, 90, 99);
    let obstacles = warehouse.obstacles;
    println!("warehouse: {} rack segments", obstacles.len());

    let vertices = obstacles.vertices();
    let router = Router::new(obstacles)?;

    // Docking stations at the outermost rack corners.
    let stations = [vertices[0], vertices[vertices.len() - 2]];

    for &station in &stations {
        // Route from the station to the far corner of the warehouse racks.
        let far = vertices.iter().copied().max_by_key(|v| v.l1(station)).unwrap();
        let path = router.path(station, far)?;
        assert!(path.avoids(router.obstacles()), "route must not cross a rack");
        println!(
            "route {:?} -> {:?}: length {}, {} segments (threads {} rack gaps)",
            station,
            far,
            path.length(),
            path.num_segments(),
            path.num_segments() / 2
        );
        // Parallel chunked reporting (Section 8): pieces of ~log n tree hops.
        let chunks = router.path_chunks(station, far, 4)?;
        println!("  reported in {} independently extracted chunks", chunks.len());

        // Draw the route on an ASCII map of the warehouse.
        let mut scene = Scene::new();
        scene.add_obstacles(router.obstacles()).add_path(&path, '*').add_point(station, 'S').add_point(far, 'T');
        println!("{}", scene.to_ascii(100));
    }

    // Compare congestion-free Manhattan estimates against true routed
    // lengths, served as one batch (every pair takes the O(1) fast path).
    let pairs: Vec<_> =
        vertices.iter().step_by(5).flat_map(|&v| vertices.iter().step_by(7).map(move |&w| (v, w))).collect();
    let routed = router.distances(&pairs)?;
    let underestimates = pairs.iter().zip(&routed).filter(|(&(v, w), &d)| d > v.l1(w)).count();
    println!("pairs where the naive Manhattan estimate is too optimistic: {underestimates}");

    let counts = router.build_counts();
    println!(
        "substructure builds: oracle {}, station trees {}, boundary matrix {}",
        counts.oracle_builds, counts.tree_builds, counts.boundary_builds
    );
    assert_eq!(counts.oracle_builds, 1);
    assert_eq!(counts.tree_builds, stations.len());
    Ok(())
}
