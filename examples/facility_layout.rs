//! Facility-layout / robot-motion scenario — the other application family the
//! paper's introduction motivates (plant layout, urban transportation, robot
//! motion planning).
//!
//! A warehouse floor contains long shelving racks with narrow gaps (the
//! `corridors` workload).  An AGV (automated guided vehicle) repeatedly needs
//! shortest rectilinear routes between stations; we build the oracle and the
//! shortest-path trees for a set of docking stations and report actual routes,
//! demonstrating the `O(log n + k)` path reporting of Section 8.
//!
//! Run with `cargo run --release --example facility_layout`.

use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::core::sptree::ShortestPathTrees;
use rectilinear_shortest_paths::render::Scene;
use rectilinear_shortest_paths::workload::corridors;

fn main() {
    // 12 shelving rows, each with a randomly placed gap.
    let warehouse = corridors(12, 90, 99);
    let obstacles = &warehouse.obstacles;
    println!("warehouse: {} rack segments", obstacles.len());

    let oracle = PathLengthOracle::build(obstacles);
    let vertices = obstacles.vertices();

    // Docking stations at the outermost rack corners.
    let stations = [vertices[0], vertices[vertices.len() - 2]];
    let trees = ShortestPathTrees::from_oracle(PathLengthOracle::build(obstacles), Some(&stations));

    for &station in &stations {
        // Route from the station to the far corner of the warehouse racks.
        let far = vertices.iter().copied().max_by_key(|v| v.l1(station)).unwrap();
        let path = trees.path_between(station, far).expect("route exists");
        assert!(path.avoids(obstacles), "route must not cross a rack");
        println!(
            "route {:?} -> {:?}: length {}, {} segments (threads {} rack gaps)",
            station,
            far,
            path.length(),
            path.num_segments(),
            path.num_segments() / 2
        );
        // Parallel chunked reporting (Section 8): pieces of ~log n tree hops.
        let chunks = trees.path_chunks(station, far, 4).unwrap();
        println!("  reported in {} independently extracted chunks", chunks.len());

        // Draw the route on an ASCII map of the warehouse.
        let mut scene = Scene::new();
        scene.add_obstacles(obstacles).add_path(&path, '*').add_point(station, 'S').add_point(far, 'T');
        println!("{}", scene.to_ascii(100));
    }

    // Compare congestion-free Manhattan estimates against true routed lengths.
    let mut underestimates = 0usize;
    for &v in vertices.iter().step_by(5) {
        for &w in vertices.iter().step_by(7) {
            let true_len = oracle.vertex_distance(v, w).unwrap();
            if true_len > v.l1(w) {
                underestimates += 1;
            }
        }
    }
    println!("pairs where the naive Manhattan estimate is too optimistic: {underestimates}");
}
