//! Regenerate the paper's illustrative figures from real data (experiments
//! F1–F5 of DESIGN.md).  Each figure is printed as ASCII and also written as
//! an SVG file under `target/figures/`.
//!
//! The algorithmic ingredients (escape paths, the staircase separator, the
//! recursion tree) are reached through `Router`'s inspection helpers; only
//! the purely geometric constructions (MAX staircases, envelopes, `B(Q)`)
//! come from the `geom` expert layer.
//!
//! Run with `cargo run --release --example figure_gallery`.

use rectilinear_shortest_paths::geom::staircase::{envelope, max_staircase, Quadrant};
use rectilinear_shortest_paths::monge::{is_monge, MinPlusMatrix};
use rectilinear_shortest_paths::render::Scene;
use rectilinear_shortest_paths::workload::uniform_disjoint;
use rectilinear_shortest_paths::{EscapeKind, ObstacleSet, Point, Rect, Router, RspError, StairRegion};
use std::fs;
use std::path::Path;

fn save(name: &str, scene: &Scene) {
    let dir = Path::new("target/figures");
    fs::create_dir_all(dir).ok();
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, scene.to_svg(640.0)).expect("write svg");
    println!("  (svg written to {})", path.display());
}

fn sample_obstacles() -> ObstacleSet {
    ObstacleSet::new(vec![
        Rect::new(2, 10, 6, 14),
        Rect::new(9, 4, 13, 8),
        Rect::new(16, 12, 20, 18),
        Rect::new(5, 1, 8, 3),
        Rect::new(14, 0, 18, 3),
        Rect::new(1, 18, 5, 21),
    ])
}

fn main() -> Result<(), RspError> {
    let obstacles = sample_obstacles();
    let window = obstacles.bbox().unwrap().expand(4);
    // The session's container (margin 4 around the bounding box) doubles as
    // the clipping window for the escape-path figures.
    let router = Router::builder(obstacles.clone()).margin(4).build()?;

    // ---- Figure 1 & 2: MAX staircases and the envelope -------------------
    println!("Figure 1/2 — MAX_NE and MAX_SW staircases and the envelope Env(R'):");
    let mut fig1 = Scene::new();
    fig1.add_obstacles(&obstacles);
    if let Some(ne) = max_staircase(&obstacles, Quadrant::NE, window) {
        fig1.add_chain(&ne, '^');
    }
    if let Some(sw) = max_staircase(&obstacles, Quadrant::SW, window) {
        fig1.add_chain(&sw, 'v');
    }
    if let Some(env) = envelope(&obstacles, window) {
        fig1.add_region(&env);
    }
    println!("{}", fig1.to_ascii(100));
    save("fig1_max_staircases", &fig1);

    // ---- Figure 3: the boundary discretisation B(Q) ----------------------
    println!("Figure 3 — the boundary discretisation B(Q) (visibility projections):");
    let region = StairRegion::from_rect(window);
    let bq = rectilinear_shortest_paths::geom::bq::visibility_discretization(&region, &obstacles);
    let mut fig3 = Scene::new();
    fig3.add_obstacles(&obstacles).add_region(&region);
    for &p in &bq {
        fig3.add_point(p, 'o');
    }
    println!("  |B(Q)| = {} points on the boundary", bq.len());
    save("fig3_bq", &fig3);

    // ---- Figure 5: escape paths NE(p) and WS(p) ---------------------------
    println!("Figure 5 — the escape paths NE(p) and WS(p):");
    let p = Point::new(10, 2);
    let ne = router.escape(p, EscapeKind::NE)?;
    let ws = router.escape(p, EscapeKind::WS)?;
    let mut fig5 = Scene::new();
    fig5.add_obstacles(&obstacles).add_chain(&ne, '+').add_chain(&ws, '-').add_point(p, 'p');
    println!("{}", fig5.to_ascii(100));
    save("fig5_escape_paths", &fig5);

    // ---- Figure 6: the staircase separator --------------------------------
    println!("Figure 6 — the Theorem-2 staircase separator:");
    let bigger = uniform_disjoint(24, 5).obstacles;
    let big_router = Router::new(bigger.clone())?;
    let sep = big_router.separator().expect("separator exists");
    println!(
        "  split {} obstacles into {} above / {} below (balance {:.2})",
        bigger.len(),
        sep.above.len(),
        sep.below.len(),
        sep.max_side() as f64 / bigger.len() as f64
    );
    let mut fig6 = Scene::new();
    fig6.add_obstacles(&bigger).add_chain(&sep.chain, '#').add_point(sep.pivot, 'p');
    save("fig6_separator", &fig6);

    // ---- Figure 4: Monge vs non-Monge length matrices ---------------------
    println!("Figure 4 — Monge vs non-Monge path-length matrices:");
    // Points on two opposite sides of a convex clear region: Monge.
    let xs_top = [0i64, 3, 7, 11];
    let xs_bottom = [1i64, 4, 9];
    let monge = MinPlusMatrix::from_fn(xs_top.len(), xs_bottom.len(), |i, j| (xs_top[i] - xs_bottom[j]).abs() + 10);
    println!("  convex-boundary matrix is Monge: {}", is_monge(&monge));
    // The Fig. 4(b) situation: crossing pairs become cheaper -> non-Monge.
    let non_monge = MinPlusMatrix::from_rows(vec![vec![5, 1], vec![1, 5]]);
    println!("  crossing-pairs matrix is Monge: {}", is_monge(&non_monge));

    // ---- Figures 9-13: the recursion tree ---------------------------------
    println!("Figures 9–13 — the recursion tree of Section 6.1 (sizes, separators, depths):");
    let tree = big_router.recursion_tree();
    println!("{}", tree.summary());
    println!("  {} nodes, height {}, worst balance {:.2}", tree.len(), tree.height(), tree.worst_balance());

    // ---- Figure 14: the chunk partition for |P| >> n -----------------------
    println!("Figure 14 — partition of Bound(P) into chunks for |P| >> n:");
    let env = bigger.bbox().unwrap();
    let container = env.expand(30);
    let mut fig14 = Scene::new();
    fig14.add_obstacles(&bigger).add_region(&StairRegion::from_rect(container)).add_rect(env, '.');
    for x in bigger.xs() {
        fig14.add_point(Point::new(x, env.ymax), 'k');
        fig14.add_point(Point::new(x, env.ymin), 'k');
    }
    for y in bigger.ys() {
        fig14.add_point(Point::new(env.xmin, y), 'k');
        fig14.add_point(Point::new(env.xmax, y), 'k');
    }
    save("fig14_chunks", &fig14);
    println!("done — SVGs in target/figures/");
    Ok(())
}
