//! Quickstart: build the shortest-path data structure for a handful of
//! rectangular obstacles and answer length and path queries.
//!
//! Run with `cargo run --release --example quickstart`.

use rectilinear_shortest_paths::core::dnc::{build_boundary_matrix_bbox, DncOptions};
use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::core::sptree::ShortestPathTrees;
use rectilinear_shortest_paths::geom::{ObstacleSet, Point, Rect};

fn main() {
    // A rectilinear "floor plan": a few axis-parallel rectangular obstacles.
    let obstacles = ObstacleSet::new(vec![
        Rect::new(2, 2, 6, 10),
        Rect::new(9, 0, 12, 6),
        Rect::new(8, 9, 15, 12),
        Rect::new(16, 3, 19, 14),
        Rect::new(3, 13, 7, 16),
    ]);
    obstacles.validate_disjoint().expect("obstacles must be disjoint");

    // 1. Length queries (Section 6 of the paper): O(1) between obstacle
    //    vertices, O(log n) between arbitrary points.
    let oracle = PathLengthOracle::build(&obstacles);
    let a = Point::new(0, 0);
    let b = Point::new(20, 15);
    println!("shortest obstacle-avoiding length {:?} -> {:?}: {}", a, b, oracle.distance(a, b));
    let v1 = Point::new(6, 10); // an obstacle vertex
    let v2 = Point::new(16, 3); // another obstacle vertex
    println!("vertex-to-vertex (O(1) lookup) {:?} -> {:?}: {:?}", v1, v2, oracle.vertex_distance(v1, v2));

    // 2. Actual paths (Section 8): shortest-path trees + parallel reporting.
    let trees = ShortestPathTrees::from_oracle(PathLengthOracle::build(&obstacles), Some(&[v1]));
    let path = trees.path_between(v1, v2).expect("both endpoints are vertices");
    println!(
        "an actual shortest path with {} segments and length {}: {:?}",
        path.num_segments(),
        path.length(),
        path.points()
    );
    assert!(path.avoids(&obstacles));

    // 3. The boundary-to-boundary matrix D_Q (Section 5), built by the
    //    parallel divide-and-conquer with staircase separators and Monge
    //    (min,+) products.
    let bm = build_boundary_matrix_bbox(&obstacles, 2, &DncOptions::default());
    println!(
        "boundary matrix over {} discretisation points; {} recursion nodes, {} Monge products, {} general products",
        bm.points.len(),
        bm.stats.nodes,
        bm.stats.monge_products,
        bm.stats.general_products
    );
}
