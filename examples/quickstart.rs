//! Quickstart: one `Router` session over a handful of rectangular obstacles
//! serves length queries, batch queries, actual paths and the boundary
//! matrix — each substructure is built lazily, exactly once, and shared.
//!
//! Run with `cargo run --release --example quickstart`.

use rectilinear_shortest_paths::{ObstacleSet, Point, Rect, Router, RspError};

fn main() -> Result<(), RspError> {
    // A rectilinear "floor plan": a few axis-parallel rectangular obstacles.
    // Overlapping rectangles would make `build()` fail with a typed error
    // naming the offending pair.
    let router = Router::builder(ObstacleSet::new(vec![
        Rect::new(2, 2, 6, 10),
        Rect::new(9, 0, 12, 6),
        Rect::new(8, 9, 15, 12),
        Rect::new(16, 3, 19, 14),
        Rect::new(3, 13, 7, 16),
    ]))
    .build()?;

    // 1. Length queries (Section 6 of the paper): O(1) between obstacle
    //    vertices, O(log n) between arbitrary points.
    let a = Point::new(0, 0);
    let b = Point::new(20, 15);
    println!("shortest obstacle-avoiding length {:?} -> {:?}: {}", a, b, router.distance(a, b)?);
    let v1 = Point::new(6, 10); // an obstacle vertex
    let v2 = Point::new(16, 3); // another obstacle vertex
    println!("vertex-to-vertex (O(1) lookup) {:?} -> {:?}: {}", v1, v2, router.vertex_distance(v1, v2)?);

    // 2. Actual paths (Section 8): the shortest-path tree for v1 is built on
    //    first use and shares the oracle with the length queries above —
    //    nothing is constructed twice.
    let path = router.path(v1, v2)?;
    println!(
        "an actual shortest path with {} segments and length {}: {:?}",
        path.num_segments(),
        path.length(),
        path.points()
    );
    assert!(path.avoids(router.obstacles()));

    // 3. Batch serving: vertex pairs are routed to the O(1) fast path, the
    //    rest fan out over the rayon pool.
    let lengths = router.distances(&[(a, b), (v1, v2), (a, v2)])?;
    println!("batch of 3 lengths: {:?}", lengths);

    // 4. The boundary-to-boundary matrix D_Q (Section 5), built by the
    //    parallel divide-and-conquer with staircase separators and Monge
    //    (min,+) products.
    let bm = router.boundary_matrix();
    println!(
        "boundary matrix over {} discretisation points; {} recursion nodes, {} Monge products, {} general products",
        bm.points.len(),
        bm.stats.nodes,
        bm.stats.monge_products,
        bm.stats.general_products
    );

    // The build counters certify the build-once behaviour.
    let counts = router.build_counts();
    println!(
        "substructure builds: oracle {}, path trees {}, boundary matrix {}",
        counts.oracle_builds, counts.tree_builds, counts.boundary_builds
    );
    assert_eq!(counts.oracle_builds, 1);
    Ok(())
}
