//! Wire-length estimation for circuit routing — one of the applications the
//! paper's introduction motivates (wire layout / circuit design).
//!
//! A chip floorplan is modelled as a set of rectangular macro blocks
//! (obstacles).  Nets connect pins placed on block boundaries; the router
//! wants, for every net, the shortest rectilinear wire length that avoids
//! routing over the macros.  One `Router` session builds the all-pairs
//! vertex structure once and then serves thousands of pin-to-pin queries in
//! constant/logarithmic time — here through the batch API, which routes
//! corner-to-corner nets to the O(1) fast path automatically.
//!
//! The second half plays out an ECO (engineering change order) loop: macros
//! are moved, dropped and added one edit at a time, and each revision's
//! session comes from `Router::apply_delta` — an epoch-versioned delta
//! rebuild that carries every distance row, escape staircase and slab
//! column the edit provably cannot affect, instead of rebuilding the
//! floorplan's routing structures from scratch.
//!
//! Run with `cargo run --release --example circuit_routing`.

use rectilinear_shortest_paths::workload::{edit_stream, query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Point, Router, RspError, INF};
use std::time::Instant;

fn main() -> Result<(), RspError> {
    // A synthetic floorplan with 64 macro blocks.
    let floorplan = uniform_disjoint(64, 2024);
    let obstacles = floorplan.obstacles;
    println!("floorplan: {} macro blocks, {} block corners", obstacles.len(), obstacles.vertices().len());

    let corner_nets = query_pairs(&obstacles, 2_000, true, 7);
    let free_nets = query_pairs(&obstacles, 2_000, false, 8);

    let router = Router::new(obstacles.clone())?;
    let t0 = Instant::now();
    let _ = router.oracle(); // force the lazy build to time it
    println!("routing oracle built in {:.3} s", t0.elapsed().as_secs_f64());

    // Pin-to-pin nets: pins sit at block corners (vertex queries, O(1) each
    // inside the batch) ...
    let t1 = Instant::now();
    let total_wire: i64 = router.distances(&corner_nets)?.iter().sum();
    let corner_time = t1.elapsed();

    // ... and free pins anywhere on the die (arbitrary-point queries,
    // O(log n) each, fanned out over the rayon pool by the batch layer).
    let t2 = Instant::now();
    let free_lengths = router.distances(&free_nets)?;
    let free_time = t2.elapsed();
    let mut detour_count = 0usize;
    let mut worst_detour = 0i64;
    for (&(a, b), &d) in free_nets.iter().zip(&free_lengths) {
        if d < INF {
            let detour = d - a.l1(b);
            if detour > 0 {
                detour_count += 1;
                worst_detour = worst_detour.max(detour);
            }
        }
    }

    println!(
        "{} corner-to-corner nets: total wire length {}, {:.2} µs/query",
        corner_nets.len(),
        total_wire,
        corner_time.as_secs_f64() * 1e6 / corner_nets.len() as f64
    );
    println!(
        "{} free-pin nets: {} require detours (worst detour {}), {:.2} µs/query",
        free_nets.len(),
        detour_count,
        worst_detour,
        free_time.as_secs_f64() * 1e6 / free_nets.len() as f64
    );

    // Sanity: the router never reports less than the Manhattan bound, and
    // the oracle was built exactly once across all 4000 queries.
    let sample = Point::new(0, 0);
    for &(a, _) in corner_nets.iter().take(50) {
        assert!(router.distance(sample, a)? >= sample.l1(a));
    }
    assert_eq!(router.build_counts().oracle_builds, 1);

    // --- ECO loop: incremental floorplan revisions ------------------------
    // Each engineering change order moves, drops or adds one macro.  The
    // revision's session is derived from the previous epoch with
    // `apply_delta`; the first query batch on it pays only for what the
    // edit actually touched.
    println!();
    println!("ECO loop: 8 revisions, 64 pin-to-pin re-estimates each");
    let ecos = edit_stream(&obstacles, 8, 99);
    let mut scene = obstacles;
    let mut session = router;
    for (rev, delta) in ecos.iter().enumerate() {
        let t = Instant::now();
        session = session.apply_delta(delta)?;
        scene = scene.apply_delta(delta).expect("edit_stream deltas stay valid").obstacles;
        let nets = query_pairs(&scene, 64, true, 300 + rev as u64);
        let wire: i64 = session.distances(&nets)?.iter().filter(|&&d| d < INF).sum();
        let elapsed = t.elapsed();
        let c = session.build_counts();
        println!(
            "  rev {:>2} (epoch {}): {:>3} macros, wire {:>8}, edit->estimates {:>7.2} ms | \
             reused {} rows / {} chains / {} slab cols, rebuilt {} / {} / {}",
            rev + 1,
            session.epoch(),
            scene.len(),
            wire,
            elapsed.as_secs_f64() * 1e3,
            c.rows_reused,
            c.chains_reused,
            c.slab_columns_reused,
            c.rows_rebuilt,
            c.chains_rebuilt,
            c.slab_columns_rebuilt,
        );
    }
    // A full rebuild of the final revision for comparison.
    let t = Instant::now();
    let fresh = Router::new(scene.clone())?;
    let _ = fresh.oracle();
    println!("  full rebuild of rev 8 for comparison: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
    // The delta chain never drifted: spot-check against the fresh build.
    let check = query_pairs(&scene, 32, true, 777);
    assert_eq!(session.distances(&check)?, fresh.distances(&check)?);
    println!("  delta chain matches a from-scratch build bitwise on {} nets", check.len());
    Ok(())
}
