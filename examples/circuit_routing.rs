//! Wire-length estimation for circuit routing — one of the applications the
//! paper's introduction motivates (wire layout / circuit design).
//!
//! A chip floorplan is modelled as a set of rectangular macro blocks
//! (obstacles).  Nets connect pins placed on block boundaries; the router
//! wants, for every net, the shortest rectilinear wire length that avoids
//! routing over the macros.  One `Router` session builds the all-pairs
//! vertex structure once and then serves thousands of pin-to-pin queries in
//! constant/logarithmic time — here through the batch API, which routes
//! corner-to-corner nets to the O(1) fast path automatically.
//!
//! Run with `cargo run --release --example circuit_routing`.

use rectilinear_shortest_paths::workload::{query_pairs, uniform_disjoint};
use rectilinear_shortest_paths::{Point, Router, RspError, INF};
use std::time::Instant;

fn main() -> Result<(), RspError> {
    // A synthetic floorplan with 64 macro blocks.
    let floorplan = uniform_disjoint(64, 2024);
    let obstacles = floorplan.obstacles;
    println!("floorplan: {} macro blocks, {} block corners", obstacles.len(), obstacles.vertices().len());

    let corner_nets = query_pairs(&obstacles, 2_000, true, 7);
    let free_nets = query_pairs(&obstacles, 2_000, false, 8);

    let router = Router::new(obstacles)?;
    let t0 = Instant::now();
    let _ = router.oracle(); // force the lazy build to time it
    println!("routing oracle built in {:.3} s", t0.elapsed().as_secs_f64());

    // Pin-to-pin nets: pins sit at block corners (vertex queries, O(1) each
    // inside the batch) ...
    let t1 = Instant::now();
    let total_wire: i64 = router.distances(&corner_nets)?.iter().sum();
    let corner_time = t1.elapsed();

    // ... and free pins anywhere on the die (arbitrary-point queries,
    // O(log n) each, fanned out over the rayon pool by the batch layer).
    let t2 = Instant::now();
    let free_lengths = router.distances(&free_nets)?;
    let free_time = t2.elapsed();
    let mut detour_count = 0usize;
    let mut worst_detour = 0i64;
    for (&(a, b), &d) in free_nets.iter().zip(&free_lengths) {
        if d < INF {
            let detour = d - a.l1(b);
            if detour > 0 {
                detour_count += 1;
                worst_detour = worst_detour.max(detour);
            }
        }
    }

    println!(
        "{} corner-to-corner nets: total wire length {}, {:.2} µs/query",
        corner_nets.len(),
        total_wire,
        corner_time.as_secs_f64() * 1e6 / corner_nets.len() as f64
    );
    println!(
        "{} free-pin nets: {} require detours (worst detour {}), {:.2} µs/query",
        free_nets.len(),
        detour_count,
        worst_detour,
        free_time.as_secs_f64() * 1e6 / free_nets.len() as f64
    );

    // Sanity: the router never reports less than the Manhattan bound, and
    // the oracle was built exactly once across all 4000 queries.
    let sample = Point::new(0, 0);
    for &(a, _) in corner_nets.iter().take(50) {
        assert!(router.distance(sample, a)? >= sample.l1(a));
    }
    assert_eq!(router.build_counts().oracle_builds, 1);
    Ok(())
}
