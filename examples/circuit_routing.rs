//! Wire-length estimation for circuit routing — one of the applications the
//! paper's introduction motivates (wire layout / circuit design).
//!
//! A chip floorplan is modelled as a set of rectangular macro blocks
//! (obstacles).  Nets connect pins placed on block boundaries; the router
//! wants, for every net, the shortest rectilinear wire length that avoids
//! routing over the macros.  We build the all-pairs vertex structure once and
//! then answer thousands of pin-to-pin queries in constant/logarithmic time.
//!
//! Run with `cargo run --release --example circuit_routing`.

use rectilinear_shortest_paths::core::query::PathLengthOracle;
use rectilinear_shortest_paths::geom::{Point, INF};
use rectilinear_shortest_paths::workload::{query_pairs, uniform_disjoint};
use std::time::Instant;

fn main() {
    // A synthetic floorplan with 64 macro blocks.
    let floorplan = uniform_disjoint(64, 2024);
    let obstacles = &floorplan.obstacles;
    println!("floorplan: {} macro blocks, {} block corners", obstacles.len(), obstacles.vertices().len());

    let t0 = Instant::now();
    let oracle = PathLengthOracle::build(obstacles);
    println!("routing oracle built in {:.3} s", t0.elapsed().as_secs_f64());

    // Pin-to-pin nets: pins sit at block corners (vertex queries, O(1)) ...
    let corner_nets = query_pairs(obstacles, 2_000, true, 7);
    let t1 = Instant::now();
    let mut total_wire: i64 = 0;
    for &(a, b) in &corner_nets {
        total_wire += oracle.vertex_distance(a, b).unwrap_or(0);
    }
    let corner_time = t1.elapsed();

    // ... and free pins anywhere on the die (arbitrary-point queries, O(log n)).
    let free_nets = query_pairs(obstacles, 2_000, false, 8);
    let t2 = Instant::now();
    let mut detour_count = 0usize;
    let mut worst_detour = 0i64;
    for &(a, b) in &free_nets {
        let d = oracle.distance(a, b);
        if d < INF {
            let detour = d - a.l1(b);
            if detour > 0 {
                detour_count += 1;
                worst_detour = worst_detour.max(detour);
            }
        }
    }
    let free_time = t2.elapsed();

    println!(
        "{} corner-to-corner nets: total wire length {}, {:.2} µs/query",
        corner_nets.len(),
        total_wire,
        corner_time.as_secs_f64() * 1e6 / corner_nets.len() as f64
    );
    println!(
        "{} free-pin nets: {} require detours (worst detour {}), {:.2} µs/query",
        free_nets.len(),
        detour_count,
        worst_detour,
        free_time.as_secs_f64() * 1e6 / free_nets.len() as f64
    );

    // Sanity: the router never reports less than the Manhattan bound.
    let sample = Point::new(0, 0);
    for &(a, _) in corner_nets.iter().take(50) {
        assert!(oracle.distance(sample, a) >= sample.l1(a));
    }
}
