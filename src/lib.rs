//! # rectilinear-shortest-paths
//!
//! Facade crate re-exporting the public API of the workspace: a reproduction
//! of Atallah & Chen, *"Parallel rectilinear shortest paths with rectangular
//! obstacles"* (SPAA 1990 / Computational Geometry: Theory and Applications
//! 1, 1991).  See README.md for the crate map and DESIGN.md for the mapping
//! from paper sections to modules.
//!
//! ## Quickstart
//!
//! The flow below mirrors `examples/quickstart.rs`: build the length oracle
//! (Section 6), ask for an actual path (Section 8), then construct the
//! boundary-to-boundary matrix `D_Q` (Section 5).
//!
//! ```
//! use rectilinear_shortest_paths::core::dnc::{build_boundary_matrix_bbox, DncOptions};
//! use rectilinear_shortest_paths::core::query::PathLengthOracle;
//! use rectilinear_shortest_paths::core::sptree::ShortestPathTrees;
//! use rectilinear_shortest_paths::geom::{ObstacleSet, Point, Rect};
//!
//! // A rectilinear "floor plan": disjoint axis-parallel rectangular obstacles.
//! let obstacles = ObstacleSet::new(vec![
//!     Rect::new(2, 2, 6, 10),
//!     Rect::new(9, 0, 12, 6),
//!     Rect::new(8, 9, 15, 12),
//! ]);
//! obstacles.validate_disjoint().expect("obstacles must be disjoint");
//!
//! // 1. Length queries: O(1) between obstacle vertices, O(log n) between
//! //    arbitrary points.
//! let oracle = PathLengthOracle::build(&obstacles);
//! let a = Point::new(0, 0);
//! let b = Point::new(16, 13);
//! assert!(oracle.distance(a, b) >= a.l1(b));
//!
//! let v1 = Point::new(6, 10); // an obstacle vertex
//! let v2 = Point::new(9, 0);  // another obstacle vertex
//! let d = oracle.vertex_distance(v1, v2).expect("both are vertices");
//!
//! // 2. Actual paths: shortest-path trees + path reporting.
//! let trees = ShortestPathTrees::from_oracle(PathLengthOracle::build(&obstacles), Some(&[v1]));
//! let path = trees.path_between(v1, v2).expect("both endpoints are vertices");
//! assert!(path.avoids(&obstacles));
//! assert_eq!(path.length(), d);
//!
//! // 3. The boundary-to-boundary matrix D_Q, built by the parallel
//! //    divide-and-conquer with staircase separators and Monge products.
//! let bm = build_boundary_matrix_bbox(&obstacles, 2, &DncOptions::default());
//! assert_eq!(bm.dist.rows(), bm.points.len());
//! ```

pub use rsp_core as core;
pub use rsp_geom as geom;
pub use rsp_monge as monge;
pub use rsp_pram as pram;
pub use rsp_render as render;
pub use rsp_workload as workload;
