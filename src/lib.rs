//! Facade crate re-exporting the public API of the workspace.
pub use rsp_core as core;
pub use rsp_geom as geom;
pub use rsp_monge as monge;
pub use rsp_pram as pram;
pub use rsp_render as render;
pub use rsp_workload as workload;
