//! # rectilinear-shortest-paths
//!
//! Facade crate for a reproduction of Atallah & Chen, *"Parallel rectilinear
//! shortest paths with rectangular obstacles"* (SPAA 1990 / Computational
//! Geometry: Theory and Applications 1, 1991).  See README.md for the crate
//! map and DESIGN.md for the mapping from paper sections to modules.
//!
//! The public API has two layers:
//!
//! * **The [`Router`] session layer** (re-exported at the crate root along
//!   with the geometric vocabulary) — build once, query fast.  This is the
//!   only API the quickstart, the examples and most applications need.
//! * **The expert layer** under [`core`], [`geom`], [`monge`], [`pram`] —
//!   direct access to every algorithm of the paper (separators,
//!   divide-and-conquer, APSP, oracle, path trees) for research and
//!   benchmarking.
//!
//! A third layer, [`server`], wraps `Router` sessions in a sharded,
//! batching query-serving subsystem (wire protocol, LRU session cache,
//! admission coalescing, TCP front end) — see `rsp_server`'s crate docs.
//!
//! ## Quickstart
//!
//! One `Router` session serves every query kind; each substructure (vertex
//! APSP + oracle, per-source path trees, the boundary matrix `D_Q`) is built
//! lazily, exactly once, and shared:
//!
//! ```
//! use rectilinear_shortest_paths::{Engine, ObstacleSet, Point, Rect, Router};
//!
//! // A rectilinear "floor plan": disjoint axis-parallel rectangular obstacles.
//! let obstacles = ObstacleSet::new(vec![
//!     Rect::new(2, 2, 6, 10),
//!     Rect::new(9, 0, 12, 6),
//!     Rect::new(8, 9, 15, 12),
//! ]);
//!
//! // Build a session.  Overlapping obstacles are a typed error naming the
//! // offending pair, not a panic.
//! let router = Router::builder(obstacles).engine(Engine::Auto).build()?;
//!
//! // 1. Length queries (Section 6): O(1) between obstacle vertices,
//! //    O(log n) between arbitrary points.
//! let a = Point::new(0, 0);
//! let b = Point::new(16, 13);
//! assert!(router.distance(a, b)? >= a.l1(b));
//!
//! let v1 = Point::new(6, 10); // an obstacle vertex
//! let v2 = Point::new(9, 0);  // another obstacle vertex
//! let d = router.vertex_distance(v1, v2)?;
//!
//! // 2. Actual paths (Section 8), sharing the same oracle build.
//! let path = router.path(v1, v2)?;
//! assert!(path.avoids(router.obstacles()));
//! assert_eq!(path.length(), d);
//!
//! // 3. Batch serving: vertex pairs take the O(1) fast path, the rest fan
//! //    out over rayon; results are index-aligned with the input.
//! let lengths = router.distances(&[(a, b), (v1, v2), (a, v2)])?;
//! assert_eq!(lengths[1], d);
//!
//! // 4. The boundary-to-boundary matrix D_Q (Section 5), built by the
//! //    parallel divide-and-conquer with staircase separators and Monge
//! //    (min,+) products.
//! let bm = router.boundary_matrix();
//! assert_eq!(bm.dist.rows(), bm.points.len());
//! # Ok::<(), rectilinear_shortest_paths::RspError>(())
//! ```

pub use rsp_core as core;
pub use rsp_geom as geom;
pub use rsp_monge as monge;
pub use rsp_pram as pram;
pub use rsp_render as render;
pub use rsp_server as server;
pub use rsp_workload as workload;

// The session layer: everything a typical application needs, importable
// without touching the expert `core::*` / `geom::*` module paths.
pub use rsp_core::router::{BuildCounts, Engine, Router, RouterBuilder};
pub use rsp_core::store::{StoreKind, StoreStats};
pub use rsp_core::trace::EscapeKind;
pub use rsp_core::RspError;
pub use rsp_geom::{
    Chain, Coord, DeltaError, DisjointnessViolation, Dist, ObstacleSet, Point, Rect, RectiPath, SceneDelta,
    StairRegion, INF,
};
